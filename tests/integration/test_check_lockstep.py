"""Integration tests: lockstep differential harness, shrinker, corpus."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check.corpus import (
    CORPUS,
    corpus_config,
    corpus_trace,
    get_bug,
    run_sanitized,
    validate_corpus,
)
from repro.check.lockstep import run_lockstep
from repro.check.shrink import emit_repro, shrink_trace
from repro.errors import InvariantViolation

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def trace():
    return corpus_trace()


@pytest.fixture(scope="module")
def config():
    return corpus_config()


class TestLockstep:
    def test_clean_engines_identical(self, trace, config):
        report = run_lockstep(trace, config)
        assert report.identical
        assert report.boundaries == 8  # 2 events + 6 segments
        assert "identical" in report.render()

    def test_planted_state_divergence_located(self, trace, config):
        bug = get_bug("vector-dirty-mark")
        report = run_lockstep(trace, config, plant=bug)
        assert not report.identical
        d = report.divergence
        assert d.boundary == bug.boundary
        assert "cache" in d.components
        # Component-level detail from the phase-2 snapshot diff.
        assert any("(scalar) vs" in line for line in d.details)
        assert "FIRST DIVERGENCE" in report.render()

    def test_planted_stat_skew_located(self, trace, config):
        report = run_lockstep(
            trace, config, plant=get_bug("vector-stat-skew")
        )
        d = report.divergence
        assert d is not None and d.components == ["stats"]
        assert any("memory_stall_cycles" in line for line in d.details)


class TestCorpus:
    def test_every_planted_bug_caught(self):
        outcomes = validate_corpus()
        escaped = [o for o in outcomes if not o.caught]
        assert not escaped, "\n".join(
            f"{o.bug.name}: {o.detail}" for o in escaped
        )
        assert len(outcomes) == len(CORPUS) == 12

    def test_pr8_bugs_pin_their_own_machines(self):
        """The lifted-path bugs only exist on set-assoc / fault-armed
        machines, so they carry their own config factories; the rest
        keep the shared corpus box."""
        assoc = get_bug("assoc-way-skew")
        clamp = get_bug("trigger-clamp-skew")
        assert assoc.make_config().cache.associativity == 2
        assert clamp.make_config().faults.triggers
        assert get_bug("vector-stat-skew").make_config() == corpus_config()

    def test_assoc_way_skew_diverges_in_stats(self):
        """The mirror-desync plant must be localised by the differ on
        the set-assoc machine it pins (the PR-8 way-match path)."""
        bug = get_bug("assoc-way-skew")
        report = run_lockstep(
            corpus_trace(), bug.make_config(), plant=bug
        )
        assert not report.identical
        assert "stats" in report.divergence.components

    def test_trigger_clamp_skew_suppresses_the_fault(self):
        """The schedule-mutation plant makes the vector run skip the
        scheduled mtlb-parity trigger entirely (exact-count semantics),
        so the runs diverge where the scalar run injects it."""
        bug = get_bug("trigger-clamp-skew")
        report = run_lockstep(
            corpus_trace(), bug.make_config(), plant=bug
        )
        assert not report.identical
        assert "stats" in report.divergence.components

    def test_sanitize_bug_names_component(self, trace, config):
        bug = get_bug("shadow-ref-leak")
        with pytest.raises(InvariantViolation) as exc:
            run_sanitized(trace, config, bug)
        assert exc.value.component == "shadow_table"

    def test_diff_bugs_only_corrupt_vector_runs(self):
        for bug in CORPUS:
            if bug.kind == "diff":
                assert bug.applies_to("vector")
                assert not bug.applies_to("scalar")


class TestShrinker:
    def test_diff_failure_shrinks_under_target(self, trace, config):
        bug = get_bug("vector-stat-skew")

        def failing(t):
            return not run_lockstep(t, config, plant=bug).identical

        shrunk = shrink_trace(trace, failing)
        assert shrunk.total_refs <= 1000
        assert failing(shrunk)
        assert "OVER-TARGET" not in shrunk.name

    def test_sanitize_failure_shrinks_under_target(self, trace, config):
        bug = get_bug("shadow-ref-leak")

        def failing(t):
            try:
                run_sanitized(t, config, bug)
            except InvariantViolation:
                return True
            return False

        shrunk = shrink_trace(trace, failing)
        assert shrunk.total_refs <= 1000
        assert failing(shrunk)

    def test_non_failing_trace_rejected(self, trace):
        with pytest.raises(ValueError):
            shrink_trace(trace, lambda t: False)

    def test_emitted_repro_script_reproduces(
        self, trace, config, tmp_path
    ):
        bug = get_bug("vector-dirty-mark")

        def failing(t):
            return not run_lockstep(t, config, plant=bug).identical

        shrunk = shrink_trace(trace, failing)
        script = emit_repro(
            shrunk,
            config,
            tmp_path,
            "repro-dirty-mark",
            mode="diff",
            plant_name=bug.name,
        )
        env = dict(os.environ, PYTHONPATH=str(SRC))
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
        )
        # Exit 1 while the failure reproduces, with the full report.
        assert proc.returncode == 1, proc.stderr
        assert "FIRST DIVERGENCE" in proc.stdout
        assert "cache" in proc.stdout
