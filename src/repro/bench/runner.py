"""Benchmark-harness plumbing: scales, trace caching, matrix runs.

The harness reruns identical traces across many machine configurations
and many pytest sessions.  :class:`BenchContext` pins the per-workload
input scales (documented in EXPERIMENTS.md), caches generated traces on
disk, and runs workload x configuration matrices into a
:class:`~repro.sim.results.ResultMatrix`.

Robustness features (this file is the harness's crash-safety layer):

* corrupt/truncated trace-cache files are detected by checksum
  (:class:`~repro.errors.TraceCacheCorrupt`), warned about, deleted,
  and regenerated;
* matrix runs can *checkpoint* each completed (workload, config) cell
  to disk and resume after a crash or kill, re-running only the
  missing cells (``run_matrix(..., checkpoint="fig3")``);
* a per-run reference budget (``max_references``) bounds any single
  pathological cell instead of hanging the whole matrix;
* matrix cells are independent, so ``run_matrix(..., jobs=N)`` fans
  them out over a :class:`~concurrent.futures.ProcessPoolExecutor`.
  The checkpoint file doubles as the merge point: each finished cell
  is persisted (atomically) as it arrives, a killed parallel run
  resumes exactly like a serial one, and the assembled matrix is
  always in deterministic workload x config order regardless of
  completion order.

Since the scenario-service refactor, :meth:`BenchContext.run_matrix`
is a thin client of the sharded scheduler in
:mod:`repro.serve.scheduler`: each missing cell becomes a
:class:`~repro.api.ScenarioSpec`, and attaching a
:class:`~repro.serve.store.ResultStore` (``store=``) turns
checkpoint/resume into a content-addressed cache hit that survives
checkpoint deletion.

Since PR 9 the disk layer defaults to the content-addressed columnar
trace store (:mod:`repro.trace.store`): entries are keyed by the exact
scale bits (``float.hex()``), populated once across processes under a
single-flight lock, and loaded as memory-mapped column views that
parallel sweep shards share through the page cache.  The legacy
one-``.npz``-per-trace layout remains available for comparison and
migration (``trace_store=False`` / ``REPRO_TRACE_STORE=0``); legacy
files found at the old path are migrated into the store on first use
when their scale survives the old ``%g`` keying round-trip.

Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — use the quick (CI) scales everywhere;
* ``REPRO_TRACE_CACHE=<dir>`` — trace cache directory (default
  ``.trace_cache/`` under the repository root / current directory);
* ``REPRO_TRACE_STORE=0`` — fall back to the legacy per-file cache.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from ..errors import TraceCacheCorrupt
from ..sim.config import SystemConfig
from ..sim.results import ResultMatrix, RunResult
from ..sim.stats import RunStats
from ..sim.system import System
from ..trace.io import load_trace, save_trace
from ..trace.store import StreamedTrace, TraceStore
from ..trace.trace import Trace
from ..workloads import build_workload, stream_workload

#: Input scales used for reported (non-quick) benchmark numbers.  Chosen
#: so each run finishes in seconds while keeping every workload's paper
#: *footprint* characteristics (see EXPERIMENTS.md for the rationale).
PAPER_SCALES: Dict[str, float] = {
    "compress95": 0.25,
    "vortex": 0.5,
    "radix": 0.3,
    "em3d": 0.3,
    "gcc": 1.0,
}

#: Much smaller inputs for CI / the test suite.
QUICK_SCALES: Dict[str, float] = {
    "compress95": 0.04,
    "vortex": 0.06,
    "radix": 0.05,
    "em3d": 0.08,
    "gcc": 0.12,
}

DEFAULT_SEED = 1998


def quick_mode_requested() -> bool:
    """True when the environment asks for quick (CI) scales."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def trace_store_requested() -> bool:
    """True unless the environment opts back into the legacy cache."""
    return os.environ.get("REPRO_TRACE_STORE", "1") not in ("", "0")


class BenchContext:
    """Shared state for one benchmark session."""

    def __init__(
        self,
        quick: Optional[bool] = None,
        scales: Optional[Mapping[str, float]] = None,
        cache_dir: Optional[Path] = None,
        seed: int = DEFAULT_SEED,
        max_references: Optional[int] = None,
        jobs: Optional[int] = None,
        engine: Optional[str] = None,
        sanitize: bool = False,
        store: Optional[object] = None,
        trace_store: Optional[bool] = None,
        stream_cold: bool = False,
    ) -> None:
        if quick is None:
            quick = quick_mode_requested()
        self.quick = quick
        base = QUICK_SCALES if quick else PAPER_SCALES
        self.scales: Dict[str, float] = dict(base)
        if scales:
            self.scales.update(scales)
        if cache_dir is None:
            env = os.environ.get("REPRO_TRACE_CACHE")
            cache_dir = Path(env) if env else Path(".trace_cache")
        self.cache_dir = Path(cache_dir)
        self.seed = seed
        #: Per-run reference budget; a run that would exceed it raises
        #: :class:`~repro.errors.ReferenceBudgetExceeded` instead of
        #: running unbounded.  None = no limit.
        self.max_references = max_references
        #: Worker-process count for :meth:`run_matrix`.  None or <= 1
        #: runs serially in-process.
        self.jobs = jobs
        #: Trace-engine override applied to every config this context
        #: runs ("auto" | "scalar" | "vector"); None respects each
        #: config's own ``engine`` field.  Engines are bit-identical,
        #: so results (and checkpoints) are interchangeable.
        self.engine = engine
        #: Run every config with the invariant sanitizer suite enabled
        #: (repro.check).  Read-only checks: results and checkpoints
        #: stay bit-identical, only wall-clock changes.
        self.sanitize = sanitize
        #: Optional :class:`~repro.serve.store.ResultStore` consulted by
        #: :meth:`run_matrix` before simulating a cell.  Off by default:
        #: a plain context always simulates what it is asked to.
        self.store = store
        #: Disk-cache backend selector.  True (the default) routes
        #: :meth:`trace_at` through the content-addressed columnar
        #: store under ``cache_dir/store``; False keeps the legacy
        #: one-``.npz``-per-trace layout.  ``REPRO_TRACE_STORE=0``
        #: flips the default.
        if trace_store is None:
            trace_store = trace_store_requested()
        self.trace_store = bool(trace_store)
        #: With ``stream_cold``, :meth:`run` simulates a cold-cache
        #: trace *while* it is being generated (streamed through a
        #: :class:`~repro.trace.store.TraceWriter`) instead of waiting
        #: for generation to finish.  Store mode only.
        self.stream_cold = stream_cold
        self._trace_store_backend: Optional[TraceStore] = None
        self._traces: Dict[str, Trace] = {}

    # ------------------------------------------------------------------ #
    # Traces
    # ------------------------------------------------------------------ #

    def scale_of(self, workload: str) -> float:
        """The input scale this context uses for *workload*."""
        return self.scales.get(workload, 1.0)

    def trace(self, workload: str) -> Trace:
        """Return the workload's trace, via memory and disk caches."""
        cached = self._traces.get(workload)
        if cached is not None:
            return cached
        trace = self.trace_at(workload, self.scale_of(workload))
        self._traces[workload] = trace
        return trace

    def trace_store_backend(self) -> TraceStore:
        """The context's columnar trace store (``cache_dir/store``)."""
        if self._trace_store_backend is None:
            self._trace_store_backend = TraceStore(
                self.cache_dir / "store"
            )
        return self._trace_store_backend

    def _legacy_trace_path(self, workload: str, scale: float) -> Path:
        return self.cache_dir / (
            f"{workload}_s{scale:g}_seed{self.seed}.npz"
        )

    @staticmethod
    def _warn_corrupt(exc: TraceCacheCorrupt) -> None:
        # Corrupt cache: warn, quarantine/delete, regenerate (never
        # simulate a silently wrong reference stream).  The warning is
        # advisory; pool workers also surface it through the
        # ``trace.cache_corrupt`` counter, which *is* visible from the
        # parent (RuntimeWarnings in worker processes are not).
        warnings.warn(f"{exc}; regenerating", RuntimeWarning)

    def trace_at(self, workload: str, scale: float) -> Trace:
        """Load or generate *workload*'s trace at an explicit *scale*.

        Disk cache only: the in-memory cache is keyed by name with the
        scale implied by ``scales``, so callers (the sweep prewarm
        paths) can warm arbitrary (workload, scale) pairs without
        disturbing this context's own resolution.

        In store mode (the default) this is single-flight across
        processes — one cold worker generates, the rest block and then
        load shared memory-mapped columns.  A legacy ``.npz`` at the
        old path is migrated into the store instead of regenerated
        when its ``%g``-keyed scale round-trips exactly.
        """
        if not self.trace_store:
            return self._trace_at_legacy(workload, scale)
        store = self.trace_store_backend()

        def produce(writer) -> None:
            shell, items = stream_workload(
                workload, scale=scale, seed=self.seed
            )
            writer.begin(shell.name, shell.text_base, shell.text_size)
            for _ in writer.tee(items):
                pass

        try:
            return store.get_or_create(
                workload,
                scale,
                self.seed,
                produce,
                legacy_path=self._legacy_trace_path(workload, scale),
                on_corrupt=self._warn_corrupt,
            )
        except OSError:
            # Read-only filesystem: run uncached, like the legacy path.
            return build_workload(workload, scale=scale, seed=self.seed)

    def stream_trace(
        self, workload: str, scale: Optional[float] = None
    ) -> Union[Trace, StreamedTrace]:
        """A trace ready to simulate that may still be generating.

        A warm store entry returns an ordinary :class:`Trace`.  A cold
        one returns a single-use :class:`StreamedTrace` whose consumer
        drives generation, with every item teed into the store — the
        simulator starts on the first segment while later segments are
        still being built.  Legacy mode degrades to :meth:`trace_at`.
        """
        if scale is None:
            scale = self.scale_of(workload)
        if not self.trace_store:
            return self.trace_at(workload, scale)
        store = self.trace_store_backend()
        try:
            return store.stream_or_load(
                workload,
                scale,
                self.seed,
                lambda: stream_workload(
                    workload, scale=scale, seed=self.seed
                ),
                on_corrupt=self._warn_corrupt,
            )
        except OSError:
            return build_workload(workload, scale=scale, seed=self.seed)

    def _trace_at_legacy(self, workload: str, scale: float) -> Trace:
        path = self._legacy_trace_path(workload, scale)
        trace: Optional[Trace] = None
        if path.exists():
            try:
                trace = load_trace(path)
            except TraceCacheCorrupt as exc:
                self._warn_corrupt(exc)
                try:
                    path.unlink()
                except OSError:
                    pass
            except (ValueError, KeyError, OSError):
                trace = None  # stale format: regenerate below
        if trace is None:
            trace = build_workload(workload, scale=scale, seed=self.seed)
            try:
                save_trace(trace, path)
            except OSError:
                pass  # read-only filesystem: run uncached
        return trace

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def run(self, workload: str, config: SystemConfig) -> RunResult:
        """Simulate one workload on one configuration."""
        if self.engine is not None and config.engine != self.engine:
            config = dataclasses.replace(config, engine=self.engine)
        if self.sanitize and not config.sanitize:
            config = dataclasses.replace(config, sanitize=True)
        system = System(config)
        system.reference_budget = self.max_references
        if self.stream_cold and self.trace_store:
            cached = self._traces.get(workload)
            if cached is not None:
                return system.run(cached)
            trace = self.stream_trace(workload)
            if isinstance(trace, Trace):
                # Warm store entry: memoise like the eager path.
                self._traces[workload] = trace
            return system.run(trace)
        return system.run(self.trace(workload))

    def run_matrix(
        self,
        workloads: Sequence[str],
        configs: Mapping[str, SystemConfig],
        base_label: str,
        progress: bool = False,
        checkpoint: Optional[str] = None,
        jobs: Optional[int] = None,
        store: Optional[object] = None,
    ) -> ResultMatrix:
        """Run every workload on every configuration.

        With *checkpoint* set, every completed (workload, config) cell
        is persisted to ``<cache_dir>/checkpoint_<name>.json`` with an
        atomic write, and a later invocation of the same matrix resumes
        from it, re-running only the missing cells.  The checkpoint is
        deleted once the whole matrix completes.

        The missing cells are executed by the sharded sweep scheduler
        (:mod:`repro.serve.scheduler`): *jobs* (default: the context's
        ``jobs``) > 1 shards them over worker processes; each cell
        checkpoints as it completes, so crash-resume semantics match
        the serial path.  With *store* (default: the context's
        ``store``) attached, cells already in the content-addressed
        result store are served from disk instead of simulated —
        resume-as-cache-hit, surviving checkpoint deletion.
        """
        from ..api import ScenarioSpec
        from ..serve.scheduler import SweepScheduler

        if jobs is None:
            jobs = self.jobs
        if store is None:
            store = self.store
        path = self._checkpoint_path(checkpoint) if checkpoint else None
        cells: Dict[str, dict] = (
            self._load_checkpoint(path, base_label) if path else {}
        )
        pending = [
            (workload, label, config)
            for workload in workloads
            for label, config in configs.items()
            if f"{workload}|{label}" not in cells
        ]
        if progress and cells and pending:
            print(
                f"  resuming: {len(cells)} cell(s) checkpointed",
                flush=True,
            )
        if pending:
            specs = [
                ScenarioSpec(workload=workload, config=config,
                             seed=self.seed)
                for workload, _, config in pending
            ]
            keys = [f"{w}|{label}" for w, label, _ in pending]

            def on_result(index: int, report) -> None:
                cells[keys[index]] = report.stats_dict()
                if path is not None:
                    self._save_checkpoint(path, base_label, cells)

            scheduler = SweepScheduler(
                context=self,
                store=store,
                jobs=jobs if jobs is not None else 1,
                progress_cb=(
                    (lambda msg: print(msg, flush=True))
                    if progress else None
                ),
            )
            scheduler.sweep(specs, on_result=on_result)
        matrix = ResultMatrix(base_label)
        for workload in workloads:
            for label in configs:
                matrix.add(
                    RunResult(
                        workload=workload,
                        config_label=label,
                        stats=RunStats(**cells[f"{workload}|{label}"]),
                    )
                )
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass
        return matrix

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #

    def _checkpoint_path(self, name: str) -> Path:
        return self.cache_dir / f"checkpoint_{name}.json"

    def _checkpoint_meta(self, base_label: str) -> dict:
        """Context fingerprint: a checkpoint from different scales,
        seed, or quickness must not be resumed from."""
        return {
            "version": 1,
            "quick": self.quick,
            "seed": self.seed,
            "scales": self.scales,
            "base_label": base_label,
            "max_references": self.max_references,
        }

    def _load_checkpoint(
        self, path: Path, base_label: str
    ) -> Dict[str, dict]:
        if not path.exists():
            return {}
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            warnings.warn(
                f"checkpoint {path} is unreadable; starting over",
                RuntimeWarning,
            )
            return {}
        if payload.get("meta") != self._checkpoint_meta(base_label):
            warnings.warn(
                f"checkpoint {path} was written under a different "
                "bench context; ignoring it",
                RuntimeWarning,
            )
            return {}
        cells = payload.get("cells", {})
        known = set(RunStats.__dataclass_fields__)
        for key, fields in cells.items():
            if not isinstance(fields, dict) or set(fields) - known:
                warnings.warn(
                    f"checkpoint {path} cell {key!r} has unknown "
                    "fields; starting over",
                    RuntimeWarning,
                )
                return {}
        return dict(cells)

    def _save_checkpoint(
        self, path: Path, base_label: str, cells: Dict[str, dict]
    ) -> None:
        """Atomically persist the completed cells (tmp + rename), so a
        kill mid-write leaves the previous checkpoint intact."""
        payload = {
            "meta": self._checkpoint_meta(base_label),
            "cells": cells,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except OSError:
            pass  # read-only filesystem: run without checkpoints
