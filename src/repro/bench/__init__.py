"""Benchmark harness: one module per reproduced table/figure + ablations.

See DESIGN.md's per-experiment index.  The pytest-benchmark entry points
under ``benchmarks/`` call into this package; everything here is also
usable directly (e.g. from the ``repro-bench`` CLI).
"""

from .backends_bench import run_backends_bench
from .ablations import (
    run_allocator_ablation,
    run_bit_writeback_ablation,
    run_check_penalty_ablation,
    run_fragmentation_ablation,
)
from .extensions_bench import (
    run_all_shadow_ablation,
    run_stream_buffer_ablation,
)
from .fig2_partition import run_fig2
from .gather_bench import run_gather_ablation
from .figure3 import improvement_summary, run_figure3
from .figure4 import run_figure4
from .init_costs import (
    measure_copy_per_page,
    measure_em3d_remap,
    measure_flush_per_page,
)
from .multiprog_bench import run_multiprog_ablation
from .promotion_bench import run_promotion_ablation
from .reach import run_reach_equivalence
from .sensitivity import run_cache_sensitivity, run_handler_sensitivity
from .recoloring_bench import run_recoloring_ablation
from .runner import (
    PAPER_SCALES,
    QUICK_SCALES,
    BenchContext,
    quick_mode_requested,
)

__all__ = [
    "run_backends_bench",
    "run_allocator_ablation",
    "run_bit_writeback_ablation",
    "run_check_penalty_ablation",
    "run_fragmentation_ablation",
    "run_all_shadow_ablation",
    "run_stream_buffer_ablation",
    "run_promotion_ablation",
    "run_recoloring_ablation",
    "run_multiprog_ablation",
    "run_cache_sensitivity",
    "run_gather_ablation",
    "run_handler_sensitivity",
    "run_fig2",
    "improvement_summary",
    "run_figure3",
    "run_figure4",
    "measure_copy_per_page",
    "measure_em3d_remap",
    "measure_flush_per_page",
    "run_reach_equivalence",
    "PAPER_SCALES",
    "QUICK_SCALES",
    "BenchContext",
    "quick_mode_requested",
]
