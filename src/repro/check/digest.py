"""Per-boundary state digests for the lockstep harness (DESIGN.md §11).

Two tiers, both over the same component decomposition:

* :func:`boundary_digest` — one CRC32 per component, cheap enough to
  take at *every* segment boundary and kernel event of both engines.
  Comparing two digest sequences finds the first divergent boundary and
  which components diverged there.
* :func:`capture_detail` / :func:`diff_detail` — a full structured
  snapshot taken only at the already-located divergent boundary, diffed
  field by field for the human-readable report.

What is digested is the *architectural* state the two engines promise
to keep bit-identical: every RunStats counter, TLB content
(vbase/pbase/size/writable/NRU bits — but not the MRU probe hint or the
generation counter, which are lookup-order artifacts), cache tags and
dirty bits, MTLB ways, and the packed shadow page table.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Dict, List, Tuple

import numpy as np

from ..mem.cache import DirectMappedCache

#: Component names, in report order.
COMPONENTS = ("stats", "tlb", "cache", "mtlb", "shadow_table")


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _tlb_items(system) -> List[Tuple]:
    return sorted(
        (e.size, e.vbase, e.pbase, e.writable, e.nru_referenced)
        for e in system.tlb.entries()
    )


def _cache_items(system):
    cache = system.cache
    if isinstance(cache, DirectMappedCache):
        return cache._tags.tobytes() + cache._dirty.tobytes()
    return repr(
        [sorted(s.items()) for s in cache._sets]
    ).encode()


def _mtlb_items(system) -> List[Tuple]:
    mtlb = getattr(system.mmc, "mtlb", None)
    if mtlb is None:
        return []
    return sorted(
        (w.shadow_index, w.pfn, w.valid, w.nru_referenced,
         w.ref_written, w.dirty_written)
        for way_set in mtlb._sets
        for w in way_set.values()
    )


def _shadow_bytes(system) -> bytes:
    table = getattr(system.mmc, "shadow_table", None)
    if table is None:
        return b""
    return table._entries.tobytes()


def boundary_digest(system) -> Dict[str, int]:
    """One CRC32 per architectural component of *system*."""
    return {
        "stats": _crc(
            repr(dataclasses.asdict(system.stats)).encode()
        ),
        "tlb": _crc(repr(_tlb_items(system)).encode()),
        "cache": _crc(_cache_items(system)),
        "mtlb": _crc(repr(_mtlb_items(system)).encode()),
        "shadow_table": _crc(_shadow_bytes(system)),
    }


def capture_detail(system) -> Dict[str, object]:
    """Full structured snapshot, for field-level diffing at one boundary."""
    cache = system.cache
    if isinstance(cache, DirectMappedCache):
        cache_state = {
            int(i): (int(cache._tags[i]), int(cache._dirty[i]))
            for i in range(cache.num_sets)
            if cache._tags[i] != -1
        }
    else:
        cache_state = {
            i: sorted(s.items())
            for i, s in enumerate(cache._sets)
            if s
        }
    table = getattr(system.mmc, "shadow_table", None)
    if table is not None:
        nz = np.nonzero(table._entries)[0]
        shadow_state = {
            int(i): int(table._entries[i]) for i in nz
        }
    else:
        shadow_state = {}
    return {
        "stats": dataclasses.asdict(system.stats),
        "tlb": {
            (item[1], item[0]): item for item in _tlb_items(system)
        },
        "cache": cache_state,
        "mtlb": {item[0]: item for item in _mtlb_items(system)},
        "shadow_table": shadow_state,
    }


def _diff_maps(component: str, a: Dict, b: Dict, la: str, lb: str,
               limit: int = 8) -> List[str]:
    lines: List[str] = []
    keys = sorted(set(a) | set(b), key=repr)
    for key in keys:
        if a.get(key) == b.get(key):
            continue
        if len(lines) >= limit:
            lines.append(f"  {component}: ... (more entries differ)")
            break
        ka = a.get(key, "<absent>")
        kb = b.get(key, "<absent>")
        if component == "cache":
            lines.append(
                f"  cache[set {key:#x}]: (tag, dirty) = {ka} ({la}) "
                f"vs {kb} ({lb})"
            )
        elif component == "shadow_table":
            lines.append(
                f"  shadow_table[page {key:#x}]: raw entry "
                f"{ka if isinstance(ka, str) else hex(ka)} ({la}) vs "
                f"{kb if isinstance(kb, str) else hex(kb)} ({lb})"
            )
        elif component == "mtlb":
            lines.append(
                f"  mtlb[page {key:#x}]: way {ka} ({la}) vs {kb} ({lb})"
            )
        elif component == "tlb":
            lines.append(
                f"  tlb[vbase {key[0]:#010x}, size {key[1]:#x}]: "
                f"{ka} ({la}) vs {kb} ({lb})"
            )
        else:
            lines.append(
                f"  {component}.{key}: {ka} ({la}) vs {kb} ({lb})"
            )
    return lines


def diff_detail(
    detail_a: Dict[str, object],
    detail_b: Dict[str, object],
    label_a: str = "scalar",
    label_b: str = "vector",
) -> List[str]:
    """Human-readable field-level differences between two snapshots."""
    lines: List[str] = []
    for component in COMPONENTS:
        a = detail_a[component]
        b = detail_b[component]
        if a == b:
            continue
        lines.extend(
            _diff_maps(component, a, b, label_a, label_b)
        )
    return lines
