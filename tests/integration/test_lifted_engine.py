"""Golden equivalence on the configurations PR-8 un-scalar-forced.

Before the restriction lift, ``engine="auto"`` dropped to the scalar
loop on set-associative caches, armed fault plans, and multiprogrammed
mixes.  These tests pin the lift's contract on exactly those surfaces:

* the Figure 4 associativity sweep (2-way/4-way/full MTLBs) is
  bit-identical across engines and auto-resolves to vector;
* an armed schedule for every fault site batches, stays bit-identical,
  and actually injects (a clamp that silently suppressed triggers
  would pass a naive identity check);
* sanitized vector runs audit every boundary without perturbing stats;
* multiprogrammed mixes run vector per-process with exact cycle
  attribution;
* hypothesis-sampled (sets, ways, window) geometry, including a
  manually skewed starting window, never changes results.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import BenchContext
from repro.faults import FAULT_SITES, FaultConfig
from repro.obs import stats_metrics
from repro.sim.config import (
    CacheConfig,
    figure4_configs,
    paper_mtlb,
    paper_no_mtlb,
)
from repro.sim.multiprog import run_job_mix
from repro.sim.system import System
from repro.workloads import PAPER_SUITE

TINY_SCALES = {name: 0.02 for name in PAPER_SUITE}

#: The Figure 4 sweep's three MTLB associativities at one size — the
#: set-assoc shapes the pre-lift policy refused to batch.
FIG4_LIFTED = ("tlb128+mtlb1282w", "tlb128+mtlb1284w", "tlb128+mtlb128full")


@pytest.fixture(scope="module")
def tiny_ctx(tmp_path_factory):
    return BenchContext(
        quick=True,
        scales=TINY_SCALES,
        cache_dir=tmp_path_factory.mktemp("lifted_traces"),
    )


@pytest.fixture(scope="module")
def em3d_trace(tiny_ctx):
    return tiny_ctx.trace("em3d")


def run_stats(trace, config, engine, window=None):
    """One direct System run (bypasses the context's result cache so we
    can pre-skew predictor state)."""
    system = System(dataclasses.replace(config, engine=engine))
    if window is not None:
        system.engine_state.window = window
    result = system.run(trace)
    assert result.engine == engine or engine == "auto"
    return system, result.stats


def assert_engines_identical(trace, config, window=None):
    _, scalar = run_stats(trace, config, "scalar")
    system, vector = run_stats(trace, config, "vector", window=window)
    assert dataclasses.asdict(scalar) == dataclasses.asdict(vector)
    assert stats_metrics(scalar) == stats_metrics(vector)
    return system, vector


class TestFigure4Lift:
    @pytest.mark.parametrize("label", FIG4_LIFTED)
    def test_mtlb_assoc_sweep_bit_identical(
        self, em3d_trace, label
    ):
        config = figure4_configs()[label]
        assert_engines_identical(em3d_trace, config)

    @pytest.mark.parametrize("label", FIG4_LIFTED)
    def test_auto_picks_vector(self, label):
        system = System(
            dataclasses.replace(figure4_configs()[label], engine="auto")
        )
        assert system.engine == "vector"
        assert system.engine_reason == "auto: configuration batches"

    def test_set_assoc_l1_bit_identical(self, em3d_trace):
        config = dataclasses.replace(
            paper_no_mtlb(96), cache=CacheConfig(associativity=4)
        )
        assert_engines_identical(em3d_trace, config)


class TestFaultArmedLift:
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_armed_site_bit_identical_and_injects(
        self, em3d_trace, site
    ):
        config = dataclasses.replace(
            paper_mtlb(96),
            faults=FaultConfig(triggers=((site, 3), (site, 40))),
        )
        _, stats = assert_engines_identical(em3d_trace, config)
        # Identity alone would also pass if the window clamp silently
        # suppressed every trigger on *both* engines — require that the
        # scheduled faults really landed.
        assert stats.extra.get(f"faults_injected_{site}", 0) >= 1

    def test_auto_picks_vector_when_armed(self):
        config = dataclasses.replace(
            paper_mtlb(96),
            faults=FaultConfig(triggers=(("mtlb_parity", 3),)),
        )
        assert System(config).engine == "vector"


class TestSanitizedLift:
    def test_sanitized_vector_bit_identical(self, em3d_trace):
        config = dataclasses.replace(paper_mtlb(96), sanitize=True)
        system, _ = assert_engines_identical(em3d_trace, config)
        # Every boundary was audited on the vector run, not skipped.
        assert system.sanitizers is not None
        assert system.sanitizers.boundaries_checked > 0

    def test_sanitize_does_not_perturb_vector_stats(self, em3d_trace):
        config = paper_mtlb(96)
        _, plain = run_stats(em3d_trace, config, "vector")
        _, audited = run_stats(
            em3d_trace,
            dataclasses.replace(config, sanitize=True),
            "vector",
        )
        assert dataclasses.asdict(plain) == dataclasses.asdict(audited)


class TestMultiprogLift:
    @pytest.fixture(scope="class")
    def mix(self, tiny_ctx):
        return [tiny_ctx.trace("em3d"), tiny_ctx.trace("gcc")]

    def test_mix_runs_vector_with_exact_attribution(self, mix):
        result = run_job_mix(paper_mtlb(96), mix)
        assert result.engine == "vector"
        assert (
            sum(result.per_process_cycles.values())
            + result.shared_cycles
            == result.total_cycles
        )

    def test_mix_bit_identical_across_engines(self, mix):
        scalar = run_job_mix(
            dataclasses.replace(paper_mtlb(96), engine="scalar"), mix
        )
        vector = run_job_mix(
            dataclasses.replace(paper_mtlb(96), engine="vector"), mix
        )
        assert dataclasses.asdict(
            scalar.result.stats
        ) == dataclasses.asdict(vector.result.stats)
        assert scalar.per_process_cycles == vector.per_process_cycles
        assert scalar.context_switches == vector.context_switches


class TestSampledLiftedGeometries:
    @settings(max_examples=10, deadline=None)
    @given(
        cache_kib=st.sampled_from([64, 256, 512]),
        ways=st.sampled_from([2, 4]),
        window=st.sampled_from([4, 64, 1 << 14]),
        armed=st.booleans(),
    )
    def test_geometry_never_changes_results(
        self, em3d_trace, cache_kib, ways, window, armed
    ):
        faults = (
            FaultConfig(triggers=(("mtlb_parity", 5),))
            if armed
            else FaultConfig()
        )
        config = dataclasses.replace(
            paper_mtlb(96),
            cache=CacheConfig(
                size_bytes=cache_kib << 10, associativity=ways
            ),
            faults=faults,
        )
        # A skewed starting window exercises clamp/dense-escape paths
        # at geometry corners; results must not move.
        assert_engines_identical(em3d_trace, config, window=window)
