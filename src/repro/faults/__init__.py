"""Deterministic fault injection and recovery accounting.

See :mod:`repro.faults.plan` for the hardware fault model and
DESIGN.md's "Fault model and recovery" section for the injection sites
and recovery protocols.  :mod:`repro.faults.schedule` holds the seeded
per-site consultation machinery, shared with the service-layer chaos
plan (:mod:`repro.serve.chaos`, DESIGN.md §13).
"""

from .plan import (
    DIRTY_DROP,
    DRAM_TRANSIENT,
    FAULT_SITES,
    MTLB_PARITY,
    SHADOW_BITFLIP,
    FaultConfig,
    FaultPlan,
    FaultStats,
)
from .schedule import SiteSchedule, validate_sites

__all__ = [
    "DIRTY_DROP",
    "DRAM_TRANSIENT",
    "FAULT_SITES",
    "MTLB_PARITY",
    "SHADOW_BITFLIP",
    "FaultConfig",
    "FaultPlan",
    "FaultStats",
    "SiteSchedule",
    "validate_sites",
]
