"""The pinned kernel block-TLB entry.

The paper maps kernel code and data with a single block TLB entry that is
not subject to replacement, so kernel accesses (including the software TLB
miss handler's hashed-page-table probes) never recurse into TLB misses.
"""

from __future__ import annotations

from typing import Optional

from ..core.addrspace import BASE_PAGE_SIZE
from .tlb import TlbEntry


class BlockTlb:
    """A single unevictable translation covering the kernel's range."""

    def __init__(self, vbase: int, pbase: int, size: int) -> None:
        if size <= 0 or size % BASE_PAGE_SIZE:
            raise ValueError("block entry size must be page aligned, positive")
        if vbase % BASE_PAGE_SIZE or pbase % BASE_PAGE_SIZE:
            raise ValueError("block entry bases must be page aligned")
        self.entry = TlbEntry(
            vbase=vbase, pbase=pbase, size=size, supervisor=True
        )
        self.hits = 0

    def lookup(self, vaddr: int) -> Optional[TlbEntry]:
        """Return the block entry if it covers *vaddr*, else None."""
        entry = self.entry
        if entry.vbase <= vaddr < entry.vbase + entry.size:
            self.hits += 1
            return entry
        return None

    def translate(self, vaddr: int) -> int:
        """Translate a kernel virtual address (must be covered)."""
        entry = self.lookup(vaddr)
        if entry is None:
            raise ValueError(
                f"{vaddr:#010x} is outside the kernel block mapping"
            )
        return entry.translate(vaddr)
