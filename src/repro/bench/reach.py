"""Experiment E6 — the reach-equivalence headline.

The paper's introduction: "a system with a 64-entry TLB combined with an
MMC that supported shadow superpages achieved the same performance as a
system with a 128-entry TLB and a conventional MMC" — i.e. the MTLB more
than doubles the *effective* reach of the processor TLB with no MMU
changes.

This bench runs every workload on exactly those two systems and reports
the ratio, plus each configuration's realised TLB reach (bytes mapped by
resident entries at end of run) as a direct mechanical check: with
superpages a 64-entry TLB's resident entries map vastly more memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.config import paper_mtlb, paper_no_mtlb
from ..sim.results import render_table
from ..sim.system import System
from ..workloads import PAPER_SUITE
from .runner import BenchContext


@dataclass
class ReachResult:
    """Per-workload equivalence ratios and reach numbers."""

    ratios: Dict[str, float]
    reach: Dict[str, Tuple[int, int]]
    report: str
    shape_errors: List[str]


def run_reach_equivalence(
    context: Optional[BenchContext] = None,
    workloads: Sequence[str] = PAPER_SUITE,
    progress: bool = False,
) -> ReachResult:
    """Compare 64-entry TLB + MTLB against 128-entry TLB, no MTLB."""
    context = context or BenchContext()
    ratios: Dict[str, float] = {}
    reach: Dict[str, Tuple[int, int]] = {}
    for w in workloads:
        if progress:
            print(f"  running {w}...", flush=True)
        trace = context.trace(w)
        big_conventional = System(paper_no_mtlb(128))
        conv = big_conventional.run(trace)
        small_mtlb = System(paper_mtlb(64))
        shad = small_mtlb.run(trace)
        ratios[w] = shad.total_cycles / conv.total_cycles
        reach[w] = (
            big_conventional.tlb.reach,
            small_mtlb.tlb.reach,
        )
    rows = [
        [
            w,
            f"{ratios[w]:.3f}",
            f"{reach[w][0] >> 10}KB",
            f"{reach[w][1] >> 10}KB",
        ]
        for w in workloads
    ]
    report = render_table(
        [
            "workload",
            "64TLB+MTLB / 128TLB runtime",
            "128-entry TLB reach",
            "64-entry+superpage reach",
        ],
        rows,
        title="Reach equivalence: small TLB + MTLB vs doubled TLB",
    )
    errors = check_reach(ratios, reach)
    return ReachResult(
        ratios=ratios, reach=reach, report=report, shape_errors=errors
    )


def check_reach(
    ratios: Dict[str, float], reach: Dict[str, Tuple[int, int]]
) -> List[str]:
    """Verify the headline: parity or better, and far larger reach."""
    errors: List[str] = []
    for w, ratio in ratios.items():
        if ratio > 1.05:
            errors.append(
                f"{w}: 64-entry+MTLB is {ratio:.3f}x the 128-entry "
                "conventional system (expected parity or better)"
            )
    for w, (conv_reach, shadow_reach) in reach.items():
        if shadow_reach <= 2 * conv_reach:
            errors.append(
                f"{w}: superpage reach {shadow_reach} is not more than "
                f"double the conventional reach {conv_reach}"
            )
    return errors
