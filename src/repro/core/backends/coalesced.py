"""Range-coalesced TLB backend (arXiv:1908.08774).

Real operating systems produce long runs of virtually *and* physically
contiguous base pages; a coalesced TLB detects that contiguity when the
miss handler already has the neighbouring PTEs in hand and installs one
TLB entry covering the whole aligned run.  The CPU TLB needs no change
— the simulator's TLB already supports variable page sizes — so this
backend is pure miss-path policy: after the ordinary software refill
produces a base-page entry, it probes the neighbouring mappings for a
uniform virtual→physical delta and grows the entry through the legal
mapping sizes (16 KB, 64 KB, ... up to ``max_span_bytes``).

Model notes:

* Contiguity is *detected*, never created: the backend installs a
  larger entry only when every base page of the aligned block already
  maps with the same delta and writability.  Translations are therefore
  identical to the per-page path; only reach and miss rate change.
* Each neighbour PTE checked charges ``probe_cycles`` on the miss path
  (the paper's detection happens at page-table fill for near-zero cost;
  the charge models the handler's extra compare-and-mask work).
* Blocks are probed smallest-size-first and probing stops at the first
  failure — a larger aligned block containing the faulting address is a
  superset of the smaller one, so the early exit is exact.

No shadow structures exist under this backend (``mtlb.enabled``,
promotion, all-shadow, and stream buffers are rejected at config time),
so the MMC decodes no shadow window and the kernel runs the
conventional path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from .base import TranslationBackend, require_conventional
from ..addrspace import BASE_PAGE_SIZE, PAGE_SIZES
from ...cpu.miss_handler import PageFault
from ...cpu.tlb import TlbEntry
from ...errors import InvariantViolation, SimulationError
from ...obs.tracer import TLB_MISS

if TYPE_CHECKING:
    from ...sim.system import System


@dataclass(frozen=True)
class CoalescedConfig:
    """Knobs of the range-coalescing miss path.

    ``max_span_bytes`` caps the coalesced entry size and must be a legal
    mapping size (a power-of-four multiple of the 4 KB base page);
    ``probe_cycles`` is charged per neighbour PTE examined.
    """

    max_span_bytes: int = 64 << 10
    probe_cycles: int = 4


class CoalescedBackend(TranslationBackend):
    """Coalesce contiguous base-page runs into one TLB entry."""

    name = "coalesced"

    def __init__(self, config) -> None:
        super().__init__(config)
        self.knobs: CoalescedConfig = config.coalesced
        #: Ascending legal sizes above the base page, capped by the
        #: configured span.
        self._span_sizes = tuple(
            size
            for size in PAGE_SIZES
            if BASE_PAGE_SIZE < size <= self.knobs.max_span_bytes
        )
        #: Installed coalesced blocks, for the sanitizer and metrics:
        #: (pid, vbase, size) -> delta.  Pruned lazily (eviction) and on
        #: shootdown.
        self._installed: Dict[Tuple[int, int, int], int] = {}
        self._counters = {
            "fills": 0,
            "pages": 0,
            "probes": 0,
            "rejected": 0,
        }

    @classmethod
    def validate(cls, config) -> None:
        require_conventional(config, "coalesced")
        span = config.coalesced.max_span_bytes
        if span < BASE_PAGE_SIZE or span not in PAGE_SIZES:
            raise ValueError(
                f"coalesced.max_span_bytes must be a legal mapping size "
                f"(one of {', '.join(hex(s) for s in PAGE_SIZES)}), "
                f"got {span:#x}"
            )
        if config.coalesced.probe_cycles < 0:
            raise ValueError("coalesced.probe_cycles must be >= 0")

    @classmethod
    def vector_config_supported(cls, config) -> Tuple[bool, str]:
        del config
        return False, (
            "backend 'coalesced' has no vector coverage mirror yet "
            "(v1 runs the scalar engine)"
        )

    # -- miss path ------------------------------------------------------ #

    def refill_tlb(self, system: "System", vaddr: int):
        try:
            result = system.miss_handler.handle(
                vaddr, system._kernel_access
            )
        except PageFault as exc:
            raise SimulationError(
                f"unexpected page fault at {exc.vaddr:#010x}: workload "
                "traces must map every region they touch"
            ) from exc
        entry = result.entry
        cycles = result.cycles
        if entry.size == BASE_PAGE_SIZE and self._span_sizes:
            entry, cycles = self._coalesce(system, vaddr, entry, cycles)
        system.tlb.insert(entry)
        if system._tracer is not None:
            system._tracer.emit(TLB_MISS, vaddr, cycles)
        return entry, cycles

    def _coalesce(self, system: "System", vaddr: int, entry, cycles):
        """Grow *entry* through the legal sizes while contiguity holds."""
        process = system.kernel.current
        if process is None:
            return entry, cycles
        table = process.page_table
        counters = self._counters
        probe_cycles = self.knobs.probe_cycles
        delta = entry.pbase - entry.vbase
        best_size = entry.size
        lo = entry.vbase
        hi = entry.vbase + entry.size
        for size in self._span_sizes:
            vblock = vaddr & ~(size - 1)
            ok = True
            for page in range(vblock, vblock + size, BASE_PAGE_SIZE):
                if lo <= page < hi:
                    continue  # verified while probing a smaller block
                counters["probes"] += 1
                cycles += probe_cycles
                mapping = table.lookup(page)
                if (
                    mapping is None
                    or mapping.pbase - mapping.vbase != delta
                    or mapping.writable != entry.writable
                ):
                    ok = False
                    break
            if not ok:
                break
            best_size = size
            lo, hi = vblock, vblock + size
        if best_size == entry.size:
            counters["rejected"] += 1
            return entry, cycles
        counters["fills"] += 1
        counters["pages"] += best_size // BASE_PAGE_SIZE
        coalesced = TlbEntry(
            vbase=lo,
            pbase=lo + delta,
            size=best_size,
            writable=entry.writable,
        )
        self._installed[(process.pid, lo, best_size)] = delta
        return coalesced, cycles

    def on_shootdown(
        self, system: "System", vstart: int, length: int
    ) -> None:
        del system
        end = vstart + length
        doomed = [
            key
            for key in self._installed
            if key[1] < end and key[1] + key[2] > vstart
        ]
        for key in doomed:
            del self._installed[key]

    # -- metrics / checking --------------------------------------------- #

    def register_metrics(self, system: "System") -> None:
        system.metrics.add_source("coalesced", lambda: dict(self._counters))
        system.metrics.add_source(
            "backend", lambda: {"reach_bytes": self.reach_bytes(system)}
        )

    def sanitize(self, system: "System", where: str) -> None:
        """Every tracked coalesced entry still resident in the TLB must
        agree with the owning process's page table: same delta and
        writability on every base page it spans (a violation means the
        backend is serving translations the OS never installed)."""
        tlb = system.tlb
        processes = {
            p.pid: p for p in system.kernel._processes.values()
        }
        stale = []
        for (pid, vbase, size), delta in self._installed.items():
            resident = tlb._by_size.get(size, {}).get(vbase)
            process = processes.get(pid)
            if resident is None or process is None:
                stale.append((pid, vbase, size))
                continue
            if resident.pbase - resident.vbase != delta:
                raise InvariantViolation(
                    "backend.coalesced",
                    f"entry {vbase:#010x}/{size:#x} delta "
                    f"{resident.pbase - resident.vbase:#x} does not "
                    f"match the installed delta {delta:#x}",
                    where,
                )
            for page in range(vbase, vbase + size, BASE_PAGE_SIZE):
                mapping = process.page_table.lookup(page)
                if mapping is None or mapping.pbase - mapping.vbase != delta:
                    raise InvariantViolation(
                        "backend.coalesced",
                        f"page {page:#010x} of coalesced entry "
                        f"{vbase:#010x}/{size:#x} no longer maps with "
                        f"delta {delta:#x} in process {pid} (missed "
                        "shootdown)",
                        where,
                    )
        for key in stale:
            del self._installed[key]
