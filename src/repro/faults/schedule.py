"""Seeded per-site consultation schedules, shared injection machinery.

Both fault layers of the reproduction — the *hardware* fault plan
(:mod:`repro.faults.plan`, PR 1) and the *service-layer* chaos plan
(:mod:`repro.serve.chaos`) — need the same determinism contract: each
named injection site owns a private PRNG seeded from ``(seed, site)``
and a monotonically increasing consultation counter, so the same
configuration produces the same injection schedule regardless of how
sites interleave.  :class:`SiteSchedule` is that contract, factored out
so the two plans cannot drift apart.

Invariants (pinned by ``tests/unit/test_faults.py`` and
``tests/unit/test_serve_chaos.py``):

* a site's decision sequence is a pure function of ``(seed, site,
  rate, triggers)`` — consulting *other* sites in between never
  perturbs it;
* a site with rate 0 never draws from its PRNG, so adding a quiet site
  cannot shift a noisy one;
* triggers fire exactly at their 1-based consultation counts,
  independent of the probabilistic rates.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["SiteSchedule", "validate_sites"]


def validate_sites(
    sites: Iterable[str],
    rates: Mapping[str, float],
    triggers: Iterable[Tuple[str, int]],
) -> None:
    """Reject out-of-range rates and unknown/zero-based triggers."""
    known = tuple(sites)
    for site in known:
        rate = rates.get(site, 0.0)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{site}_rate must be in [0, 1], got {rate}")
    for site, count in triggers:
        if site not in known:
            raise ValueError(f"unknown injection site {site!r}")
        if count < 1:
            raise ValueError(
                f"trigger counts are 1-based, got {count} for {site}"
            )


class SiteSchedule:
    """Deterministic per-site injection decisions for one run/sweep.

    ``fires(site)`` advances the site's consultation counter and (only
    when the site has a nonzero rate) its PRNG; the fired schedule is
    kept as ``(site, consultation_number)`` pairs so tests can assert
    determinism: same seed ⇒ same schedule.
    """

    def __init__(
        self,
        seed: object,
        sites: Iterable[str],
        rates: Mapping[str, float],
        triggers: Iterable[Tuple[str, int]] = (),
    ) -> None:
        self.sites: Tuple[str, ...] = tuple(sites)
        self.rates: Dict[str, float] = {
            site: float(rates.get(site, 0.0)) for site in self.sites
        }
        self.rngs: Dict[str, random.Random] = {
            site: random.Random(f"{seed}:{site}") for site in self.sites
        }
        self.counts: Dict[str, int] = {site: 0 for site in self.sites}
        self.triggers: Dict[str, set] = {site: set() for site in self.sites}
        for site, count in triggers:
            self.triggers[site].add(count)
        #: Every fired injection as (site, consultation_number), in order.
        self.schedule: List[Tuple[str, int]] = []

    def fires(self, site: str) -> bool:
        """Consult the schedule at *site*; True means inject now."""
        count = self.counts[site] + 1
        self.counts[site] = count
        fired = count in self.triggers[site]
        rate = self.rates[site]
        if rate > 0.0 and self.rngs[site].random() < rate:
            fired = True
        if fired:
            self.schedule.append((site, count))
        return fired

    def consultations(self, site: str) -> int:
        """How many times *site* has been consulted so far."""
        return self.counts[site]

    def next_trigger_distance(self) -> "int | None":
        """Consultations until the nearest still-pending exact trigger.

        Returns the minimum over all sites of ``trigger_count -
        consultations(site)`` for triggers not yet reached, or ``None``
        when no exact trigger is pending.  Pure read: no counter moves,
        no PRNG draws (rate-based decisions are not predictable and are
        deliberately ignored — this exists so the vector engine can
        clamp its fast-forward window to the next *scheduled* fire
        point; probabilistic sites disqualify vector batching long
        before this is consulted).
        """
        best = None
        for site, pending in self.triggers.items():
            done = self.counts[site]
            for count in pending:
                if count > done and (best is None or count - done < best):
                    best = count - done
        return best

    def rng(self, site: str) -> random.Random:
        """The site's private PRNG (for deterministic fault shaping)."""
        return self.rngs[site]
