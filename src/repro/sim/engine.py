"""Trace-execution engines: the scalar loop and the vectorized
fast-forward engine (DESIGN.md §10).

Both engines execute one :class:`~repro.trace.trace.Segment` against a
:class:`~repro.sim.system.System` and must be **bit-identical** in every
RunStats and metrics value — the equivalence suite
(``tests/integration/test_engine_equivalence.py``) and the CI
``repro metrics diff --require-identical`` gate enforce it.

* :func:`run_segment_scalar` is the per-reference Python loop (the only
  engine until this module landed).  It inlines the TLB and
  direct-mapped-cache hit paths against component internals, probing the
  MRU page size first and resolving overlapping mappings to the most
  specific entry, exactly like :meth:`repro.cpu.tlb.Tlb.lookup`.

* :func:`run_segment_vector` exploits the paper's own observation that
  the common case — a TLB hit plus a cache hit — has a statically known
  cost (one instruction cycle) and no side effects beyond NRU/dirty
  bits.  It slices the segment into prediction windows and resolves each
  window in three numpy passes:

  1. **TLB coverage** against a mirror of the resident entries
     (:meth:`~repro.cpu.tlb.Tlb.coverage_arrays`).  The window's usable
     *prefix* ends at the first uncovered reference: the software refill
     probes the hashed page table through the data cache and may
     promote, so nothing behind a TLB miss is trusted.
  2. A **self-consistent cache schedule** for the whole prefix
     (:func:`_self_consistent_hits`): in a direct-mapped cache the line
     a reference observes is simply the tag of the previous same-set
     reference in the window (hit or miss), or the frozen tag array
     entry.  Ordinary cache misses therefore do *not* end the prefix —
     their fills are part of the schedule.
  3. **Bulk retirement**: cycle sums via the segment's gap cumsum,
     store dirty bits via precomputed store-position boundaries, NRU
     referenced bits via per-entry touch masks
     (:meth:`~repro.cpu.tlb.Tlb.touch_pages`), applied before the next
     refill can read them.

  Only the misses walk the real machine: each one runs the *same*
  scalar miss path (writeback, fill stall, fault service, tracer clock
  stamping).  If fault service reaches the kernel and the kernel
  touches the cache — observable as a moved
  :attr:`~repro.mem.cache.DirectMappedCache.mutation_stamp` — the rest
  of the schedule is stale and prediction restarts after that miss.

  Phases so TLB-miss-dense that windows degenerate (EM3D's random
  pointer chase against a 64-entry TLB misses every ~25 references) are
  detected and stepped through with the scalar loop
  (:func:`_scalar_span`), so the vector engine is never meaningfully
  slower than scalar.

Within a prefix the predictions are exact, not heuristic: hits never
change TLB content or cache tags (only NRU/dirty bits, which do not
feed the hit predicate), and miss fills change tags exactly as the
schedule says.  Hit runs never stamp ``tracer.clock`` in either engine,
which is what keeps observability event timestamps identical.

Every configuration the simulator can express today batches (the PR-8
lift; DESIGN.md §10 "lifted restrictions"):

* **Set-associative caches** ride a residency-mirror variant of the
  same window pipeline (:func:`_run_segment_vector_setassoc`): a pure
  LRU *hit* never changes which lines are resident, so a lazily built
  ``(sets, ways)`` tag plane (:meth:`SetAssociativeCache.ensure_mirror`)
  makes "whole run hits" one vectorized membership test, and the hit
  run's LRU reordering + dirty accumulation replays into the real set
  dicts per *unique line* instead of per reference.
* **Active fault plans** no longer refuse: every ``FaultPlan.fires``
  consultation lives on a miss path, and the engines execute every miss
  through the real machine in program order, so the consultation
  sequence — and therefore the injection schedule — is identical by
  construction.  The window predictor additionally clamps each window
  to the distance of the next *scheduled* trigger
  (:meth:`~repro.faults.plan.FaultPlan.next_trigger_distance`), so a
  directed fault lands in a small window and its kernel-entry pollution
  restart stays cheap.
* **Multiprogramming** keeps one :class:`EngineState` (adaptive window
  + dense counter) per process, swapped at context switches, so each
  scheduler quantum resumes the fast-forward geometry it learned.

The only remaining refusal is a cache model the engine has no residency
mirror for; ``engine="auto"`` then falls back to scalar and
``engine="vector"`` raises.  Sanitizer hooks (``System.check_hook``)
run at segment/event boundaries in both engines, and every segment
boundary is a window-retirement point, so sanitized runs batch too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

import numpy as np

from ..core.addrspace import (
    BASE_PAGE_MASK,
    BASE_PAGE_SHIFT,
    CACHE_LINE_SHIFT,
)
from ..core.mtlb import MtlbFault, _Way
from ..core.shadow_table import (
    DIRTY_BIT,
    FAULT_BIT,
    PFN_MASK,
    REF_BIT,
    VALID_BIT,
)
from ..errors import ReferenceBudgetExceeded, SimulationError
from ..mem.cache import DirectMappedCache, SetAssociativeCache
from ..mem.mmc import BadPhysicalAddress

if TYPE_CHECKING:
    from ..os_model.process import Process
    from ..trace.trace import Segment
    from .system import System

__all__ = [
    "EngineState",
    "resolve_engine",
    "resolve_engine_decision",
    "run_segment_scalar",
    "run_segment_vector",
    "vector_config_supported",
    "vector_supported",
]

#: Adaptive prediction-window bounds: the window doubles after a fully
#: consumed window and shrinks toward the observed TLB-hit run length,
#: so refill-dense phases waste little prediction and hit-dense phases
#: amortise the numpy fixed costs over tens of thousands of references.
INITIAL_WINDOW = 1 << 10
MIN_WINDOW = 1 << 6
MAX_WINDOW = 1 << 16

#: Dense-phase escape hatch: when two consecutive prefixes end in fewer
#: than DENSE_RUN references, the next SCALAR_SPAN references are
#: stepped with the scalar loop before vector prediction is retried.
DENSE_RUN = 1 << 6
SCALAR_SPAN = 1 << 12


def vector_supported(system: "System") -> Tuple[bool, str]:
    """Can the vector engine batch this machine?  ``(ok, reason)``.

    Since the PR-8 lift this accepts set-associative caches and active
    fault plans (see the module docstring for why both are exact); the
    only refusal left is a cache model the engine has no residency
    mirror for.
    """
    if not isinstance(
        system.cache, (DirectMappedCache, SetAssociativeCache)
    ):
        return False, (
            f"cache model {type(system.cache).__name__} has no "
            "residency mirror"
        )
    ok, why = system.backend.vector_config_supported(system.config)
    if not ok:
        return False, why
    return True, ""


def vector_config_supported(config) -> Tuple[bool, str]:
    """Config-level mirror of :func:`vector_supported`.

    Lets the scenario scheduler (``repro.serve``) reject an
    ``engine='vector'`` spec *before* any shard worker is spawned.
    Every *cache* a :class:`~repro.sim.config.SystemConfig` can express
    batches (``build_cache`` only ever returns the two mirrored
    models); what can refuse is the translation backend — the vector
    engine's coverage mirror only models the mtlb family's miss path,
    so backends without one (coalesced, victima) force the scalar
    engine in v1 and an explicit ``engine='vector'`` request is
    rejected here with the backend's reason.
    """
    from ..core.backends import get_backend

    return get_backend(config.backend).vector_config_supported(config)


def resolve_engine_decision(system: "System") -> Tuple[str, str]:
    """Pick the engine for *system* and say why: ``(engine, reason)``.

    The reason string is what the run banner and
    ``RunReport``/``sim.engine_resolved`` surfacing show, so an
    ``auto`` fallback is never silent.
    """
    requested = system.config.engine
    if requested == "scalar":
        return "scalar", "requested by config"
    ok, why = vector_supported(system)
    if requested == "vector":
        if not ok:
            raise SimulationError(
                f"engine='vector' cannot batch this configuration: {why}"
            )
        return "vector", "requested by config"
    if ok:
        return "vector", "auto: configuration batches"
    return "scalar", f"auto fallback: {why}"


def resolve_engine(system: "System") -> str:
    """Pick the engine for *system* per its ``config.engine`` policy."""
    return resolve_engine_decision(system)[0]


@dataclass
class EngineState:
    """Adaptive-predictor state the vector engine carries across
    segments.

    Window geometry never changes results (pinned by the hypothesis
    geometry tests), only how much prediction is wasted — so this is
    pure perf state.  :class:`~repro.sim.system.System` owns one;
    :class:`~repro.sim.multiprog.MultiProgram` keeps one *per process*
    and swaps it in at context switches, so each scheduler quantum
    resumes the fast-forward geometry its own access pattern taught the
    predictor instead of inheriting another process's.
    """

    window: int = INITIAL_WINDOW
    dense: int = 0


def _check_budget(system: "System", n: int) -> None:
    if system.reference_budget is not None:
        if system.stats.references + n > system.reference_budget:
            raise ReferenceBudgetExceeded(
                system.stats.references + n, system.reference_budget
            )


# ====================================================================== #
# Fused miss path
# ====================================================================== #

#: numpy scalars for the shadow-table accounting-bit updates, matching
#: ShadowPageTable.set_referenced / set_dirty / set_fault exactly.
_REF_NP = np.uint32(REF_BIT)
_DIRTY_REF_NP = np.uint32(DIRTY_BIT | REF_BIT)
_FAULT_NP = np.uint32(FAULT_BIT)


def _fused_paths(
    system: "System",
) -> Optional[Tuple[Callable, Callable, Callable]]:
    """Build the fused cache-miss path for *system*, if it qualifies.

    Returns ``(fill, writeback, drain)`` closures or None.  The fused
    path collapses ``System._fill_stall`` → ``MemoryController`` →
    ``Mtlb``/``Dram``/``Bus`` — about eight Python calls and a dozen
    attribute-counter bumps per cache miss — into one closure that does
    the same arithmetic on cached locals.  All event counters accumulate
    in closure locals and ``drain()`` folds them into the real stats
    objects; that is observationally identical because counters are pure
    sums nothing reads mid-segment (callers drain before the segment
    epilogue samples metrics).  Machine *state*, by contrast, is mutated
    live and in order — DRAM open rows, MTLB way dicts, shadow-table
    entry bits — so kernel code running between fused calls (TLB refills,
    fault service) interleaves exactly as with the unfused components.

    Qualification mirrors what the unfused path could observe: no event
    tracer (events carry clock stamps the fused path does not compute),
    no fault plan (injection sites live in the components), no stream
    buffers, no ablation-A9 bit-writeback charging, no oracle checker,
    and a clean shadow-table parity set.
    """
    mmc = system.mmc
    mtlb = mmc.mtlb
    if (
        system._tracer is not None
        or mmc.tracer is not None
        or system._oracle_every
        or system.fault_plan is not None
        or mmc.fault_plan is not None
        or mmc.stream_buffers is not None
        or mmc.timing.bit_writeback
    ):
        return None
    if mtlb is not None and (
        mtlb.tracer is not None
        or mtlb.fault_plan is not None
        or mmc.shadow_table._bad_parity
    ):
        return None

    bus = system.bus
    bt = bus.timing
    bus_ratio = bt.cpu_cycles_per_bus_cycle
    req_cpu = bt.request_cycles * bus_ratio
    ret_cpu = bt.line_beats * bt.beat_cycles * bus_ratio
    reqret_cpu = req_cpu + ret_cpu
    wb_cpu = (bt.request_cycles + bt.line_beats * bt.beat_cycles) * bus_ratio

    timing = mmc.timing
    base_mmc = timing.base_occupancy + (
        timing.shadow_check if mtlb is not None else 0
    )
    mmc_ratio = timing.cpu_cycles_per_mmc_cycle

    dram = mmc.dram
    dt = dram.timing
    row_shift = dt.row_shift
    banks = dt.banks
    row_hit_c = dt.row_hit_cycles
    row_miss_c = dt.row_miss_cycles
    open_rows = dram._open_rows  # live list, shared with unfused accesses

    mm = mmc.memory_map
    shadow_base = mm.shadow_base
    shadow_end = mm.shadow_end
    dram_size = mm.dram_size

    stats = system.stats
    kernel = system.kernel

    if mtlb is not None:
        table = mmc.shadow_table
        entries_arr = table._entries
        table_base = table.table_base
        sets = mtlb._sets
        set_mask = mtlb._set_mask
        assoc = mtlb.associativity

    # Deferred event counters, folded into the stats objects by drain().
    # The set is deliberately minimal — everything derivable is derived
    # at drain time, because each closure-cell read-modify-write on the
    # per-miss path costs real time at half a million calls per run:
    # every successful fused fill is exactly one bus fill transaction
    # and one RunStats fill, every fused writeback one bus writeback
    # transaction; bus occupancy is a fixed cost per transaction kind;
    # the fill stall sum is d_fills * (request + return) + d_fill_cpu;
    # DRAM row hits are accesses minus row misses; MTLB hits are lookups
    # minus misses, and every MTLB miss is exactly one hardware fill.
    d_dram_acc = d_dram_miss = 0
    d_fills = d_shadow_fills = d_wbs = d_shadow_wbs = d_fill_cpu = 0
    d_m_look = d_m_miss = d_m_evict = d_m_fault = d_m_bits = 0

    def drain() -> None:
        nonlocal d_dram_acc, d_dram_miss
        nonlocal d_fills, d_shadow_fills, d_wbs, d_shadow_wbs, d_fill_cpu
        nonlocal d_m_look, d_m_miss, d_m_evict, d_m_fault, d_m_bits
        ds = dram.stats
        ds.accesses += d_dram_acc
        ds.row_hits += d_dram_acc - d_dram_miss
        ds.row_misses += d_dram_miss
        d_dram_acc = d_dram_miss = 0
        bs = bus.stats
        bs.transactions += d_fills + d_wbs
        bs.fill_transactions += d_fills
        bs.writeback_transactions += d_wbs
        bs.busy_cpu_cycles += d_fills * reqret_cpu + d_wbs * wb_cpu
        ms = mmc.stats
        ms.fills += d_fills
        ms.shadow_fills += d_shadow_fills
        ms.writebacks += d_wbs
        ms.shadow_writebacks += d_shadow_wbs
        ms.fill_cpu_cycles += d_fill_cpu
        stats.fills += d_fills
        stats.fill_stall_cycles += d_fills * reqret_cpu + d_fill_cpu
        d_fills = d_shadow_fills = d_wbs = d_shadow_wbs = d_fill_cpu = 0
        if mtlb is not None:
            ts = mtlb.stats
            ts.lookups += d_m_look
            ts.hits += d_m_look - d_m_miss
            ts.misses += d_m_miss
            ts.fills += d_m_miss
            ts.evictions += d_m_evict
            ts.faults += d_m_fault
            ts.bit_writebacks += d_m_bits
            d_m_look = d_m_miss = d_m_evict = d_m_fault = d_m_bits = 0

    def fill(paddr: int, op: int) -> int:
        """``System._fill_stall`` with the whole machine inlined.

        ``Mtlb.pending_bit_write`` is not maintained: its only consumer
        is the ``bit_writeback`` charging branch, which this path's
        qualification gates off.
        """
        nonlocal d_dram_acc, d_dram_miss
        nonlocal d_fills, d_shadow_fills, d_fill_cpu
        nonlocal d_m_look, d_m_miss, d_m_evict, d_m_fault, d_m_bits
        paged_in = False
        while True:
            mmc_c = base_mmc
            if shadow_base <= paddr < shadow_end:
                si = (paddr - shadow_base) >> BASE_PAGE_SHIFT
                # Mtlb.access(si, op == 1), no injection sites.
                d_m_look += 1
                ws = sets[si & set_mask]
                way = ws.get(si)
                filled = False
                if way is not None:
                    way.nru_referenced = True
                else:
                    d_m_miss += 1
                    raw = int(entries_arr[si])
                    way = _Way(si, raw & PFN_MASK, bool(raw & VALID_BIT))
                    if len(ws) >= assoc:
                        victim = None
                        for key, w in ws.items():
                            if not w.nru_referenced:
                                victim = key
                                break
                        if victim is None:
                            for w in ws.values():
                                w.nru_referenced = False
                            victim = next(iter(ws))
                        del ws[victim]
                        d_m_evict += 1
                    ws[si] = way
                    filled = True
                if not way.valid:
                    # The fault precedes the fill's DRAM accesses, so
                    # nothing below has run yet — exactly as the
                    # exception out of Mtlb.access leaves things.
                    d_m_fault += 1
                    entries_arr[si] |= _FAULT_NP
                    if paged_in:
                        raise MtlbFault(si, bool(op))
                    paged_in = True
                    drain()  # kernel page-in interleaves with live stats
                    stats.kernel_cycles += kernel.handle_mtlb_fault(si)
                    continue
                if op:
                    entries_arr[si] |= _DIRTY_REF_NP
                    if not way.dirty_written:
                        way.dirty_written = True
                        way.ref_written = True
                        d_m_bits += 1
                else:
                    entries_arr[si] |= _REF_NP
                    if not way.ref_written:
                        way.ref_written = True
                        d_m_bits += 1
                if filled:
                    # Hardware fill: one DRAM access to the flat table.
                    row = (table_base + (si << 2)) >> row_shift
                    bank = row % banks
                    d_dram_acc += 1
                    if open_rows[bank] == row:
                        mmc_c += row_hit_c
                    else:
                        d_dram_miss += 1
                        open_rows[bank] = row
                        mmc_c += row_miss_c
                real = (way.pfn << BASE_PAGE_SHIFT) | (paddr & BASE_PAGE_MASK)
                d_shadow_fills += 1
            else:
                if paddr >= dram_size or paddr < 0:
                    raise BadPhysicalAddress(paddr)
                real = paddr
            row = real >> row_shift
            bank = row % banks
            d_dram_acc += 1
            if open_rows[bank] == row:
                mmc_c += row_hit_c
            else:
                d_dram_miss += 1
                open_rows[bank] = row
                mmc_c += row_miss_c
            cpu_c = mmc_c * mmc_ratio
            d_fills += 1
            d_fill_cpu += cpu_c
            return req_cpu + cpu_c + ret_cpu

    def writeback(paddr: int) -> None:
        """``Bus.writeback_cycles`` + ``MemoryController.writeback``
        (the engines discard the returned occupancy: writebacks are
        buffered and never stall the processor)."""
        nonlocal d_dram_acc, d_dram_miss
        nonlocal d_wbs, d_shadow_wbs
        nonlocal d_m_look, d_m_miss, d_m_evict, d_m_fault, d_m_bits
        if shadow_base <= paddr < shadow_end:
            si = (paddr - shadow_base) >> BASE_PAGE_SHIFT
            d_m_look += 1
            ws = sets[si & set_mask]
            way = ws.get(si)
            filled = False
            if way is not None:
                way.nru_referenced = True
            else:
                d_m_miss += 1
                raw = int(entries_arr[si])
                way = _Way(si, raw & PFN_MASK, bool(raw & VALID_BIT))
                if len(ws) >= assoc:
                    victim = None
                    for key, w in ws.items():
                        if not w.nru_referenced:
                            victim = key
                            break
                    if victim is None:
                        for w in ws.values():
                            w.nru_referenced = False
                        victim = next(iter(ws))
                    del ws[victim]
                    d_m_evict += 1
                ws[si] = way
                filled = True
            if not way.valid:
                d_m_fault += 1
                entries_arr[si] |= _FAULT_NP
                raise AssertionError(
                    "writeback faulted: the OS must flush dirty data "
                    "before invalidating a shadow mapping"
                )
            entries_arr[si] |= _DIRTY_REF_NP
            if not way.dirty_written:
                way.dirty_written = True
                way.ref_written = True
                d_m_bits += 1
            if filled:
                row = (table_base + (si << 2)) >> row_shift
                bank = row % banks
                d_dram_acc += 1
                if open_rows[bank] != row:
                    d_dram_miss += 1
                    open_rows[bank] = row
            real = (way.pfn << BASE_PAGE_SHIFT) | (paddr & BASE_PAGE_MASK)
            d_shadow_wbs += 1
        else:
            if paddr >= dram_size or paddr < 0:
                raise BadPhysicalAddress(paddr)
            real = paddr
        row = real >> row_shift
        bank = row % banks
        d_dram_acc += 1
        if open_rows[bank] != row:
            d_dram_miss += 1
            open_rows[bank] = row
        d_wbs += 1

    return fill, writeback, drain


# ====================================================================== #
# Scalar engine
# ====================================================================== #


def _scalar_span(
    system: "System",
    seg: "Segment",
    start: int,
    stop: int,
    seg_base: int,
    inst_cycles: int,
    tlb_miss_cycles: int,
    mem_stall: int,
    tlb_misses: int,
    cache_misses: int,
    fill_path: Optional[Callable] = None,
    wb_path: Optional[Callable] = None,
) -> Tuple[int, int, int, int, int]:
    """Execute references ``[start, stop)`` one at a time.

    The whole scalar engine is one full-segment span; the vector engine
    calls this for TLB-miss-dense stretches.  Accumulators are threaded
    through so tracer clock stamps see the true segment-relative totals.
    *fill_path*/*wb_path* let the vector engine substitute its fused
    miss path; the defaults are the plain component calls, which keeps
    the scalar engine an independent reference for the equivalence
    suite.
    """
    ops = seg.ops[start:stop].tolist()
    vaddrs = seg.vaddrs[start:stop].tolist()
    gaps = seg.gaps[start:stop].tolist()

    tlb = system.tlb
    by_size = tlb._by_size
    sizes = tlb._sizes  # live list: refills mutate it in place
    mru_size = tlb._mru_size
    cache = system.cache
    inline_cache = isinstance(cache, DirectMappedCache)
    if inline_cache:
        tags = cache._tags
        cdirty = cache._dirty
        imask = cache._index_mask
        phys_indexed = cache.physically_indexed

    refill = system._refill_tlb
    miss_path = fill_path if fill_path is not None else system._fill_stall
    if wb_path is None:
        bus = system.bus
        mmc = system.mmc

        def wb_path(paddr: int) -> None:
            bus.writeback_cycles()
            mmc.writeback(paddr)

    # Event timestamps: components stamp ``tracer.clock``, which the
    # loop advances on the miss branches only (hit paths stay clean).
    tracer = system._tracer

    for i in range(len(vaddrs)):
        vaddr = vaddrs[i]
        op = ops[i]
        inst_cycles += gaps[i] + 1

        # TLB probe: MRU size first; a hit there still checks smaller
        # resident sizes so the most specific mapping wins (mirrors
        # Tlb._find).
        entry = None
        if mru_size is not None:
            table = by_size.get(mru_size)
            if table is not None:
                entry = table.get(vaddr & ~(mru_size - 1))
        if entry is not None:
            if sizes[0] < mru_size:
                for size in sizes:
                    if size >= mru_size:
                        break
                    small = by_size[size].get(vaddr & ~(size - 1))
                    if small is not None:
                        entry = small
                        break
                mru_size = entry.size
        else:
            for size in sizes:
                if size == mru_size:
                    continue
                found = by_size[size].get(vaddr & ~(size - 1))
                if found is not None:
                    entry = found
                    mru_size = size
                    break
        if entry is None:
            tlb_misses += 1
            if tracer is not None:
                tracer.clock = (
                    seg_base + inst_cycles + tlb_miss_cycles + mem_stall
                )
            entry, cost = refill(vaddr)
            tlb_miss_cycles += cost
            mru_size = entry.size
        else:
            entry.nru_referenced = True
        paddr = entry.pbase + vaddr - entry.vbase

        if inline_cache:
            idx = ((paddr if phys_indexed else vaddr) >> 5) & imask
            tag = paddr >> 5
            if tags[idx] == tag:
                if op:
                    cdirty[idx] = 1
            else:
                cache_misses += 1
                old = int(tags[idx])
                if old != -1 and cdirty[idx]:
                    cache.stats.writebacks += 1
                    wb_path(old << 5)
                tags[idx] = tag
                cdirty[idx] = 1 if op else 0
                if tracer is not None:
                    tracer.clock = (
                        seg_base
                        + inst_cycles
                        + tlb_miss_cycles
                        + mem_stall
                    )
                mem_stall += miss_path(paddr, op)
        else:
            result = cache.access(vaddr, paddr, op == 1)
            if not result.hit:
                cache_misses += 1
                if result.writeback_paddr is not None:
                    wb_path(result.writeback_paddr)
                if tracer is not None:
                    tracer.clock = (
                        seg_base
                        + inst_cycles
                        + tlb_miss_cycles
                        + mem_stall
                    )
                mem_stall += miss_path(paddr, op)

    tlb._mru_size = mru_size
    return inst_cycles, tlb_miss_cycles, mem_stall, tlb_misses, cache_misses


def run_segment_scalar(
    system: "System", seg: "Segment", process: "Process"
) -> None:
    """Execute one segment reference by reference."""
    n = seg.refs
    _check_budget(system, n)
    stats = system.stats
    seg_base = (
        stats.instruction_cycles
        + stats.memory_stall_cycles
        + stats.tlb_miss_cycles
        + stats.kernel_cycles
    )
    acc = _scalar_span(system, seg, 0, n, seg_base, 0, 0, 0, 0, 0)
    _fold_segment(
        system,
        seg,
        n,
        acc[3],
        acc[4],
        isinstance(system.cache, DirectMappedCache),
        acc[0],
        acc[1],
        acc[2],
    )


# ====================================================================== #
# Vector fast-forward engine
# ====================================================================== #


def _self_consistent_hits(
    tags: np.ndarray, line_idx: np.ndarray, tag: np.ndarray
) -> np.ndarray:
    """Exact in-window hit mask for a direct-mapped cache.

    A reference hits iff the line its set holds when it executes carries
    its tag — and in a direct-mapped cache that line is simply the tag
    of the *previous reference to the same set within the window*
    (whether that reference hit or missed, the set holds its tag
    afterwards), or the frozen ``tags`` array entry if the window has
    not touched the set yet.  A stable argsort groups references by set
    while preserving program order inside each group, so the whole
    schedule — including the fills the window's own misses perform —
    resolves in a handful of vector ops, with no fixpoint iteration.

    Exact only while nothing *outside* the window's own references
    mutates the cache; the caller watches
    :attr:`~repro.mem.cache.DirectMappedCache.mutation_stamp` and
    re-predicts from the first polluting miss onward.

    Returns ``(hit, order, li_s, tag_s, prev_tag, first)``: the hit mask
    in program order, plus the sorted-domain (grouped-by-set) arrays the
    vectorized miss retirement (:func:`_vector_miss_retire`) reuses —
    ``order`` is the stable argsort, ``li_s``/``tag_s`` the permuted
    sets/tags, ``prev_tag`` the line each reference observes, and
    ``first`` marks each set group's first reference.
    """
    t = len(line_idx)
    order = np.argsort(line_idx, kind="stable")
    li_s = line_idx[order]
    tag_s = tag[order]
    prev_tag = np.empty(t, dtype=np.int64)
    prev_tag[1:] = tag_s[:-1]
    first = np.empty(t, dtype=bool)
    first[0] = True
    np.not_equal(li_s[1:], li_s[:-1], out=first[1:])
    prev_tag[first] = tags[li_s[first]]
    hit = np.empty(t, dtype=bool)
    hit[order] = tag_s == prev_tag
    return hit, order, li_s, tag_s, prev_tag, first


def _vector_miss_retire(
    system: "System",
    tags: np.ndarray,
    cdirty: np.ndarray,
    order: np.ndarray,
    li_s: np.ndarray,
    tag_s: np.ndarray,
    prev_tag: np.ndarray,
    first: np.ndarray,
    store_mask: np.ndarray,
    mp: np.ndarray,
    paddr: np.ndarray,
) -> Optional[int]:
    """Retire a fully covered prefix — misses included — in numpy.

    When every fill and victim writeback of the prefix lands in
    installed DRAM, the whole miss path is pure arithmetic: no MTLB
    state, no faults, and therefore no kernel entry that could observe
    or pollute mid-prefix cache state.  Everything the per-miss loop
    would do then vectorizes:

    * the *victim dirty bit* each miss observes is "was there a store to
      this set since the set's last in-window miss (which reset the bit
      to its own op), or — before the first in-window miss — since the
      frozen bit": a windowed any-store test via one cumulative sum over
      the set-grouped store flags;
    * the *DRAM open-row chain* is the cache-schedule trick again: an
      access hits iff its row equals the previous same-bank access's row
      (writebacks and fills interleaved in program order), or the live
      open row for a bank's first access;
    * final tags/dirty bits per touched set are the last reference's,
      committed with one scatter each, and every counter is a sum.

    Returns the memory-stall cycles to add, or None if the prefix does
    not qualify (some address falls outside installed DRAM — shadow
    traffic goes through the sequential MTLB path).  On None, nothing
    has been mutated.
    """
    t = len(li_s)
    nm = len(mp)
    mmc = system.mmc
    mm = mmc.memory_map
    dram_size = mm.dram_size
    if nm:
        fill_addr = paddr[mp]
        if int(fill_addr.max()) >= dram_size:
            return None

    ops_s = store_mask[order]
    hit_s = tag_s == prev_tag

    # Victim dirty bit at each position, sorted domain: any store in
    # [q, p) where q is the set's last in-window miss at or before p-1
    # (the miss's own op included — a miss resets the bit to its op), or
    # the frozen bit OR'd with the stores since the group start.
    ar = np.arange(t, dtype=np.int64)
    gs = np.maximum.accumulate(np.where(first, ar, 0))
    lastm = np.maximum.accumulate(np.where(~hit_s, ar, -1))
    lm_prev = np.empty(t, dtype=np.int64)
    lm_prev[0] = -1
    lm_prev[1:] = lastm[:-1]
    s_excl = np.cumsum(ops_s, dtype=np.int64) - ops_s  # stores before p
    in_grp = lm_prev >= gs
    frozen_dirty = cdirty[li_s] != 0
    dirty_before = np.where(
        in_grp,
        (s_excl - s_excl[np.maximum(lm_prev, 0)]) > 0,
        frozen_dirty | ((s_excl - s_excl[gs]) > 0),
    )

    wb_s = ~hit_s & (prev_tag != -1) & dirty_before
    nwb = int(wb_s.sum())
    stall_sum = 0
    if nm:
        # Back to program order, misses only: each miss's optional
        # victim writeback precedes its fill on the bus/DRAM.
        wb_o = np.empty(t, dtype=bool)
        wb_o[order] = wb_s
        vic_o = np.empty(t, dtype=np.int64)
        vic_o[order] = prev_tag
        wb_m = wb_o[mp]
        wb_addr = vic_o[mp][wb_m] << CACHE_LINE_SHIFT
        if wb_addr.size and int(wb_addr.max()) >= dram_size:
            return None

        total = nm + nwb
        addr = np.empty(total, dtype=np.int64)
        startpos = np.arange(nm, dtype=np.int64) + np.cumsum(wb_m) - wb_m
        fill_pos = startpos + wb_m
        addr[fill_pos] = fill_addr
        addr[startpos[wb_m]] = wb_addr

        # DRAM open-row chain: group by bank, compare with the previous
        # same-bank row (or the live open row), then commit the last row
        # per bank.
        dram = mmc.dram
        dt = dram.timing
        row = addr >> dt.row_shift
        bank = row % dt.banks
        border = np.argsort(bank, kind="stable")
        row_b = row[border]
        bank_b = bank[border]
        prev_row = np.empty(total, dtype=np.int64)
        prev_row[1:] = row_b[:-1]
        bfirst = np.empty(total, dtype=bool)
        bfirst[0] = True
        np.not_equal(bank_b[1:], bank_b[:-1], out=bfirst[1:])
        open_rows = dram._open_rows
        prev_row[bfirst] = np.asarray(open_rows, dtype=np.int64)[
            bank_b[bfirst]
        ]
        rhit_b = row_b == prev_row
        blast = np.empty(total, dtype=bool)
        blast[:-1] = bfirst[1:]
        blast[-1] = True
        for b, r in zip(bank_b[blast].tolist(), row_b[blast].tolist()):
            open_rows[b] = r
        n_rhit = int(rhit_b.sum())
        rhit = np.empty(total, dtype=bool)
        rhit[border] = rhit_b
        n_fill_rhit = int(rhit[fill_pos].sum())

        timing = mmc.timing
        base_mmc = timing.base_occupancy + (
            timing.shadow_check if mmc.mtlb is not None else 0
        )
        cpu_sum = (
            base_mmc * nm
            + n_fill_rhit * dt.row_hit_cycles
            + (nm - n_fill_rhit) * dt.row_miss_cycles
        ) * timing.cpu_cycles_per_mmc_cycle

        bt = system.bus.timing
        bus_ratio = bt.cpu_cycles_per_bus_cycle
        reqret_cpu = (
            bt.request_cycles + bt.line_beats * bt.beat_cycles
        ) * bus_ratio
        stall_sum = nm * reqret_cpu + cpu_sum

        ds = dram.stats
        ds.accesses += total
        ds.row_hits += n_rhit
        ds.row_misses += total - n_rhit
        bs = system.bus.stats
        bs.transactions += total
        bs.fill_transactions += nm
        bs.writeback_transactions += nwb
        bs.busy_cpu_cycles += total * reqret_cpu
        ms = mmc.stats
        ms.fills += nm
        ms.writebacks += nwb
        ms.fill_cpu_cycles += cpu_sum
        st = system.stats
        st.fills += nm
        st.fill_stall_cycles += stall_sum
        system.cache.stats.writebacks += nwb

    # Commit final per-set cache state: the last reference of each set
    # group leaves its tag (misses overwrite, hits restate) and its
    # resulting dirty bit.
    last = np.empty(t, dtype=bool)
    last[:-1] = first[1:]
    last[-1] = True
    tags[li_s[last]] = tag_s[last]
    d_after = np.where(hit_s, dirty_before | ops_s, ops_s)
    cdirty[li_s[last]] = d_after[last]
    return stall_sum


def run_segment_vector(
    system: "System", seg: "Segment", process: "Process"
) -> None:
    """Execute one segment, fast-forwarding over hit runs."""
    if not isinstance(system.cache, DirectMappedCache):
        return _run_segment_vector_setassoc(system, seg, process)
    n = seg.refs
    _check_budget(system, n)

    tlb = system.tlb
    cache = system.cache
    tags = cache._tags
    cdirty = cache._dirty
    imask = cache._index_mask
    phys_indexed = cache.physically_indexed

    vaddrs = seg.vaddrs
    ops = seg.ops
    gaps = seg.gaps
    gap_cum = np.cumsum(gaps, dtype=np.int64)

    inst_cycles = 0
    tlb_miss_cycles = 0
    mem_stall = 0
    tlb_misses = 0
    cache_misses = 0

    refill = system._refill_tlb
    tracer = system._tracer
    bus = system.bus
    mmc = system.mmc
    fused = _fused_paths(system)
    if fused is not None:
        miss_path, wb_path, drain = fused
    else:
        miss_path = system._fill_stall
        drain = None

        def wb_path(paddr: int) -> None:
            bus.writeback_cycles()
            mmc.writeback(paddr)

    cache_stats = cache.stats
    stats = system.stats
    seg_base = (
        stats.instruction_cycles
        + stats.memory_stall_cycles
        + stats.tlb_miss_cycles
        + stats.kernel_cycles
    )

    fault_plan = system.fault_plan
    state = system.engine_state
    cur = 0
    window = state.window
    dense = state.dense
    while cur < n:
        w = window
        if fault_plan is not None:
            dist = fault_plan.next_trigger_distance()
            if dist is not None and dist < w:
                # A directed fault is scheduled soon: shrink the window
                # so the trigger lands early in its prediction and the
                # kernel-entry pollution restart throws little away.
                # Trigger distance is in site consultations (a lower
                # bound on references, since consultations only happen
                # on miss paths) — a heuristic clamp only, geometry
                # never affects results.
                w = max(MIN_WINDOW, dist)
        end = min(cur + w, n)
        m = end - cur
        v = vaddrs[cur:end]

        # TLB coverage, ascending size order: the first size that covers
        # a reference is its most specific mapping, matching the scalar
        # probe.  The mirror is cached inside the Tlb per generation, so
        # consecutive windows with no refill between them rebuild
        # nothing.
        covered = np.zeros(m, dtype=bool)
        delta = np.zeros(m, dtype=np.int64)
        touches = []
        for size, bases, deltas in tlb.coverage_arrays():
            masked = v & (-size)
            pos = np.searchsorted(bases, masked)
            np.minimum(pos, len(bases) - 1, out=pos)
            won = (bases[pos] == masked) & ~covered
            if won.any():
                delta[won] = deltas[pos[won]]
                covered |= won
                touches.append((size, masked, won))

        # The window's usable prefix ends at the first TLB miss: the
        # software refill probes the hashed page table *through this
        # cache* and may promote, so nothing behind it can be trusted.
        uncov = np.flatnonzero(~covered)
        t = int(uncov[0]) if uncov.size else m

        # Uncovered references carry a zero delta and garbage tags, but
        # everything below only reads the [:t] prefix, which is fully
        # covered.
        paddr = v + delta
        line_idx = ((paddr if phys_indexed else v) >> CACHE_LINE_SHIFT) & imask
        tag = paddr >> CACHE_LINE_SHIFT

        polluted_at = -1
        if t:
            # Ordinary cache misses do NOT end the prefix: the
            # self-consistent schedule already accounts for their fills,
            # so the engine executes only the misses through the real
            # machine and retires the hit runs between them in bulk.
            hit, order, li_s, tag_s, prev_tag, first = (
                _self_consistent_hits(tags, line_idx[:t], tag[:t])
            )
            mp = np.flatnonzero(~hit)
            base_gap = int(gap_cum[cur - 1]) if cur else 0
            store_mask = ops[cur:cur + t] != 0
            nm = len(mp)
            retired = False
            if fused is not None:
                added = _vector_miss_retire(
                    system,
                    tags,
                    cdirty,
                    order,
                    li_s,
                    tag_s,
                    prev_tag,
                    first,
                    store_mask,
                    mp,
                    paddr,
                )
                if added is not None:
                    mem_stall += added
                    cache_misses += nm
                    retired = True
            if not retired:
                spos = np.flatnonzero(store_mask)
                sline = line_idx[spos]
                # Hit-run k spans [run_lo[k], run_hi[k]) positions of
                # ``spos``: the stores to dirty before executing miss k
                # (the last run is the post-final-miss tail).
                # Everything the miss loop needs is extracted to Python
                # lists in bulk — per-element numpy scalar reads are
                # what made early versions of this engine slower than
                # scalar.
                run_lo = np.searchsorted(
                    spos, np.append(0, mp + 1)
                ).tolist()
                run_hi = np.searchsorted(spos, np.append(mp, t)).tolist()
                if nm:
                    mp_l = mp.tolist()
                    midx = line_idx[mp].tolist()
                    mtag = tag[mp].tolist()
                    mpad = paddr[mp].tolist()
                    mop = store_mask[mp].tolist()
                    # Segment-relative instruction cycles after each
                    # miss reference retires, for the tracer clock
                    # stamp.
                    inst_at = (
                        mp + 1 + (gap_cum[cur + mp] - base_gap)
                    ).tolist()
                    clock_base = seg_base + inst_cycles + tlb_miss_cycles
                    stamp = cache.mutation_stamp
                    for k in range(nm):
                        lo = run_lo[k]
                        hi = run_hi[k]
                        if hi > lo:
                            cdirty[sline[lo:hi]] = 1
                        # The miss reference: the scalar cache-miss
                        # branch, with the TLB probe elided (it is
                        # covered; its NRU touch is deferred with the
                        # rest of the prefix's — nothing reads NRU until
                        # the next refill).
                        op = 1 if mop[k] else 0
                        idx = midx[k]
                        cache_misses += 1
                        old = int(tags[idx])
                        if old != -1 and cdirty[idx]:
                            cache_stats.writebacks += 1
                            wb_path(old << CACHE_LINE_SHIFT)
                        tags[idx] = mtag[k]
                        cdirty[idx] = op
                        if tracer is not None:
                            tracer.clock = (
                                clock_base + inst_at[k] + mem_stall
                            )
                        mem_stall += miss_path(mpad[k], op)
                        if cache.mutation_stamp != stamp:
                            # Fault service reached the kernel and the
                            # kernel touched the cache (page-in flushes,
                            # HPT traffic): the rest of the schedule is
                            # stale.  Re-predict from the next
                            # reference.
                            polluted_at = mp_l[k]
                            inst_cycles += inst_at[k]
                            break
                if polluted_at < 0:
                    lo = run_lo[nm]
                    if len(sline) > lo:
                        cdirty[sline[lo:]] = 1
            if polluted_at < 0:
                inst_cycles += t + int(gap_cum[cur + t - 1]) - base_gap

            # NRU referenced bits for every executed reference of the
            # prefix, applied before anything can read them (the next
            # TLB refill's eviction scan).  Scalar sets each bit at hit
            # time; setting them in bulk here is indistinguishable.
            limit = polluted_at + 1 if polluted_at >= 0 else t
            for size, masked, won in touches:
                in_run = won[:limit]
                if in_run.any():
                    tlb.touch_pages(
                        size, np.unique(masked[:limit][in_run]).tolist()
                    )

        if polluted_at >= 0:
            cur += polluted_at + 1
            continue

        if t == m:
            cur = end
            if m == w:
                window = min(window * 2, MAX_WINDOW)
            continue

        # The TLB-missing reference at cur+t: the scalar loop body,
        # verbatim.
        i = cur + t
        vaddr = int(vaddrs[i])
        op = int(ops[i])
        inst_cycles += int(gaps[i]) + 1
        tlb_misses += 1
        if tracer is not None:
            tracer.clock = (
                seg_base + inst_cycles + tlb_miss_cycles + mem_stall
            )
        entry, cost = refill(vaddr)
        tlb_miss_cycles += cost
        tlb._mru_size = entry.size
        ref_paddr = entry.pbase + vaddr - entry.vbase

        idx = ((ref_paddr if phys_indexed else vaddr) >> CACHE_LINE_SHIFT) & imask
        new_tag = ref_paddr >> CACHE_LINE_SHIFT
        if tags[idx] == new_tag:
            if op:
                cdirty[idx] = 1
        else:
            cache_misses += 1
            old = int(tags[idx])
            if old != -1 and cdirty[idx]:
                cache_stats.writebacks += 1
                wb_path(old << CACHE_LINE_SHIFT)
            tags[idx] = new_tag
            cdirty[idx] = 1 if op else 0
            if tracer is not None:
                tracer.clock = (
                    seg_base + inst_cycles + tlb_miss_cycles + mem_stall
                )
            mem_stall += miss_path(ref_paddr, op)

        cur = i + 1
        # TLB misses are what end prefixes, so the window chases the
        # observed TLB-hit run length; two degenerate prefixes in a row
        # hand the next stretch to the scalar loop outright.
        dense = dense + 1 if t < DENSE_RUN else 0
        if dense >= 2 and cur < n:
            span_end = min(cur + SCALAR_SPAN, n)
            (
                inst_cycles,
                tlb_miss_cycles,
                mem_stall,
                tlb_misses,
                cache_misses,
            ) = _scalar_span(
                system,
                seg,
                cur,
                span_end,
                seg_base,
                inst_cycles,
                tlb_miss_cycles,
                mem_stall,
                tlb_misses,
                cache_misses,
                fill_path=miss_path,
                wb_path=wb_path,
            )
            cur = span_end
            dense = 0
            window = INITIAL_WINDOW
        elif t < window // 2:
            window = max(window // 2, MIN_WINDOW)

    state.window = window
    state.dense = dense
    if drain is not None:
        drain()
    _fold_segment(
        system,
        seg,
        n,
        tlb_misses,
        cache_misses,
        True,
        inst_cycles,
        tlb_miss_cycles,
        mem_stall,
    )


# ====================================================================== #
# Set-associative vector path (the PR-8 lift)
# ====================================================================== #


def _retire_assoc_hits(
    sets_list: List[dict],
    line_idx: np.ndarray,
    tag: np.ndarray,
    store_mask: np.ndarray,
    index_bits: int,
) -> None:
    """Replay a pure-hit run into the LRU set dicts, per unique line.

    Within one set, the dict order after a run of hits is the order of
    each touched line's *last* touch (untouched lines keep their place
    at the LRU-old end, exactly as if never popped), and a line's dirty
    bit ends as its old bit OR any store to it in the run.  So the run
    collapses to one pop/re-insert per unique (set, line) — grouped
    with one stable argsort on the combined ``(tag << index_bits) |
    set`` key (VIPT synonyms land in distinct sets, hence the combined
    key) — replayed in ascending last-touch order so the final
    recency order matches the per-reference replay.
    """
    t = len(line_idx)
    if t == 1:
        line_set = sets_list[int(line_idx[0])]
        tg = int(tag[0])
        line_set[tg] = line_set.pop(tg) or bool(store_mask[0])
        return
    key = (tag << index_bits) | line_idx
    perm = np.argsort(key, kind="stable")
    key_s = key[perm]
    first = np.empty(t, dtype=bool)
    first[0] = True
    np.not_equal(key_s[1:], key_s[:-1], out=first[1:])
    starts = np.flatnonzero(first)
    ends = np.append(starts[1:], t) - 1
    last_pos = perm[ends]  # program position of each line's last touch
    stores = np.cumsum(store_mask[perm], dtype=np.int64)
    any_store = (
        stores[ends] - np.where(starts > 0, stores[starts - 1], 0)
    ) > 0
    rep = perm[starts]
    order = np.argsort(last_pos)
    for s, tgv, d in zip(
        line_idx[rep][order].tolist(),
        tag[rep][order].tolist(),
        any_store[order].tolist(),
    ):
        line_set = sets_list[s]
        line_set[tgv] = line_set.pop(tgv) or d


def _run_segment_vector_setassoc(
    system: "System", seg: "Segment", process: "Process"
) -> None:
    """Vector fast-forward against a set-associative cache.

    The same window pipeline as :func:`run_segment_vector`, with the
    cache-hit predicate answered by the residency mirror
    (:meth:`~repro.mem.cache.SetAssociativeCache.ensure_mirror`): an
    LRU *hit* never changes which lines are resident, so within a
    pure-hit run the frozen ``(sets, ways)`` tag plane is exact, and
    the whole run retires with one vectorized membership test plus one
    LRU replay per unique line (:func:`_retire_assoc_hits`).

    Unlike the direct-mapped self-consistent schedule, a predicted
    cache miss *ends* the prefix here — which line the fill evicts
    depends on live LRU recency state, so the miss executes through the
    real ``cache.access`` (which also patches the mirror in place) and
    prediction restarts after it.  The adaptive window plus the
    dense-phase scalar escape bound that re-prediction cost exactly as
    they do for TLB-miss-dense phases.
    """
    n = seg.refs
    _check_budget(system, n)

    tlb = system.tlb
    cache = system.cache
    plane = cache.ensure_mirror()  # live (num_sets, ways) tag plane
    imask = cache._index_mask
    index_bits = imask.bit_length()
    phys_indexed = cache.physically_indexed

    vaddrs = seg.vaddrs
    ops = seg.ops
    gaps = seg.gaps
    gap_cum = np.cumsum(gaps, dtype=np.int64)

    inst_cycles = 0
    tlb_miss_cycles = 0
    mem_stall = 0
    tlb_misses = 0
    cache_misses = 0

    refill = system._refill_tlb
    tracer = system._tracer
    bus = system.bus
    mmc = system.mmc
    fused = _fused_paths(system)
    if fused is not None:
        miss_path, wb_path, drain = fused
    else:
        miss_path = system._fill_stall
        drain = None

        def wb_path(paddr: int) -> None:
            bus.writeback_cycles()
            mmc.writeback(paddr)

    cache_stats = cache.stats
    stats = system.stats
    seg_base = (
        stats.instruction_cycles
        + stats.memory_stall_cycles
        + stats.tlb_miss_cycles
        + stats.kernel_cycles
    )

    fault_plan = system.fault_plan
    state = system.engine_state
    cur = 0
    window = state.window
    dense = state.dense
    while cur < n:
        w = window
        if fault_plan is not None:
            dist = fault_plan.next_trigger_distance()
            if dist is not None and dist < w:
                w = max(MIN_WINDOW, dist)
        end = min(cur + w, n)
        m = end - cur
        v = vaddrs[cur:end]

        # TLB coverage, identical to the direct-mapped path.
        covered = np.zeros(m, dtype=bool)
        delta = np.zeros(m, dtype=np.int64)
        touches = []
        for size, bases, deltas in tlb.coverage_arrays():
            masked = v & (-size)
            pos = np.searchsorted(bases, masked)
            np.minimum(pos, len(bases) - 1, out=pos)
            won = (bases[pos] == masked) & ~covered
            if won.any():
                delta[won] = deltas[pos[won]]
                covered |= won
                touches.append((size, masked, won))
        uncov = np.flatnonzero(~covered)
        t_tlb = int(uncov[0]) if uncov.size else m

        paddr = v + delta
        line_idx = (
            (paddr if phys_indexed else v) >> CACHE_LINE_SHIFT
        ) & imask
        tag = paddr >> CACHE_LINE_SHIFT

        # The prefix ends at the first TLB miss *or* the first
        # predicted cache miss, whichever is earlier.
        if t_tlb:
            hit = (
                plane[line_idx[:t_tlb]] == tag[:t_tlb, None]
            ).any(axis=1)
            miss_rel = np.flatnonzero(~hit)
            t = int(miss_rel[0]) if miss_rel.size else t_tlb
        else:
            t = 0
        base_gap = int(gap_cum[cur - 1]) if cur else 0

        if t:
            # [0, t) is a pure-hit run: bulk-retire the LRU/dirty
            # effects and count the hits by hand (the real access path
            # never ran).
            _retire_assoc_hits(
                cache._sets,
                line_idx[:t],
                tag[:t],
                ops[cur:cur + t] != 0,
                index_bits,
            )
            cache_stats.accesses += t
            cache_stats.hits += t

        # Was the prefix ended by a predicted cache miss (covered
        # reference) rather than a TLB miss / window end?
        ends_in_cache_miss = t < m and bool(covered[t])

        # NRU referenced bits for every executed covered reference,
        # applied before the next refill's eviction scan can read them
        # (the prefix-ending cache-miss reference is itself covered, so
        # its touch belongs in this batch too).
        limit = t + 1 if ends_in_cache_miss else t
        for size, masked, won in touches:
            in_run = won[:limit]
            if in_run.any():
                tlb.touch_pages(
                    size, np.unique(masked[:limit][in_run]).tolist()
                )

        if t == m:
            inst_cycles += t + int(gap_cum[cur + t - 1]) - base_gap
            cur = end
            if m == w:
                window = min(window * 2, MAX_WINDOW)
            continue

        i = cur + t
        if ends_in_cache_miss:
            # The predicted miss: the scalar generic cache branch with
            # the TLB probe elided (the reference is covered).  Which
            # victim it evicts reads live LRU state, so this runs the
            # real access; the cache patches the mirror in place.
            inst_cycles += (t + 1) + int(gap_cum[i]) - base_gap
            op = int(ops[i])
            paddr_i = int(paddr[t])
            result = cache.access(int(v[t]), paddr_i, op == 1)
            cache_misses += 1
            if result.writeback_paddr is not None:
                wb_path(result.writeback_paddr)
            if tracer is not None:
                tracer.clock = (
                    seg_base + inst_cycles + tlb_miss_cycles + mem_stall
                )
            mem_stall += miss_path(paddr_i, op)
        else:
            # The TLB-missing reference: the scalar loop body, verbatim
            # (generic cache branch).
            if t:
                inst_cycles += t + int(gap_cum[cur + t - 1]) - base_gap
            vaddr_i = int(vaddrs[i])
            op = int(ops[i])
            inst_cycles += int(gaps[i]) + 1
            tlb_misses += 1
            if tracer is not None:
                tracer.clock = (
                    seg_base + inst_cycles + tlb_miss_cycles + mem_stall
                )
            entry, cost = refill(vaddr_i)
            tlb_miss_cycles += cost
            tlb._mru_size = entry.size
            ref_paddr = entry.pbase + vaddr_i - entry.vbase
            result = cache.access(vaddr_i, ref_paddr, op == 1)
            if not result.hit:
                cache_misses += 1
                if result.writeback_paddr is not None:
                    wb_path(result.writeback_paddr)
                if tracer is not None:
                    tracer.clock = (
                        seg_base
                        + inst_cycles
                        + tlb_miss_cycles
                        + mem_stall
                    )
                mem_stall += miss_path(ref_paddr, op)

        cur = i + 1
        # Short prefixes — whether TLB-miss- or conflict-miss-dense —
        # shrink the window; two degenerate ones in a row hand the next
        # stretch to the scalar loop outright.
        dense = dense + 1 if t < DENSE_RUN else 0
        if dense >= 2 and cur < n:
            span_end = min(cur + SCALAR_SPAN, n)
            (
                inst_cycles,
                tlb_miss_cycles,
                mem_stall,
                tlb_misses,
                cache_misses,
            ) = _scalar_span(
                system,
                seg,
                cur,
                span_end,
                seg_base,
                inst_cycles,
                tlb_miss_cycles,
                mem_stall,
                tlb_misses,
                cache_misses,
                fill_path=miss_path,
                wb_path=wb_path,
            )
            cur = span_end
            dense = 0
            window = INITIAL_WINDOW
        elif t < window // 2:
            window = max(window // 2, MIN_WINDOW)

    state.window = window
    state.dense = dense
    if drain is not None:
        drain()
    _fold_segment(
        system,
        seg,
        n,
        tlb_misses,
        cache_misses,
        False,
        inst_cycles,
        tlb_miss_cycles,
        mem_stall,
    )


# ====================================================================== #
# Shared epilogue
# ====================================================================== #


def _fold_segment(
    system: "System",
    seg: "Segment",
    n: int,
    tlb_misses: int,
    cache_misses: int,
    inline_cache: bool,
    inst_cycles: int,
    tlb_miss_cycles: int,
    mem_stall: int,
) -> None:
    """Fold the locally accumulated statistics back into the machine."""
    tlb = system.tlb
    tlb.stats.lookups += n
    tlb.stats.misses += tlb_misses
    tlb.stats.hits += n - tlb_misses
    if inline_cache:
        cache = system.cache
        cache.stats.accesses += n
        cache.stats.misses += cache_misses
        cache.stats.hits += n - cache_misses

    stats = system.stats
    stats.references += n
    stats.instructions += seg.instructions
    stats.instruction_cycles += inst_cycles
    stats.tlb_miss_cycles += tlb_miss_cycles
    stats.memory_stall_cycles += mem_stall
    system.segment_cycles.append(
        (seg.label, inst_cycles + tlb_miss_cycles + mem_stall)
    )

    system._model_ifetch(seg)
    if system.obs is not None:
        system._obs_sample()
