"""Page-granularity reuse (stack) distance analysis.

The reuse distance of an access is the number of *distinct* pages
touched since the previous access to the same page.  For a fully
associative LRU TLB of N entries, an access hits iff its reuse distance
is < N — so one histogram predicts the miss rate of *every* TLB size at
once (Mattson's classic result; the paper's NRU policy tracks LRU
closely at these sizes).

The computation uses a Fenwick tree over access timestamps: O(N log N),
practical for the multi-million-reference traces the harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..core.addrspace import BASE_PAGE_SHIFT
from ..trace.trace import Trace


class _Fenwick:
    """Prefix-sum tree over access positions."""

    def __init__(self, size: int) -> None:
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        tree = self._tree
        while index < len(tree):
            tree[index] += delta
            index += index & -index

    def prefix(self, index: int) -> int:
        """Sum of marks in positions [0, index)."""
        total = 0
        tree = self._tree
        while index > 0:
            total += tree[index]
            index -= index & -index
        return total


@dataclass
class ReuseProfile:
    """Reuse-distance histogram plus cold-miss count."""

    #: distance -> number of accesses with that distance.
    histogram: Dict[int, int]
    #: First-touch accesses (infinite distance).
    cold: int
    total: int

    def miss_rate(self, tlb_entries: int) -> float:
        """Predicted miss rate of an LRU fully associative TLB."""
        if self.total == 0:
            return 0.0
        misses = self.cold + sum(
            count
            for distance, count in self.histogram.items()
            if distance >= tlb_entries
        )
        return misses / self.total

    def miss_curve(self, sizes: Iterable[int]) -> Dict[int, float]:
        """Predicted miss rate for each TLB size."""
        return {size: self.miss_rate(size) for size in sizes}


def page_reuse_profile(trace: Trace, max_refs: int = 2_000_000) -> ReuseProfile:
    """Compute the page reuse-distance profile of *trace*.

    Caps the analysed prefix at *max_refs* references (the histogram
    converges long before paper-scale traces end).
    """
    pages_list: List[np.ndarray] = []
    remaining = max_refs
    for segment in trace.segments():
        take = segment.vaddrs[:remaining] >> BASE_PAGE_SHIFT
        pages_list.append(take)
        remaining -= len(take)
        if remaining <= 0:
            break
    if not pages_list:
        return ReuseProfile(histogram={}, cold=0, total=0)
    pages = np.concatenate(pages_list).tolist()

    n = len(pages)
    tree = _Fenwick(n)
    last_seen: Dict[int, int] = {}
    histogram: Dict[int, int] = {}
    cold = 0
    for t, page in enumerate(pages):
        previous = last_seen.get(page)
        if previous is None:
            cold += 1
        else:
            # Distinct pages touched strictly between the two accesses =
            # marks after `previous` (each live page is marked exactly
            # once, at its latest access position).
            distance = tree.prefix(t) - tree.prefix(previous + 1)
            histogram[distance] = histogram.get(distance, 0) + 1
            tree.add(previous, -1)
        tree.add(t, 1)
        last_seen[page] = t
    return ReuseProfile(histogram=histogram, cold=cold, total=n)
