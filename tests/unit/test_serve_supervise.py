"""Unit tests: supervision policy, poison sidecars, shutdown guard.

The pool-level behaviour (kills, retries, drains) is pinned by
``tests/integration/test_serve_supervised.py``; these tests cover the
pure pieces — policy validation, backoff arithmetic, the poison
sidecar format, and the two-stage shutdown state machine.
"""

import json
import random
import signal

import pytest

from repro.api import ScenarioSpec
from repro.errors import (
    ScenarioDeadlineExceeded,
    SimulationError,
    SpecValidationError,
    WorkerCrashed,
)
from repro.serve.supervise import (
    EXIT_ABORTED,
    EXIT_INTERRUPTED,
    POISON_SCHEMA,
    PoisonRecord,
    ShutdownGuard,
    SupervisionPolicy,
    SupervisionReport,
    is_transient,
    load_poison_records,
    write_interrupt_checkpoint,
    write_poison_record,
)


class TestPolicy:
    def test_defaults_valid(self):
        SupervisionPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_seconds": 0.0},
            {"deadline_seconds": -1.0},
            {"grace_seconds": -0.1},
            {"max_attempts": 0},
            {"poison_threshold": 0},
            {"backoff_base_seconds": -1.0},
            {"backoff_jitter": 1.5},
            {"breaker_threshold": 0.0},
            {"breaker_threshold": 1.1},
            {"breaker_min_samples": 0},
            {"watchdog_tick_seconds": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)

    def test_no_deadline_allowed(self):
        assert SupervisionPolicy(
            deadline_seconds=None
        ).deadline_seconds is None

    def test_backoff_grows_then_caps(self):
        policy = SupervisionPolicy(
            backoff_base_seconds=0.5,
            backoff_cap_seconds=3.0,
            backoff_jitter=0.0,
        )
        rng = random.Random(0)
        delays = [
            policy.backoff_delay(attempt, rng)
            for attempt in range(1, 6)
        ]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_backoff_jitter_bounded_and_seeded(self):
        policy = SupervisionPolicy(
            backoff_base_seconds=1.0,
            backoff_cap_seconds=1.0,
            backoff_jitter=0.25,
        )
        a = [
            policy.backoff_delay(1, random.Random(42))
            for _ in range(20)
        ]
        b = [
            policy.backoff_delay(1, random.Random(42))
            for _ in range(20)
        ]
        assert a == b  # seeded jitter is reproducible
        assert all(0.75 <= d <= 1.25 for d in a)

    def test_transient_classification(self):
        assert is_transient(OSError("disk glitch"))
        assert is_transient(ScenarioDeadlineExceeded("em3d", 1.0, 2.0))
        assert is_transient(WorkerCrashed("em3d", -9))
        assert not is_transient(SimulationError("bad machine state"))
        assert not is_transient(ValueError("nope"))


class TestSpecSupervisionKnobs:
    def test_valid_overrides(self):
        spec = ScenarioSpec(
            "em3d", deadline_seconds=12.5, max_attempts=2
        )
        assert spec.deadline_seconds == 12.5
        assert spec.max_attempts == 2

    def test_bad_deadline_rejected(self):
        with pytest.raises(SpecValidationError):
            ScenarioSpec("em3d", deadline_seconds=0.0)

    def test_bad_attempts_rejected(self):
        with pytest.raises(SpecValidationError):
            ScenarioSpec("em3d", max_attempts=0)

    def test_knobs_excluded_from_fingerprint(self):
        """Budget knobs never change results, so a stored result must
        serve a request with different supervision settings."""
        from repro.bench.runner import BenchContext
        from repro.serve.scheduler import spec_fingerprint

        context = BenchContext(quick=True)
        plain = spec_fingerprint(ScenarioSpec("em3d"), context)
        tuned = spec_fingerprint(
            ScenarioSpec("em3d", deadline_seconds=1.0, max_attempts=9),
            context,
        )
        assert plain == tuned


def _poison(fingerprint="ab" + "0" * 62):
    return PoisonRecord(
        index=3,
        label="em3d|tlb96",
        fingerprint=fingerprint,
        workload="em3d",
        config_label="tlb96",
        attempts=4,
        classification="deterministic",
        errors=["SimulationError: boom", "SimulationError: boom"],
    )


class TestPoisonRecord:
    def test_json_carries_schema(self):
        doc = _poison().to_json()
        assert doc["schema"] == POISON_SCHEMA
        assert doc["classification"] == "deterministic"

    def test_sidecar_named_by_fingerprint(self):
        record = _poison()
        assert record.sidecar_name() == (
            f"{record.fingerprint}.poison.json"
        )
        assert _poison(fingerprint=None).sidecar_name() == (
            "idx3.poison.json"
        )

    def test_write_load_round_trip(self, tmp_path):
        record = _poison()
        path = write_poison_record(tmp_path / "poison", record)
        assert path.exists()
        loaded = load_poison_records(tmp_path / "poison")
        assert loaded == [record]

    def test_load_skips_bad_files(self, tmp_path):
        poison_dir = tmp_path / "poison"
        write_poison_record(poison_dir, _poison())
        (poison_dir / "garbage.poison.json").write_text("{not json")
        (poison_dir / "alien.poison.json").write_text(
            json.dumps({"schema": "other/1", "label": "x"})
        )
        (poison_dir / "short.poison.json").write_text(
            json.dumps({"schema": POISON_SCHEMA, "label": "x"})
        )
        loaded = load_poison_records(poison_dir)
        assert [r.label for r in loaded] == ["em3d|tlb96"]

    def test_load_missing_dir_is_empty(self, tmp_path):
        assert load_poison_records(tmp_path / "nonesuch") == []

    def test_last_error(self):
        assert _poison().last_error == "SimulationError: boom"
        empty = _poison()
        empty.errors = []
        assert empty.last_error == "unknown"


class TestShutdownGuard:
    def test_starts_quiet(self):
        guard = ShutdownGuard()
        assert not guard.drain_requested
        assert not guard.abort_requested

    def test_drain_then_abort(self):
        guard = ShutdownGuard()
        guard.request_drain()
        assert guard.drain_requested and not guard.abort_requested
        guard.request_abort()
        assert guard.abort_requested

    def test_signal_escalation(self):
        """First signal drains, second hard-aborts, third falls
        through to a plain KeyboardInterrupt."""
        guard = ShutdownGuard()
        guard.handle_signal(signal.SIGINT)
        assert guard.drain_requested and not guard.abort_requested
        guard.handle_signal(signal.SIGINT)
        assert guard.abort_requested
        with pytest.raises(KeyboardInterrupt):
            guard.handle_signal(signal.SIGINT)

    def test_context_manager_installs_and_restores(self):
        before = signal.getsignal(signal.SIGINT)
        with ShutdownGuard() as guard:
            assert signal.getsignal(signal.SIGINT) == (
                guard.handle_signal
            )
        assert signal.getsignal(signal.SIGINT) == before

    def test_exit_codes_are_distinct(self):
        assert EXIT_INTERRUPTED == 75
        assert EXIT_ABORTED == 130
        assert EXIT_INTERRUPTED != EXIT_ABORTED


class TestInterruptCheckpoint:
    def test_checkpoint_contents(self, tmp_path):
        report = SupervisionReport()
        report.poison.append(_poison())
        path = write_interrupt_checkpoint(
            tmp_path,
            report,
            completed_fingerprints=["ff" * 32, "aa" * 32],
            pending_labels=["gcc|tlb64"],
        )
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-sweep-interrupt/1"
        assert doc["completed"] == sorted(["ff" * 32, "aa" * 32])
        assert doc["pending"] == ["gcc|tlb64"]
        assert doc["poisoned"] == ["em3d|tlb96"]
