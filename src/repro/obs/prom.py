"""Prometheus text-format encoder for the metrics registry.

One encoder, two consumers: the scenario daemon's ``GET /metrics``
endpoint (DESIGN.md §14) and ``repro metrics dump --format prom``.
Output follows the Prometheus exposition format 0.0.4:

* counters end in ``_total`` and carry ``# TYPE ... counter``;
* gauges keep their name and carry ``# TYPE ... gauge``;
* histograms expand to cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count`` (the registry's fixed-edge buckets map onto
  Prometheus's cumulative ``le`` convention exactly).

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots and dashes become underscores, so
``serve.daemon.store_hits`` exports as
``serve_daemon_store_hits_total``.  Label values are escaped per the
format spec.  The encoder never mutates the registry — rendering a
scrape is side-effect free beyond ``collect()`` draining sources.
"""

from __future__ import annotations

import re
from typing import Dict, Mapping, Optional, Union

from .registry import Histogram, MetricsRegistry

__all__ = ["render_prometheus", "render_prometheus_mapping"]

Number = Union[int, float]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_BAD = re.compile(r"^[^a-zA-Z_:]")


def _prom_name(name: str) -> str:
    """Sanitise one metric name to the Prometheus grammar."""
    out = _NAME_OK.sub("_", name)
    if _LEADING_BAD.match(out):
        out = "_" + out
    return out


def _prom_value(value: Number) -> str:
    """Format one sample value (Prometheus wants plain decimals)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_histogram(
    lines: list, name: str, hist: Histogram, labels: str
) -> None:
    lines.append(f"# TYPE {name} histogram")
    cumulative = 0
    for edge, count in zip(hist.edges, hist.counts):
        cumulative += count
        lines.append(
            f'{name}_bucket{{{labels}le="{_prom_value(edge)}"}} '
            f"{cumulative}"
        )
    lines.append(f'{name}_bucket{{{labels}le="+Inf"}} {hist.total}')
    suffix = "{" + labels.rstrip(",") + "}" if labels else ""
    lines.append(f"{name}_sum{suffix} {_prom_value(hist.sum)}")
    lines.append(f"{name}_count{suffix} {hist.total}")


def render_prometheus(
    registry: MetricsRegistry,
    extra_labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render one registry as a Prometheus text-format scrape body.

    *extra_labels* (e.g. ``{"instance": "daemon-1"}``) are attached to
    every exported series.
    """
    labels = ""
    if extra_labels:
        labels = ",".join(
            f'{_prom_name(k)}="{_escape_label(str(v))}"'
            for k, v in sorted(extra_labels.items())
        ) + ","
    lines: list = []
    collected = registry.collect()
    counters = registry.counters()
    for name in sorted(collected):
        value = collected[name]
        prom = _prom_name(name)
        if name in counters:
            lines.append(f"# TYPE {prom}_total counter")
            series = f"{prom}_total"
        else:
            lines.append(f"# TYPE {prom} gauge")
            series = prom
        if labels:
            series += "{" + labels.rstrip(",") + "}"
        lines.append(f"{series} {_prom_value(value)}")
    for name, hist in sorted(registry.histograms().items()):
        _render_histogram(lines, _prom_name(name), hist, labels)
    return "\n".join(lines) + "\n"


def render_prometheus_mapping(
    metrics: Mapping[str, Number],
    extra_labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a flat ``name -> value`` mapping as Prometheus gauges.

    The path ``repro metrics dump --format prom`` uses: a completed
    run's metrics mapping has no instrument types attached anymore, so
    everything exports as a gauge (scrape-side recording rules can
    re-type what they care about).
    """
    labels = ""
    if extra_labels:
        labels = "{" + ",".join(
            f'{_prom_name(k)}="{_escape_label(str(v))}"'
            for k, v in sorted(extra_labels.items())
        ) + "}"
    lines: list = []
    for name in sorted(metrics):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom}{labels} {_prom_value(metrics[name])}")
    return "\n".join(lines) + "\n"
