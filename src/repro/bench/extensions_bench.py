"""Ablations A5/A6 — the paper's Section 4/6 extensions, quantified.

* **A5 — MMC stream buffers** (Section 6 future work): sequential-miss
  prefetching behind the MTLB.  Measured on radix, whose histogram and
  source-read phases are long sequential streams.
* **A6 — all-shadow mode** (Section 4): when every user mapping is named
  by shadow addresses, the MTLB carries *all* traffic; the paper
  predicts the default geometry may need to grow.  Measured on radix
  (scattered fills, the MTLB's worst case) against the normal no-MTLB
  system and against enlarged MTLBs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..mem.stream_buffers import StreamBufferConfig
from ..sim.config import paper_mtlb, paper_no_mtlb
from ..sim.results import render_table
from ..sim.system import System
from .runner import BenchContext

# ---------------------------------------------------------------------- #
# A5 — stream buffers
# ---------------------------------------------------------------------- #


@dataclass
class StreamBufferResult:
    """A5 outcome."""

    cycles: Dict[str, int]
    hit_rate: float
    report: str
    shape_errors: List[str]


def run_stream_buffer_ablation(
    context: Optional[BenchContext] = None,
    workload: str = "radix",
) -> StreamBufferResult:
    """MTLB system with and without MMC stream buffers."""
    context = context or BenchContext()
    trace = context.trace(workload)
    cycles: Dict[str, int] = {}
    rows = []
    hit_rate = 0.0
    for label, sb_config in (
        ("MTLB", StreamBufferConfig()),
        ("MTLB + stream buffers", StreamBufferConfig(enabled=True)),
        (
            "MTLB + deep stream buffers",
            StreamBufferConfig(enabled=True, buffers=8, depth=8),
        ),
    ):
        config = dataclasses.replace(
            paper_mtlb(96), stream_buffers=sb_config
        )
        system = System(config)
        result = system.run(trace)
        cycles[label] = result.total_cycles
        unit = system.stream_buffers
        sb_hit = unit.stats.hit_rate if unit is not None else 0.0
        if label == "MTLB + stream buffers":
            hit_rate = sb_hit
        rows.append(
            [
                label,
                f"{result.total_cycles:,}",
                f"{result.stats.avg_fill_cycles:.2f}",
                f"{100 * sb_hit:.1f}%",
            ]
        )
    report = render_table(
        ["config", "cycles", "avg fill (CPU cyc)", "buffer hit rate"],
        rows,
        title=f"A5: MMC stream buffers ({workload})",
    )
    errors: List[str] = []
    if cycles["MTLB + stream buffers"] > cycles["MTLB"]:
        errors.append("stream buffers made the streaming workload slower")
    if hit_rate < 0.2:
        errors.append(
            f"buffer hit rate {100 * hit_rate:.1f}% — detector not firing"
        )
    return StreamBufferResult(
        cycles=cycles, hit_rate=hit_rate, report=report,
        shape_errors=errors,
    )


# ---------------------------------------------------------------------- #
# A6 — all-shadow mode
# ---------------------------------------------------------------------- #


@dataclass
class AllShadowResult:
    """A6 outcome."""

    cycles: Dict[str, int]
    report: str
    shape_errors: List[str]


def run_all_shadow_ablation(
    context: Optional[BenchContext] = None,
    workload: str = "radix",
) -> AllShadowResult:
    """Normal system vs all-shadow with growing MTLB geometries."""
    context = context or BenchContext()
    trace = context.trace(workload)
    configs = {
        "normal (no MTLB)": paper_no_mtlb(96),
        "all-shadow, 128e 2w MTLB": dataclasses.replace(
            paper_mtlb(96, 128, 2), use_superpages=False, all_shadow=True
        ),
        "all-shadow, 512e 4w MTLB": dataclasses.replace(
            paper_mtlb(96, 512, 4), use_superpages=False, all_shadow=True
        ),
        "all-shadow, 2048e 4w MTLB": dataclasses.replace(
            paper_mtlb(96, 2048, 4), use_superpages=False, all_shadow=True
        ),
    }
    cycles: Dict[str, int] = {}
    rows = []
    for label, config in configs.items():
        system = System(config)
        result = system.run(trace)
        cycles[label] = result.total_cycles
        rows.append(
            [
                label,
                f"{result.total_cycles:,}",
                f"{100 * result.stats.mtlb_hit_rate:.1f}%",
            ]
        )
    report = render_table(
        ["config", "cycles", "MTLB hit rate"],
        rows,
        title=f"A6: all-shadow mode (Section 4) on {workload}",
    )
    base = cycles["normal (no MTLB)"]
    default = cycles["all-shadow, 128e 2w MTLB"]
    big = cycles["all-shadow, 2048e 4w MTLB"]
    errors: List[str] = []
    if default < base:
        errors.append(
            "all-shadow with the default MTLB shows no overhead — "
            "the Section 4 concern should be visible"
        )
    if big > default:
        errors.append("growing the MTLB did not recover all-shadow cost")
    if big > base * 1.25:
        errors.append(
            f"even a 2048-entry MTLB leaves {big / base:.2f}x overhead"
        )
    return AllShadowResult(cycles=cycles, report=report,
                           shape_errors=errors)
