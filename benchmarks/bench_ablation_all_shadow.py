"""A6 — all-shadow mode (Section 4).

On machines whose whole physical address space is populated, every user
mapping must be named by shadow addresses, putting all traffic through
the MTLB.  The bench shows the resulting overhead with the default MTLB
geometry and how enlarging the MTLB (as Section 4 suggests) recovers it.
"""

from repro.bench import run_all_shadow_ablation


def test_all_shadow_ablation(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_all_shadow_ablation(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
