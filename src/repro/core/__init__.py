"""Core mechanism of the paper: shadow memory and the memory-controller TLB.

This subpackage is the paper's primary contribution in library form:

* :mod:`repro.core.addrspace` — page/superpage geometry and the physical
  memory map (DRAM, shadow window, I/O hole);
* :mod:`repro.core.shadow_space` — allocation of shadow address ranges
  (the Figure 2 bucket allocator, plus a buddy-system alternative);
* :mod:`repro.core.shadow_table` — the flat in-DRAM shadow-to-physical
  mapping table with per-base-page valid/fault/referenced/dirty bits;
* :mod:`repro.core.mtlb` — the set-associative, NRU memory-controller TLB
  with hardware fills and precise-fault signalling;
* :mod:`repro.core.remap` — maximal-superpage tiling of virtual regions;
* :mod:`repro.core.backends` — the pluggable translation-backend
  registry (DESIGN.md §16): the paper's MTLB design plus the coalesced
  and Victima comparison backends behind one protocol.
"""

from .backends import (
    TranslationBackend,
    get_backend,
    list_backends,
    register_backend,
)

from .addrspace import (
    BASE_PAGE_SHIFT,
    BASE_PAGE_SIZE,
    CACHE_LINE_SHIFT,
    CACHE_LINE_SIZE,
    DEFAULT_MEMORY_MAP,
    PAGE_SIZES,
    SUPERPAGE_SIZES,
    PhysicalMemoryMap,
)
from .mtlb import Mtlb, MtlbFault, MtlbStats
from .remap import SuperpagePlan, plan_superpages, uncovered_ranges
from .shadow_space import (
    FIGURE2_PARTITION,
    BucketShadowAllocator,
    BuddyShadowAllocator,
    ShadowRegion,
    ShadowSpaceExhausted,
)
from .shadow_table import ShadowEntry, ShadowPageTable

__all__ = [
    "BASE_PAGE_SHIFT",
    "BASE_PAGE_SIZE",
    "CACHE_LINE_SHIFT",
    "CACHE_LINE_SIZE",
    "DEFAULT_MEMORY_MAP",
    "PAGE_SIZES",
    "SUPERPAGE_SIZES",
    "PhysicalMemoryMap",
    "Mtlb",
    "MtlbFault",
    "MtlbStats",
    "SuperpagePlan",
    "plan_superpages",
    "uncovered_ranges",
    "FIGURE2_PARTITION",
    "BucketShadowAllocator",
    "BuddyShadowAllocator",
    "ShadowRegion",
    "ShadowSpaceExhausted",
    "ShadowEntry",
    "ShadowPageTable",
    "TranslationBackend",
    "get_backend",
    "list_backends",
    "register_backend",
]
