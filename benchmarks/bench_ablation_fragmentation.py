"""A1 — conventional superpages vs shadow superpages under fragmentation.

Conventional superpages require physically contiguous, size-aligned frame
runs, so they fail outright on a fragmented machine; shadow-backed
superpages assemble the same reach from scattered frames in every
fragmentation regime, at a small MTLB cost on an unfragmented one.
"""

from repro.bench import run_fragmentation_ablation


def test_fragmentation_ablation(benchmark):
    result = benchmark.pedantic(
        run_fragmentation_ablation, rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
