"""Trace serialisation: cache generated traces on disk as ``.npz`` files.

Workload generation is cheap next to simulation, but the benchmark
harness reruns the same trace across many configurations and pytest
sessions; caching keeps those reruns honest (bit-identical streams) and
fast.  A trace file holds a JSON item list (events inline, segments by
index) plus the segments' numpy arrays.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .events import HeapGrow, MapConventional, MapRegion, Phase, Remap
from .trace import Segment, Trace

#: Bump when the on-disk layout changes; stale caches are regenerated.
FORMAT_VERSION = 2

_EVENT_TYPES = {
    "MapRegion": MapRegion,
    "MapConventional": MapConventional,
    "Remap": Remap,
    "HeapGrow": HeapGrow,
    "Phase": Phase,
}


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to *path* (an ``.npz`` file)."""
    path = Path(path)
    items = []
    arrays = {}
    seg_index = 0
    for item in trace.items:
        if isinstance(item, Segment):
            items.append(
                {
                    "kind": "segment",
                    "index": seg_index,
                    "label": item.label,
                    "text_pages": item.text_pages,
                }
            )
            arrays[f"seg{seg_index}_ops"] = item.ops
            arrays[f"seg{seg_index}_vaddrs"] = item.vaddrs
            arrays[f"seg{seg_index}_gaps"] = item.gaps
            seg_index += 1
        else:
            record = {"kind": type(item).__name__}
            record.update(vars(item))
            items.append(record)
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "text_base": trace.text_base,
        "text_size": trace.text_size,
        "items": items,
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Raises ValueError on a format-version mismatch (callers should
    regenerate rather than guess).
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"trace file {path} has format version "
                f"{meta.get('version')}, expected {FORMAT_VERSION}"
            )
        trace = Trace(
            meta["name"],
            text_base=meta["text_base"],
            text_size=meta["text_size"],
        )
        for record in meta["items"]:
            kind = record.pop("kind")
            if kind == "segment":
                i = record["index"]
                trace.add(
                    Segment(
                        record["label"],
                        data[f"seg{i}_ops"],
                        data[f"seg{i}_vaddrs"],
                        data[f"seg{i}_gaps"],
                        text_pages=record["text_pages"],
                    )
                )
            else:
                trace.add(_EVENT_TYPES[kind](**record))
    return trace
