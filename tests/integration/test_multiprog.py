"""Integration tests for multiprogrammed simulation."""

import dataclasses

import numpy as np
import pytest

from repro.faults import FaultConfig
from repro.sim.config import CacheConfig, paper_mtlb, paper_no_mtlb
from repro.sim.multiprog import MultiProgram, run_job_mix, split_segment
from repro.trace.events import MapRegion
from repro.trace.trace import Trace, make_segment
from repro.workloads import build_workload


def small_trace(name, base, seed):
    rng = np.random.default_rng(seed)
    trace = Trace(name)
    trace.add(MapRegion(base, 1 << 20))
    vaddrs = base + rng.integers(0, (1 << 20) // 8, 60_000) * 8
    trace.add(make_segment("work", vaddrs, gap=2))
    return trace


class TestSplitSegment:
    def test_small_segment_unsplit(self):
        seg = make_segment("s", [0, 8, 16])
        assert split_segment(seg, 10) == [seg]

    def test_split_preserves_stream(self):
        vaddrs = list(range(0, 800, 8))
        seg = make_segment("s", vaddrs, gap=3)
        parts = split_segment(seg, 17)
        assert sum(p.refs for p in parts) == seg.refs
        joined = np.concatenate([p.vaddrs for p in parts])
        assert np.array_equal(joined, seg.vaddrs)
        assert sum(p.instructions for p in parts) == seg.instructions

    def test_bad_quantum(self):
        with pytest.raises(ValueError):
            split_segment(make_segment("s", [0]), 0)


class TestJobMix:
    def test_runs_both_processes(self):
        traces = [
            small_trace("p1", 0x0200_0000, 1),
            small_trace("p2", 0x0200_0000, 2),  # same virtual layout!
        ]
        result = run_job_mix(paper_no_mtlb(96), traces, quantum_refs=10_000)
        assert result.context_switches > 2
        assert set(result.per_process_cycles) == {"p1", "p2"}
        assert all(c > 0 for c in result.per_process_cycles.values())
        result.result.stats.check_consistency()

    def test_references_conserved(self):
        traces = [
            small_trace("p1", 0x0200_0000, 1),
            small_trace("p2", 0x0300_0000, 2),
        ]
        result = run_job_mix(paper_no_mtlb(96), traces, quantum_refs=7_000)
        assert result.result.stats.references == sum(
            t.total_refs for t in traces
        )

    def test_overlapping_layouts_translate_correctly(self):
        """Two processes at identical virtual addresses: the space-tagged
        HPT and per-process page tables must never cross-translate."""
        traces = [
            small_trace("p1", 0x0200_0000, 1),
            small_trace("p2", 0x0200_0000, 2),
        ]
        mix = MultiProgram(
            paper_no_mtlb(96), traces, quantum_refs=5_000
        )
        mix.run()
        # Distinct frames back the same virtual page in each process.
        # (Processes are found through the kernel.)

    def test_duplicate_names_rejected(self):
        trace = small_trace("same", 0x0200_0000, 1)
        with pytest.raises(ValueError):
            MultiProgram(paper_no_mtlb(96), [trace, trace])

    def test_switching_costs_cycles(self):
        traces = [
            small_trace("p1", 0x0200_0000, 1),
            small_trace("p2", 0x0300_0000, 2),
        ]
        coarse = run_job_mix(
            paper_no_mtlb(96), traces, quantum_refs=60_000
        )
        fine = run_job_mix(
            paper_no_mtlb(96), traces, quantum_refs=5_000
        )
        assert fine.context_switches > coarse.context_switches
        assert fine.total_cycles > coarse.total_cycles

    def test_cycle_attribution_telescopes(self):
        """Every cycle lands in exactly one bucket: the per-process
        attributions plus the shared (boot/switch/timer) remainder must
        reproduce the machine total exactly."""
        traces = [
            small_trace("p1", 0x0200_0000, 1),
            small_trace("p2", 0x0300_0000, 2),
            small_trace("p3", 0x0400_0000, 3),
        ]
        result = run_job_mix(paper_mtlb(96), traces, quantum_refs=7_000)
        assert result.shared_cycles > 0
        assert all(c > 0 for c in result.per_process_cycles.values())
        assert (
            sum(result.per_process_cycles.values())
            + result.shared_cycles
            == result.total_cycles
        )

    def test_mtlb_survives_switches(self):
        trace_a = build_workload("compress95", scale=0.03, seed=1)
        trace_b = build_workload("compress95", scale=0.03, seed=2)
        trace_b.name = "compress95-b"
        base = run_job_mix(
            paper_no_mtlb(96), [trace_a, trace_b], quantum_refs=20_000
        )
        fast = run_job_mix(
            paper_mtlb(96), [trace_a, trace_b], quantum_refs=20_000
        )
        assert (
            fast.result.stats.tlb_miss_cycles
            < base.result.stats.tlb_miss_cycles / 4
        )


class TestEngineResolution:
    """Job mixes go through System.begin_run(), the same entry point as
    single-program runs, so engine policy can never be bypassed."""

    def _traces(self):
        return [
            small_trace("p1", 0x0200_0000, 1),
            small_trace("p2", 0x0300_0000, 2),
        ]

    def test_plain_mix_batches_with_vector_engine(self):
        result = run_job_mix(
            paper_no_mtlb(96), self._traces(), quantum_refs=10_000
        )
        assert result.engine == "vector"

    def test_fault_plan_mix_batches_with_vector_engine(self):
        """PR-8 lift: an active fault plan no longer forces scalar — job
        mixes resolve through the same lifted policy as System.run()."""
        config = dataclasses.replace(
            paper_mtlb(96),
            faults=FaultConfig(mtlb_parity_rate=1e-7),
        )
        result = run_job_mix(config, self._traces(), quantum_refs=10_000)
        assert result.engine == "vector"
        result.result.stats.check_consistency()

    def test_set_assoc_cache_mix_batches_with_vector_engine(self):
        config = dataclasses.replace(
            paper_no_mtlb(96), cache=CacheConfig(associativity=2)
        )
        result = run_job_mix(config, self._traces(), quantum_refs=10_000)
        assert result.engine == "vector"

    def test_fault_plan_results_match_engine_choice(self):
        """The fallback must yield the same numbers an explicit scalar
        request yields (the plan itself fires no faults at this rate and
        trace length, so the runs are deterministic)."""
        base = dataclasses.replace(
            paper_mtlb(96),
            faults=FaultConfig(mtlb_parity_rate=1e-7),
        )
        auto = run_job_mix(base, self._traces(), quantum_refs=10_000)
        explicit = run_job_mix(
            dataclasses.replace(base, engine="scalar"),
            self._traces(),
            quantum_refs=10_000,
        )
        assert auto.total_cycles == explicit.total_cycles
