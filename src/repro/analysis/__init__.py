"""Trace analysis: working sets, reuse distances, and the superpage
advisor (tools for the paper's "which regions are economical" problem).
"""

from .advisor import AdvisorCosts, RegionAdvice, advise, trace_regions
from .reuse import ReuseProfile, page_reuse_profile
from .working_set import (
    WorkingSetPoint,
    footprint_growth,
    region_touch_density,
    working_set_series,
)

__all__ = [
    "AdvisorCosts",
    "RegionAdvice",
    "advise",
    "trace_regions",
    "ReuseProfile",
    "page_reuse_profile",
    "WorkingSetPoint",
    "footprint_growth",
    "region_touch_density",
    "working_set_series",
]
