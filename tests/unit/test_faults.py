"""Unit tests for the deterministic fault-injection plan.

The guarantees under test: (1) a :class:`FaultPlan` is a pure function
of its :class:`FaultConfig` — same config, same schedule, regardless of
how sites interleave; (2) triggers fire exactly at their 1-based
consultation counts; (3) the all-zero config is recognisably disabled
so the simulator can skip building a plan entirely.
"""

import pytest

from repro.faults import (
    DIRTY_DROP,
    DRAM_TRANSIENT,
    FAULT_SITES,
    MTLB_PARITY,
    SHADOW_BITFLIP,
    FaultConfig,
    FaultPlan,
)


class TestFaultConfig:
    def test_default_is_disabled(self):
        assert not FaultConfig().enabled

    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_any_rate_enables(self, site):
        config = FaultConfig(**{f"{site}_rate": 0.5})
        assert config.enabled
        assert config.rate_of(site) == 0.5

    def test_triggers_enable(self):
        assert FaultConfig(triggers=((MTLB_PARITY, 1),)).enabled

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(mtlb_parity_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(dram_transient_rate=-0.1)

    def test_unknown_trigger_site_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(triggers=(("cosmic_ray", 1),))

    def test_zero_based_trigger_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(triggers=((MTLB_PARITY, 0),))

    def test_retry_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(max_retries=0)
        with pytest.raises(ValueError):
            FaultConfig(retry_backoff_cycles=-1)


class TestDeterminism:
    def test_same_config_same_schedule(self):
        config = FaultConfig(
            seed=42, mtlb_parity_rate=0.05, dram_transient_rate=0.02
        )
        schedules = []
        for _ in range(2):
            plan = FaultPlan(config)
            for _ in range(2000):
                plan.fires(MTLB_PARITY)
                plan.fires(DRAM_TRANSIENT)
            schedules.append(list(plan.schedule))
        assert schedules[0] == schedules[1]
        assert schedules[0]  # something actually fired at these rates

    def test_sites_are_independent_of_interleaving(self):
        """Consulting other sites between a site's consultations must
        not change that site's decision sequence."""
        config = FaultConfig(seed=7, shadow_bitflip_rate=0.1)

        solo = FaultPlan(config)
        solo_decisions = [solo.fires(SHADOW_BITFLIP) for _ in range(500)]

        mixed = FaultPlan(config)
        mixed_decisions = []
        for i in range(500):
            # Hammer the other sites in varying amounts in between.
            for _ in range(i % 3):
                mixed.fires(MTLB_PARITY)
                mixed.fires(DIRTY_DROP)
            mixed_decisions.append(mixed.fires(SHADOW_BITFLIP))

        assert solo_decisions == mixed_decisions

    def test_different_seeds_differ(self):
        decisions = []
        for seed in (1, 2):
            plan = FaultPlan(FaultConfig(seed=seed, dirty_drop_rate=0.2))
            decisions.append(
                [plan.fires(DIRTY_DROP) for _ in range(200)]
            )
        assert decisions[0] != decisions[1]

    def test_choose_bit_deterministic(self):
        config = FaultConfig(seed=9, triggers=((SHADOW_BITFLIP, 1),))
        bits = []
        for _ in range(2):
            plan = FaultPlan(config)
            plan.fires(SHADOW_BITFLIP)
            bits.append(plan.choose_bit(SHADOW_BITFLIP))
        assert bits[0] == bits[1]
        assert 0 <= bits[0] < 28

    def test_zero_rate_site_never_draws_rng(self):
        """A site with rate 0 must not advance its PRNG on consultation,
        so adding a quiet site cannot perturb a noisy one."""
        plan = FaultPlan(FaultConfig(seed=3, triggers=((MTLB_PARITY, 5),)))
        rng_state = plan._rngs[MTLB_PARITY].getstate()
        for _ in range(10):
            plan.fires(MTLB_PARITY)
        assert plan._rngs[MTLB_PARITY].getstate() == rng_state


class TestTriggers:
    def test_trigger_fires_exactly_at_count(self):
        plan = FaultPlan(FaultConfig(triggers=((MTLB_PARITY, 3),)))
        decisions = [plan.fires(MTLB_PARITY) for _ in range(6)]
        assert decisions == [False, False, True, False, False, False]
        assert plan.schedule == [(MTLB_PARITY, 3)]
        assert plan.consultations(MTLB_PARITY) == 6

    def test_triggers_are_per_site(self):
        plan = FaultPlan(FaultConfig(triggers=((DIRTY_DROP, 1),)))
        assert not plan.fires(MTLB_PARITY)
        assert plan.fires(DIRTY_DROP)

    def test_multiple_triggers_one_site(self):
        plan = FaultPlan(
            FaultConfig(triggers=((DRAM_TRANSIENT, 2), (DRAM_TRANSIENT, 4)))
        )
        decisions = [plan.fires(DRAM_TRANSIENT) for _ in range(5)]
        assert decisions == [False, True, False, True, False]


class TestAccounting:
    def test_injected_counts_per_site(self):
        plan = FaultPlan(
            FaultConfig(triggers=((MTLB_PARITY, 1), (DIRTY_DROP, 2)))
        )
        plan.fires(MTLB_PARITY)
        plan.fires(DIRTY_DROP)
        plan.fires(DIRTY_DROP)
        assert plan.stats.injected[MTLB_PARITY] == 1
        assert plan.stats.injected[DIRTY_DROP] == 1
        assert plan.stats.total_injected == 2

    def test_recovery_counts(self):
        plan = FaultPlan(FaultConfig(triggers=((MTLB_PARITY, 1),)))
        plan.fires(MTLB_PARITY)
        plan.record_recovery(MTLB_PARITY)
        assert plan.stats.recovered[MTLB_PARITY] == 1
        assert plan.stats.total_recovered == 1
