#!/usr/bin/env python3
"""Why superpages need shadow memory on a real (fragmented) machine.

Conventional superpages need physically contiguous frame runs aligned to
the superpage size.  On a machine that has been up for a while, the free
list is scattered and such runs do not exist — the allocation simply
fails.  Shadow-backed superpages build the same TLB reach out of
whatever frames are free.

Run:  python examples/fragmentation_rescue.py
"""

import dataclasses

from repro.os_model.frames import OutOfMemory
from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.system import System

REGION = 0x0200_0000
SIZE = 4 << 20  # the app wants a 4 MB superpage-backed buffer


def attempt(label, config, conventional):
    system = System(config)
    process = system.kernel.create_process("app")
    frames = system.kernel.frames
    print(f"{label}")
    print(f"  free frames: {frames.free_frames:,}; longest contiguous "
          f"run: {frames.largest_free_run():,} frames "
          f"(need {SIZE >> 12:,} aligned)")
    try:
        if conventional:
            system.kernel.vm.map_region_conventional_superpages(
                process, REGION, SIZE
            )
        else:
            system.kernel.sys_map(process, REGION, SIZE)
            system.kernel.sys_remap(process, REGION, SIZE)
    except OutOfMemory as exc:
        print(f"  FAILED: {exc}\n")
        return
    supers = process.page_table.superpages()
    reach = sum(m.size for m in supers)
    print(f"  ok: {len(supers)} superpage(s) covering {reach >> 20} MB, "
          f"one TLB entry each\n")


def main():
    fresh = dataclasses.replace(paper_no_mtlb(96), fragmentation="none")
    aged = dataclasses.replace(paper_no_mtlb(96), fragmentation="aged")
    aged_mtlb = dataclasses.replace(paper_mtlb(96), fragmentation="aged")

    attempt("conventional superpages, freshly booted machine",
            fresh, conventional=True)
    attempt("conventional superpages, aged machine",
            aged, conventional=True)
    attempt("shadow-backed superpages (MTLB), same aged machine",
            aged_mtlb, conventional=False)


if __name__ == "__main__":
    main()
