"""Shared fixtures for the test suite."""

import pytest

from repro.core.addrspace import PhysicalMemoryMap
from repro.core.shadow_table import ShadowPageTable
from repro.sim.config import paper_base, paper_mtlb
from repro.sim.system import System


@pytest.fixture
def memory_map():
    """The default 256 MB DRAM / 512 MB shadow window machine."""
    return PhysicalMemoryMap()


@pytest.fixture
def shadow_table(memory_map):
    """A shadow page table at physical address 0."""
    return ShadowPageTable(memory_map, table_base=0)


@pytest.fixture
def base_system():
    """A conventional machine (96-entry TLB, no MTLB)."""
    return System(paper_base())


@pytest.fixture
def mtlb_system():
    """An MTLB machine (96-entry TLB, 128-entry 2-way MTLB)."""
    return System(paper_mtlb(96))
