"""Unit and property tests for the shadow-region allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addrspace import SUPERPAGE_SIZES, PhysicalMemoryMap
from repro.core.shadow_space import (
    FIGURE2_PARTITION,
    BucketShadowAllocator,
    BuddyShadowAllocator,
    ShadowRegion,
    ShadowSpaceExhausted,
    partition_extent,
)


@pytest.fixture
def bucket(memory_map):
    return BucketShadowAllocator(memory_map)


@pytest.fixture
def buddy(memory_map):
    return BuddyShadowAllocator(memory_map)


class TestShadowRegion:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            ShadowRegion(base=0x8000_4000, size=64 << 10)

    def test_size_must_be_legal(self):
        with pytest.raises(ValueError):
            ShadowRegion(base=0x8000_0000, size=32 << 10)

    def test_overlap(self):
        a = ShadowRegion(0x8000_0000, 64 << 10)
        b = ShadowRegion(0x8001_0000, 64 << 10)
        c = ShadowRegion(0x8000_0000, 16 << 10)
        assert not a.overlaps(b)
        assert a.overlaps(c)


class TestFigure2Partition:
    def test_extent_is_512mb(self):
        assert partition_extent(FIGURE2_PARTITION) == 512 << 20

    def test_counts_match_paper(self, bucket):
        for size, count in FIGURE2_PARTITION:
            assert bucket.capacity(size) == count
            assert bucket.available(size) == count


class TestBucketAllocator:
    def test_allocate_free_roundtrip(self, bucket):
        region = bucket.allocate(64 << 10)
        assert region.size == 64 << 10
        assert bucket.available(64 << 10) == 255
        bucket.free(region)
        assert bucket.available(64 << 10) == 256

    def test_regions_inside_shadow_window(self, bucket, memory_map):
        for size, _count in FIGURE2_PARTITION:
            region = bucket.allocate(size)
            assert memory_map.is_shadow(region.base)
            assert memory_map.is_shadow(region.end - 1)

    def test_exhaustion(self, bucket):
        for _ in range(16):
            bucket.allocate(16 << 20)
        with pytest.raises(ShadowSpaceExhausted):
            bucket.allocate(16 << 20)

    def test_double_free_rejected(self, bucket):
        region = bucket.allocate(16 << 10)
        bucket.free(region)
        with pytest.raises(ValueError):
            bucket.free(region)

    def test_wrong_size_free_rejected(self, bucket):
        region = bucket.allocate(16 << 10)
        with pytest.raises(ValueError):
            bucket.free(ShadowRegion(region.base, 64 << 10))

    def test_illegal_size_rejected(self, bucket):
        with pytest.raises(ValueError):
            bucket.allocate(8 << 10)

    def test_describe_matches_partition(self, bucket):
        rows = bucket.describe()
        assert [(s, c) for s, c, _ in rows] == list(FIGURE2_PARTITION)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from(SUPERPAGE_SIZES[:4]),
            min_size=1,
            max_size=60,
        )
    )
    def test_no_live_regions_overlap(self, sizes):
        allocator = BucketShadowAllocator(PhysicalMemoryMap())
        live = []
        for size in sizes:
            try:
                live.append(allocator.allocate(size))
            except ShadowSpaceExhausted:
                pass
        for i, r1 in enumerate(live):
            for r2 in live[i + 1:]:
                assert not r1.overlaps(r2)
        for region in live:
            assert region.base % region.size == 0


class TestBuddyAllocator:
    def test_split_serves_small_sizes(self, buddy):
        region = buddy.allocate(16 << 10)
        assert region.size == 16 << 10
        # One 16MB region split all the way down leaves 3 buddies at
        # each level.
        for size in SUPERPAGE_SIZES[:-1]:
            assert buddy.available(size) == 3

    def test_recombination(self, buddy):
        initial_large = buddy.available(16 << 20)
        regions = [buddy.allocate(16 << 10) for _ in range(8)]
        for region in regions:
            buddy.free(region)
        assert buddy.available(16 << 20) == initial_large
        for size in SUPERPAGE_SIZES[:-1]:
            assert buddy.available(size) == 0

    def test_serves_more_of_one_size_than_buckets(self, memory_map):
        buddy = BuddyShadowAllocator(memory_map)
        # Figure 2 provides 256 x 64KB; buddy can do far more.
        regions = [buddy.allocate(64 << 10) for _ in range(1000)]
        assert len(regions) == 1000

    def test_exhaustion(self, memory_map):
        buddy = BuddyShadowAllocator(memory_map)
        count = (512 << 20) // (16 << 20)
        for _ in range(count):
            buddy.allocate(16 << 20)
        with pytest.raises(ShadowSpaceExhausted):
            buddy.allocate(16 << 20)

    def test_double_free_rejected(self, buddy):
        region = buddy.allocate(256 << 10)
        buddy.free(region)
        with pytest.raises(ValueError):
            buddy.free(region)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(SUPERPAGE_SIZES),
                st.booleans(),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_conservation_and_no_overlap(self, ops):
        """Allocate/free stream: live regions never overlap and freeing
        everything restores full capacity."""
        allocator = BuddyShadowAllocator(PhysicalMemoryMap())
        live = []
        for size, do_free in ops:
            if do_free and live:
                allocator.free(live.pop())
            else:
                try:
                    live.append(allocator.allocate(size))
                except ShadowSpaceExhausted:
                    pass
        for i, r1 in enumerate(live):
            for r2 in live[i + 1:]:
                assert not r1.overlaps(r2)
        for region in live:
            allocator.free(region)
        assert allocator.available(16 << 20) == 32
        assert allocator.allocated_regions == 0
