"""Unit tests for the trace-analysis package."""

import numpy as np
import pytest

from repro.analysis.advisor import advise, trace_regions
from repro.analysis.reuse import ReuseProfile, page_reuse_profile
from repro.analysis.working_set import (
    footprint_growth,
    region_touch_density,
    working_set_series,
)
from repro.trace import synth
from repro.trace.events import MapRegion, Remap
from repro.trace.trace import Trace, make_segment


def trace_of(vaddrs, gap=1, regions=None):
    trace = Trace("t")
    for base, length in regions or []:
        trace.add(MapRegion(base, length))
    trace.add(make_segment("s", vaddrs, gap=gap))
    return trace


class TestWorkingSet:
    def test_single_page(self):
        trace = trace_of([0x1000, 0x1008, 0x1010])
        points = working_set_series(trace, window_instructions=100)
        assert len(points) == 1
        assert points[0].pages == 1

    def test_windows_split(self):
        # Two pages per window of 4 instructions (gap=1 -> 2 per ref).
        vaddrs = [0x1000, 0x2000, 0x3000, 0x4000]
        trace = trace_of(vaddrs, gap=1)
        points = working_set_series(trace, window_instructions=4)
        assert [p.pages for p in points] == [2, 2]

    def test_repeats_counted_once(self):
        vaddrs = [0x1000] * 50 + [0x2000] * 50
        trace = trace_of(vaddrs)
        points = working_set_series(trace, window_instructions=10**9)
        assert points[0].pages == 2

    def test_bad_window(self):
        with pytest.raises(ValueError):
            working_set_series(trace_of([0]), window_instructions=0)

    def test_footprint_growth_monotonic(self):
        rng = np.random.default_rng(1)
        vaddrs = synth.uniform_random(rng, 0, 1 << 20, 5000)
        trace = trace_of(vaddrs)
        growth = footprint_growth(trace, samples=10)
        counts = [pages for _refs, pages in growth]
        assert counts == sorted(counts)
        assert growth[-1][0] == 5000

    def test_region_density(self):
        vaddrs = [0x1000] * 90 + [0x10_0000] * 10
        trace = trace_of(vaddrs)
        density = region_touch_density(
            trace, [(0x1000, 4096), (0x10_0000, 4096)]
        )
        assert density[(0x1000, 4096)] == pytest.approx(90 / 4096)
        assert density[(0x10_0000, 4096)] == pytest.approx(10 / 4096)


class TestReuseDistance:
    def test_all_cold(self):
        vaddrs = [i << 12 for i in range(10)]
        profile = page_reuse_profile(trace_of(vaddrs))
        assert profile.cold == 10
        assert profile.histogram == {}
        assert profile.miss_rate(4) == 1.0

    def test_immediate_reuse_distance_zero(self):
        vaddrs = [0x1000, 0x1008]
        profile = page_reuse_profile(trace_of(vaddrs))
        assert profile.histogram == {0: 1}
        assert profile.miss_rate(1) == pytest.approx(0.5)

    def test_cyclic_pattern_distances(self):
        # A, B, C, A, B, C: second-round accesses have distance 2.
        vaddrs = [0x1000, 0x2000, 0x3000] * 2
        profile = page_reuse_profile(trace_of(vaddrs))
        assert profile.histogram == {2: 3}
        assert profile.cold == 3
        # A 3-entry TLB holds the loop; a 2-entry one thrashes.
        assert profile.miss_rate(3) == pytest.approx(0.5)  # cold only
        assert profile.miss_rate(2) == pytest.approx(1.0)

    def test_miss_curve_monotone_in_size(self):
        rng = np.random.default_rng(0)
        vaddrs = synth.uniform_random(rng, 0, 256 << 12, 20_000)
        profile = page_reuse_profile(trace_of(vaddrs))
        curve = profile.miss_curve([16, 64, 128, 512])
        values = list(curve.values())
        assert values == sorted(values, reverse=True)

    def test_prediction_matches_simulated_tlb(self):
        """The Mattson prediction agrees with the simulated fully
        associative TLB within a few percent (NRU approximates LRU)."""
        from repro.sim.config import paper_no_mtlb
        from repro.sim.system import System
        rng = np.random.default_rng(5)
        vaddrs = synth.hot_cold(
            rng, 0x0200_0000, 300 << 12, 120_000,
            hot_pages=70, hot_fraction=0.8,
        )
        trace = trace_of(vaddrs, regions=[(0x0200_0000, 300 << 12)])
        profile = page_reuse_profile(trace)
        predicted = profile.miss_rate(96)
        result = System(paper_no_mtlb(96)).run(trace)
        simulated = result.stats.tlb_miss_rate
        # NRU replacement tracks (but slightly trails) the LRU model.
        assert predicted == pytest.approx(simulated, abs=0.08)

    def test_empty_trace(self):
        profile = page_reuse_profile(Trace("empty"))
        assert profile.total == 0
        assert profile.miss_rate(64) == 0.0


class TestAdvisor:
    def test_trace_regions(self):
        trace = Trace("t")
        trace.add(MapRegion(0x1000, 4096))
        trace.add(Remap(0x1000, 4096))
        assert trace_regions(trace) == [(0x1000, 4096)]

    def test_hot_region_recommended_over_cold(self):
        rng = np.random.default_rng(2)
        hot_base, cold_base = 0x0200_0000, 0x0800_0000
        size = 256 << 12  # 1 MB each: far beyond a 96-entry TLB
        hot = synth.uniform_random(rng, hot_base, size, 80_000)
        cold = synth.uniform_random(rng, cold_base, size, 2_000)
        trace = Trace("t")
        trace.add(MapRegion(hot_base, size))
        trace.add(MapRegion(cold_base, size))
        trace.add(make_segment("s", synth.interleave(hot, cold[:2000].repeat(40)[:80_000])))
        advice = advise(trace, tlb_entries=96)
        assert advice[0].base == hot_base
        assert advice[0].predicted_misses > advice[-1].predicted_misses

    def test_tiny_hot_region_not_recommended(self):
        """A region smaller than the TLB's reach never misses once warm;
        remapping it cannot pay."""
        vaddrs = [0x0200_0000 + (i % 512) * 8 for i in range(50_000)]
        trace = Trace("t")
        trace.add(MapRegion(0x0200_0000, 4096))
        trace.add(make_segment("s", vaddrs))
        advice = advise(trace, tlb_entries=96)
        assert not advice[0].recommended

    def test_empty_trace_no_advice(self):
        assert advise(Trace("t")) == []
