"""Run statistics: raw counters and the derived metrics the paper reports.

Since the observability subsystem (DESIGN.md §9) landed, ``RunStats`` is
a *view* over the machine's :class:`~repro.obs.MetricsRegistry`: at end
of run every component's counters are collected into the registry and
the dataclass fields are (re)assigned from registry values via
:meth:`RunStats.apply_registry` using :data:`REGISTRY_FIELDS`.  The
dataclass shape is kept because it is the external API — reports,
checkpoints (``dataclasses.asdict`` round trips) and tests all consume
it — but the registry is the authoritative metric surface, and
``repro metrics dump`` serialises from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

from ..errors import StatsConsistencyError

if TYPE_CHECKING:
    from ..obs import MetricsRegistry

#: Registry metric name -> RunStats field, the contract that makes the
#: dataclass a registry view.  Every field here is overwritten from the
#: registry at harvest time; anything else is derived or free-form.
REGISTRY_FIELDS: Dict[str, str] = {
    "cycles.total": "total_cycles",
    "cycles.instruction": "instruction_cycles",
    "cycles.memory_stall": "memory_stall_cycles",
    "cycles.tlb_miss": "tlb_miss_cycles",
    "cycles.kernel": "kernel_cycles",
    "run.instructions": "instructions",
    "run.references": "references",
    "tlb.lookups": "tlb_lookups",
    "tlb.misses": "tlb_misses",
    "itlb.transitions": "itlb_transitions",
    "itlb.main_misses": "itlb_main_misses",
    "cache.accesses": "cache_accesses",
    "cache.misses": "cache_misses",
    "cache.writebacks": "cache_writebacks",
    "fills.count": "fills",
    "fills.stall_cycles": "fill_stall_cycles",
    "mtlb.lookups": "mtlb_lookups",
    "mtlb.misses": "mtlb_misses",
    "mtlb.faults": "mtlb_faults",
    "remap.pages": "remap_pages",
    "remap.cycles": "remap_cycles",
    "remap.flush_cycles": "remap_flush_cycles",
    "faults.injected": "faults_injected",
    "faults.recovered": "faults_recovered",
    "vm.degraded_remaps": "degraded_remaps",
    "oracle.checks": "oracle_checks",
}


@dataclass
class RunStats:
    """Cycle and event totals for one simulated run.

    Cycle categories are disjoint and sum to ``total_cycles``:

    * ``instruction_cycles`` — instruction issue (including single-cycle
      cache hits);
    * ``memory_stall_cycles`` — processor stalls on cache fills for
      ordinary program references;
    * ``tlb_miss_cycles`` — the software TLB miss handler, *including*
      the memory-system time of its hashed-page-table probes (this is the
      "TLB miss time" fraction of Figure 3);
    * ``kernel_cycles`` — boot/exec/exit, syscalls (remap, sbrk growth,
      cache flushing), timer ticks, and MTLB fault service.
    """

    total_cycles: int = 0
    instruction_cycles: int = 0
    memory_stall_cycles: int = 0
    tlb_miss_cycles: int = 0
    kernel_cycles: int = 0

    instructions: int = 0
    references: int = 0

    tlb_lookups: int = 0
    tlb_misses: int = 0
    itlb_transitions: int = 0
    itlb_main_misses: int = 0

    cache_accesses: int = 0
    cache_misses: int = 0
    cache_writebacks: int = 0

    fills: int = 0
    fill_stall_cycles: int = 0

    mtlb_lookups: int = 0
    mtlb_misses: int = 0
    mtlb_faults: int = 0

    remap_pages: int = 0
    remap_cycles: int = 0
    remap_flush_cycles: int = 0

    #: Fault injection / recovery (zero unless a FaultConfig is set).
    faults_injected: int = 0
    faults_recovered: int = 0
    #: Superpage plans demoted or left on base pages because shadow
    #: space was exhausted (graceful-degradation path).
    degraded_remaps: int = 0
    #: Oracle translation cross-checks performed (check_translations=N).
    oracle_checks: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Registry view
    # ------------------------------------------------------------------ #

    def apply_registry(self, registry: "MetricsRegistry") -> "RunStats":
        """Overwrite every mapped field from the registry's counters.

        Metrics absent from the registry leave their field untouched, so
        a partially populated registry (e.g. a machine with no MTLB)
        keeps the field's accumulated or default value.
        """
        values = registry.collect()
        for metric, fld in REGISTRY_FIELDS.items():
            if metric in values:
                setattr(self, fld, values[metric])
        return self

    @classmethod
    def from_registry(cls, registry: "MetricsRegistry") -> "RunStats":
        """Build a fresh RunStats entirely from registry contents."""
        return cls().apply_registry(registry)

    def publish_to(self, registry: "MetricsRegistry") -> None:
        """Push every mapped field into the registry (inverse view).

        Used at harvest so counters accumulated on the dataclass during
        the run (the hot-loop side, see DESIGN.md §9) land in the same
        registry the components collect into.
        """
        for metric, fld in REGISTRY_FIELDS.items():
            registry.counter(metric).set(getattr(self, fld))

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    @property
    def tlb_miss_rate(self) -> float:
        """CPU TLB misses per lookup."""
        return self.tlb_misses / self.tlb_lookups if self.tlb_lookups else 0.0

    @property
    def tlb_time_fraction(self) -> float:
        """Fraction of total runtime spent handling CPU TLB misses."""
        return (
            self.tlb_miss_cycles / self.total_cycles
            if self.total_cycles
            else 0.0
        )

    @property
    def cache_hit_rate(self) -> float:
        """Data cache hit rate."""
        return (
            1.0 - self.cache_misses / self.cache_accesses
            if self.cache_accesses
            else 0.0
        )

    @property
    def mtlb_hit_rate(self) -> float:
        """MTLB hit rate (0.0 when no MTLB or no shadow traffic)."""
        return (
            1.0 - self.mtlb_misses / self.mtlb_lookups
            if self.mtlb_lookups
            else 0.0
        )

    @property
    def avg_fill_cycles(self) -> float:
        """Average processor-visible latency per cache fill, CPU cycles.

        The Figure 4(B) metric: bus + MMC (+ MTLB) time per fill.
        """
        return self.fill_stall_cycles / self.fills if self.fills else 0.0

    @property
    def cpi(self) -> float:
        """Effective cycles per instruction."""
        return (
            self.total_cycles / self.instructions if self.instructions else 0.0
        )

    def check_consistency(self) -> None:
        """Raise :class:`~repro.errors.StatsConsistencyError` if the
        cycle categories do not add up to the reported total."""
        parts = (
            self.instruction_cycles
            + self.memory_stall_cycles
            + self.tlb_miss_cycles
            + self.kernel_cycles
        )
        if parts != self.total_cycles:
            raise StatsConsistencyError(
                f"cycle categories sum to {parts}, total is "
                f"{self.total_cycles}"
            )
