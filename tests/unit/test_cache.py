"""Unit and property tests for the data cache models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addrspace import CACHE_LINE_SIZE
from repro.mem.cache import (
    DirectMappedCache,
    SetAssociativeCache,
    build_cache,
)


@pytest.fixture
def small_dm():
    """A tiny direct-mapped cache: 16 lines of 32 B = 512 B."""
    return DirectMappedCache(size_bytes=512)


@pytest.fixture
def small_sa():
    """A tiny 2-way cache with 8 sets."""
    return SetAssociativeCache(size_bytes=512, associativity=2)


class TestDirectMapped:
    def test_miss_then_hit(self, small_dm):
        assert not small_dm.access(0, 0, False).hit
        assert small_dm.access(0, 0, False).hit
        assert small_dm.access(31, 31, False).hit  # same line
        assert not small_dm.access(32, 32, False).hit  # next line

    def test_conflict_eviction(self, small_dm):
        small_dm.access(0, 0, True)  # dirty line at index 0
        result = small_dm.access(512, 512, False)  # same index
        assert not result.hit
        assert result.writeback_paddr == 0

    def test_clean_eviction_no_writeback(self, small_dm):
        small_dm.access(0, 0, False)
        result = small_dm.access(512, 512, False)
        assert result.writeback_paddr is None

    def test_virtual_index_physical_tag(self, small_dm):
        # Same physical line reached through one virtual alias only; the
        # tag check is against the *physical* address.
        small_dm.access(0x40, 0x1040, False)
        assert small_dm.probe(0x40, 0x1040)
        assert not small_dm.probe(0x40, 0x2040)

    def test_write_sets_dirty(self, small_dm):
        small_dm.access(0, 0, False)
        small_dm.access(0, 0, True)  # hit that dirties the line
        result = small_dm.access(512, 512, False)
        assert result.writeback_paddr == 0

    def test_flush_line(self, small_dm):
        small_dm.access(64, 64, True)
        present, dirty = small_dm.flush_line(64, 64)
        assert present and dirty
        assert not small_dm.probe(64, 64)
        present, dirty = small_dm.flush_line(64, 64)
        assert not present and not dirty

    def test_flush_range(self, small_dm):
        for line in range(4):
            small_dm.access(line * 32, line * 32, line % 2 == 0)
        checked, dirty = small_dm.flush_range(0, 128, lambda v: v)
        assert checked == 4
        assert sorted(dirty) == [0, 64]
        assert small_dm.occupancy == 0

    def test_flush_range_alignment_checked(self, small_dm):
        with pytest.raises(ValueError):
            small_dm.flush_range(1, 32, lambda v: v)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DirectMappedCache(size_bytes=100)
        with pytest.raises(ValueError):
            DirectMappedCache(size_bytes=96)

    def test_stats(self, small_dm):
        small_dm.access(0, 0, False)
        small_dm.access(0, 0, False)
        assert small_dm.stats.accesses == 2
        assert small_dm.stats.hit_rate == 0.5


class TestSetAssociative:
    def test_lru_within_set(self, small_sa):
        # Three lines mapping to set 0 in a 2-way cache (8 sets).
        a, b, c = 0, 8 * 32, 16 * 32
        small_sa.access(a, a, False)
        small_sa.access(b, b, False)
        small_sa.access(a, a, False)  # refresh a
        result = small_sa.access(c, c, False)  # evicts b (LRU)
        assert not result.hit
        assert small_sa.probe(a, a)
        assert not small_sa.probe(b, b)

    def test_dirty_victim_writeback(self, small_sa):
        a, b, c = 0, 8 * 32, 16 * 32
        small_sa.access(a, a, True)
        small_sa.access(b, b, False)
        result = small_sa.access(c, c, False)
        assert result.writeback_paddr == a

    def test_flush_line(self, small_sa):
        small_sa.access(0, 0, True)
        present, dirty = small_sa.flush_line(0, 0)
        assert present and dirty
        assert small_sa.occupancy == 0

    def test_build_cache_dispatch(self):
        assert isinstance(build_cache(512, 1), DirectMappedCache)
        assert isinstance(build_cache(512, 2), SetAssociativeCache)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=512, associativity=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=512, associativity=3)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=63),  # line index
            st.booleans(),
        ),
        min_size=1,
        max_size=300,
    )
)
def test_direct_mapped_matches_reference_model(ops):
    """The direct-mapped cache agrees with a dict-based reference model
    on every hit/miss/writeback decision."""
    cache = DirectMappedCache(size_bytes=512)  # 16 sets
    ref_tags = {}
    ref_dirty = {}
    for line, is_write in ops:
        addr = line * CACHE_LINE_SIZE
        idx = line % 16
        tag = addr // CACHE_LINE_SIZE
        expect_hit = ref_tags.get(idx) == tag
        expect_wb = None
        if not expect_hit and idx in ref_tags and ref_dirty[idx]:
            expect_wb = ref_tags[idx] * CACHE_LINE_SIZE
        result = cache.access(addr, addr, is_write)
        assert result.hit == expect_hit
        assert result.writeback_paddr == expect_wb
        if expect_hit:
            ref_dirty[idx] = ref_dirty[idx] or is_write
        else:
            ref_tags[idx] = tag
            ref_dirty[idx] = is_write


class TestVectorSurface:
    """The numpy surface the vector engine predicts against
    (DESIGN.md §10): bulk_probe, the live tag/dirty views, and the
    mutation stamp that flags cache pollution during miss service."""

    def test_bulk_probe_matches_scalar_probe(self, small_dm):
        import numpy as np

        for addr in (0, 32, 512, 96):
            small_dm.access(addr, addr, False)
        addrs = np.arange(0, 1024, 32, dtype=np.int64)
        mask = small_dm.bulk_probe(addrs, addrs)
        expect = [small_dm.probe(int(a), int(a)) for a in addrs]
        assert mask.tolist() == expect

    def test_bulk_probe_has_no_side_effects(self, small_dm):
        import numpy as np

        small_dm.access(0, 0, False)
        before = (
            small_dm.stats.accesses,
            small_dm.mutation_stamp,
            small_dm.tag_view.copy().tolist(),
        )
        small_dm.bulk_probe(
            np.array([0, 32], dtype=np.int64),
            np.array([0, 32], dtype=np.int64),
        )
        assert (
            small_dm.stats.accesses,
            small_dm.mutation_stamp,
            small_dm.tag_view.tolist(),
        ) == before

    def test_views_are_live(self, small_dm):
        tags = small_dm.tag_view
        dirty = small_dm.dirty_view
        small_dm.access(64, 64, True)
        idx = (64 >> 5) & (small_dm.num_sets - 1)
        assert tags[idx] == 64 >> 5
        assert dirty[idx] == 1
        # Writing the views directly (the engine's fill path) is seen
        # by the scalar API: 576 indexes to the same set as 64.
        tags[idx] = 576 >> 5
        assert small_dm.probe(576, 576)
        assert not small_dm.probe(64, 64)

    def test_mutation_stamp_moves_on_residency_change_only(
        self, small_dm
    ):
        stamp = small_dm.mutation_stamp
        small_dm.access(0, 0, False)  # miss: fills a line
        assert small_dm.mutation_stamp > stamp
        stamp = small_dm.mutation_stamp
        small_dm.access(0, 0, True)  # hit (even dirtying): no move
        assert small_dm.mutation_stamp == stamp
        small_dm.flush_line(0, 0)
        assert small_dm.mutation_stamp > stamp
