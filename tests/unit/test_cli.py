"""Unit tests for the repro-bench CLI (fast commands only)."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(EXPERIMENTS) <= set(out)

    def test_fig2_runs_and_passes(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "shape checks: all passed" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_quick_flag_accepted(self, capsys):
        assert main(["fig2", "--quick"]) == 0
