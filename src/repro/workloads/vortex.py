"""vortex (SPECint95) workload model: an object-oriented in-core database.

Vortex builds several in-memory databases, then runs transactions against
them.  Everything is heap-allocated, so in the paper *all* superpage
creation happens through the modified ``sbrk()``: an initial 8 MB
pre-allocation captures the basic datasets (~9 MB mapped in one group),
after which the increment drops to 2 MB; another ~10 MB arrives in five
separate mappings during transaction processing.  The paper's measured
run is a reduced SPEC training run (~18 MB allocated in total).

Model:

* **build phase** — object records are bump-allocated and written field by
  field; every object also updates a growing index with two random probes
  over the occupied heap prefix;
* **transaction phase** — each transaction performs random index lookups
  over the whole built database, reads the fields of the objects it
  finds (one random jump, then sequential field reads), and allocates a
  couple of fresh result objects, writing them out.

``scale`` multiplies the transaction count (and the ~10 MB of transaction
allocations with it); the built database is the fixed ~9 MB.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..trace import synth
from ..trace.events import Phase
from ..trace.trace import Trace, make_segment
from .base import HeapBuilder, Workload, register

#: Built-database objects (~9 MB at 128 bytes each).
BUILD_OBJECTS = 70_000
OBJECT_BYTES = 128
#: Transaction-phase result objects (two per transaction, 256 bytes).
RESULT_BYTES = 128
TRANSACTIONS = 120_000

#: sbrk pool policy from the paper.
INITIAL_PREALLOC = 8 << 20
INCREMENT = 2 << 20
HEAP_BASE = 0x1000_0000

GAP = 2
#: Transaction locality: most reads hit a hot subset of the database (the
#: currently popular objects and index upper levels), which rotates
#: slowly over the run; the rest range over the whole database.
HOT_PAGES = 104
HOT_FRACTION = 0.85
#: Object reads per transaction.
READS_PER_TX = 8
#: Fields touched per object read.
FIELDS_PER_READ = 8
#: Build-phase segment chunk (keeps event interleaving fine-grained).
BUILD_CHUNK = 10_000
TX_CHUNK = 2_500


@register
class Vortex(Workload):
    """The vortex model; see the module docstring."""

    name = "vortex"
    description = (
        "OO database: build ~9MB of objects via modified sbrk (8MB "
        "prealloc), then transactions allocating ~10MB more in 2MB "
        "increments"
    )

    def build(self, scale: float = 1.0, seed: int = 1998) -> Trace:
        rng = self._rng(seed)
        transactions = self._scaled(TRANSACTIONS, scale, minimum=100)
        trace = Trace(self.name, text_size=512 << 10)
        heap = HeapBuilder(
            trace,
            heap_base=HEAP_BASE,
            initial_prealloc=INITIAL_PREALLOC,
            increment=INCREMENT,
        )

        trace.add(Phase("build"))
        self._build_phase(trace, heap, rng)
        db_top = heap.brk
        heap.set_increment(INCREMENT)

        trace.add(Phase("transactions"))
        self._transaction_phase(trace, heap, rng, transactions, db_top)
        return trace

    # ------------------------------------------------------------------ #
    # Build phase
    # ------------------------------------------------------------------ #

    def _build_phase(
        self, trace: Trace, heap: HeapBuilder, rng: np.random.Generator
    ) -> None:
        built = 0
        while built < BUILD_OBJECTS:
            chunk = min(BUILD_CHUNK, BUILD_OBJECTS - built)
            # Allocate the chunk's objects; pool growth events (map +
            # remap) land in the trace here, before the chunk's writes.
            bases = np.array(
                [heap.alloc(OBJECT_BYTES) for _ in range(chunk)],
                dtype=np.int64,
            )
            writes_stream = synth.expand_records(
                bases, fields=OBJECT_BYTES // 8
            )
            # Two index probes per object: mostly the index's hot upper
            # levels, sometimes anywhere in the occupied heap prefix.
            prefix = max(heap.brk - HEAP_BASE, 1 << 16)
            probes = synth.hot_cold(
                rng, HEAP_BASE, prefix & ~0xFFF, 2 * chunk,
                hot_pages=HOT_PAGES, hot_fraction=HOT_FRACTION,
                hot_seed=29,
            )
            vaddrs = np.column_stack(
                [
                    writes_stream.reshape(chunk, -1),
                    probes.reshape(chunk, 2),
                ]
            ).reshape(-1)
            per_obj = OBJECT_BYTES // 8 + 2
            writes = np.zeros(len(vaddrs), dtype=bool)
            mask = np.zeros(per_obj, dtype=bool)
            mask[: OBJECT_BYTES // 8] = True
            mask[-1] = True  # second index probe inserts
            writes[:] = np.tile(mask, chunk)
            trace.add(
                make_segment(
                    f"build-{built}", vaddrs, write_mask=writes, gap=GAP,
                    text_pages=40,
                )
            )
            built += chunk

    # ------------------------------------------------------------------ #
    # Transaction phase
    # ------------------------------------------------------------------ #

    def _transaction_phase(
        self,
        trace: Trace,
        heap: HeapBuilder,
        rng: np.random.Generator,
        transactions: int,
        db_top: int,
    ) -> None:
        done = 0
        while done < transactions:
            chunk = min(TX_CHUNK, transactions - done)
            result_bases = np.array(
                [heap.alloc(RESULT_BYTES) for _ in range(chunk)],
                dtype=np.int64,
            )
            vaddr_parts: List[np.ndarray] = []
            write_parts: List[np.ndarray] = []
            # Keep whole records inside the mapped database region.
            db_span = db_top - HEAP_BASE - FIELDS_PER_READ * 8
            hot_seed = 29 + done // TX_CHUNK  # hot set drifts over time
            for t in range(chunk):
                # Index lookups + object field reads: hot objects plus a
                # uniform tail over the whole database.
                jumps = synth.hot_cold(
                    rng, HEAP_BASE, db_span & ~0xFFF, READS_PER_TX,
                    hot_pages=HOT_PAGES, hot_fraction=HOT_FRACTION,
                    hot_seed=hot_seed,
                )
                reads = synth.expand_records(jumps, fields=FIELDS_PER_READ)
                vaddr_parts.append(reads)
                write_parts.append(np.zeros(len(reads), dtype=bool))
                # Write out the transaction's result object.
                res = synth.expand_records(
                    result_bases[t : t + 1],
                    fields=RESULT_BYTES // 8,
                )
                vaddr_parts.append(res)
                write_parts.append(np.ones(len(res), dtype=bool))
            vaddrs = np.concatenate(vaddr_parts)
            writes = np.concatenate(write_parts)
            trace.add(
                make_segment(
                    f"tx-{done}", vaddrs, write_mask=writes, gap=GAP,
                    text_pages=60,
                )
            )
            done += chunk
