"""Unit tests for the architectural invariant sanitizers (repro.check)."""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.check.corpus import corpus_config, corpus_trace
from repro.check.sanitizers import SanitizerSuite
from repro.core.shadow_table import PFN_MASK, VALID_BIT
from repro.errors import InvariantViolation
from repro.sim.config import CacheConfig, paper_no_mtlb
from repro.sim.system import System


@pytest.fixture(scope="module")
def trace():
    return corpus_trace()


def warm_system(trace, config=None, sanitize=True):
    """Run the corpus workload so every component has live state."""
    config = config or corpus_config()
    system = System(dataclasses.replace(config, sanitize=sanitize))
    system.run(trace)
    return system


@pytest.fixture
def warm(trace):
    """A warm sanitized machine and its live suite (post-run)."""
    system = warm_system(trace)
    return system, system.sanitizers


class TestCleanMachine:
    def test_sanitized_run_passes(self, warm):
        system, suite = warm
        # 2 events + 6 segments = 8 boundaries, each fully audited.
        assert suite.boundaries_checked == 8

    def test_post_run_audit_passes(self, warm):
        _, suite = warm
        suite.run("post-run")  # no violation on an untouched machine

    def test_sanitize_off_installs_nothing(self, trace):
        system = warm_system(trace, sanitize=False)
        assert system.sanitizers is None

    def test_results_bit_identical_with_sanitizers(self, trace):
        on = warm_system(trace, sanitize=True)
        off = warm_system(trace, sanitize=False)
        assert dataclasses.asdict(on.stats) == dataclasses.asdict(
            off.stats
        )

    def test_no_mtlb_machine_supported(self, trace):
        # The MTLB/shadow checks must degrade gracefully on a
        # conventional machine.
        system = warm_system(trace, config=paper_no_mtlb(96))
        assert system.sanitizers.boundaries_checked == 8

    def test_set_assoc_cache_supported(self, trace):
        config = dataclasses.replace(
            paper_no_mtlb(96),
            cache=CacheConfig(associativity=2),
            engine="scalar",
        )
        system = warm_system(trace, config=config)
        assert system.sanitizers.boundaries_checked == 8


class TestTlbSanitizer:
    def test_aliased_entry_caught(self, warm):
        system, suite = warm
        entry = system.tlb.entries()[0]
        system.tlb._by_size[entry.size][entry.vbase + entry.size] = entry
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "tlb"

    def test_count_desync_caught(self, warm):
        system, suite = warm
        system.tlb._count += 1
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "tlb"
        assert "count" in exc.value.detail

    def test_stale_mru_hint_caught(self, warm):
        system, suite = warm
        system.tlb._mru_size = 3  # not a page size at all
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "tlb"


class TestCacheSanitizer:
    def test_dirty_invalid_line_caught(self, warm):
        system, suite = warm
        cache = system.cache
        invalid = np.nonzero(cache._tags == -1)[0]
        cache._dirty[int(invalid[0])] = 1
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "cache"

    def test_stamp_rewind_caught(self, warm):
        system, suite = warm
        # The live suite recorded the end-of-run stamp; rewinding it is
        # only detectable against that history.
        system.cache.mutation_stamp = 0
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "cache"
        assert "rewound" in exc.value.detail

    def test_out_of_range_tag_caught(self, warm):
        system, suite = warm
        valid = np.nonzero(system.cache._tags != -1)[0]
        system.cache._tags[int(valid[0])] = 1 << 40  # beyond both windows
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "cache"


class TestSetAssocCacheSanitizer:
    """PR-8 checks: stamp monotonicity and residency-mirror coherence
    on the set-associative model the vector engine now batches."""

    @pytest.fixture
    def assoc_warm(self, trace):
        config = dataclasses.replace(
            paper_no_mtlb(96),
            cache=CacheConfig(associativity=2),
            engine="vector",
        )
        system = warm_system(trace, config=config)
        return system, system.sanitizers

    def test_vector_run_with_live_mirror_passes(self, assoc_warm):
        system, suite = assoc_warm
        # The vector engine built the mirror, and every boundary's
        # coherence audit passed against it.
        assert system.cache._mirror is not None
        assert suite.boundaries_checked == 8

    def test_mirror_desync_caught(self, assoc_warm):
        system, suite = assoc_warm
        plane = system.cache.ensure_mirror()
        rows, ways = np.nonzero(plane != -1)
        plane[int(rows[0]), int(ways[0])] = -9
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "cache"
        assert "mirror" in exc.value.detail

    def test_stamp_rewind_caught(self, assoc_warm):
        system, suite = assoc_warm
        system.cache.mutation_stamp = 0
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "cache"
        assert "rewound" in exc.value.detail


class TestShadowTableSanitizer:
    def test_ref_bit_on_unmapped_entry_caught(self, warm):
        system, suite = warm
        table = system.shadow_table
        invalid = np.nonzero((table._entries & VALID_BIT) == 0)[0]
        table.set_referenced(int(invalid[-1]))
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "shadow_table"

    def test_duplicate_pfn_caught(self, warm):
        system, suite = warm
        table = system.shadow_table
        valid = np.nonzero(table._entries & VALID_BIT)[0]
        invalid = np.nonzero((table._entries & VALID_BIT) == 0)[0]
        pfn = int(table._entries[int(valid[0])]) & PFN_MASK
        table.set_mapping(int(invalid[-1]), pfn, valid=True)
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "shadow_table"
        assert "double-mapped" in exc.value.detail


class TestMtlbSanitizer:
    def test_stale_way_caught(self, warm):
        system, suite = warm
        for way_set in system.mtlb._sets:
            for way in way_set.values():
                way.pfn ^= 1
                break
            else:
                continue
            break
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "mtlb"
        assert "purge" in exc.value.detail


class TestFrameSanitizer:
    def test_free_structures_desync_caught(self, warm):
        system, suite = warm
        frames = system.kernel.vm.frames
        frames._free.append(frames._free[-1])  # list/set now disagree
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "frames"

    def test_mapped_frame_on_free_list_caught(self, warm):
        system, suite = warm
        table = system.shadow_table
        frames = system.kernel.vm.frames
        valid = np.nonzero(table._entries & VALID_BIT)[0]
        pfn = int(table._entries[int(valid[0])]) & PFN_MASK
        frames.free(pfn)
        with pytest.raises(InvariantViolation) as exc:
            suite.run("test")
        assert exc.value.component == "frames"


class TestInvariantViolation:
    def test_message_names_component_and_site(self):
        err = InvariantViolation("tlb", "aliased entry", "segment 's0'")
        assert "tlb" in str(err)
        assert "segment 's0'" in str(err)

    def test_pickle_round_trip(self):
        err = InvariantViolation("cache", "stamp rewound", "event Remap")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.component == "cache"
        assert str(clone) == str(err)
