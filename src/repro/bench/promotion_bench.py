"""Ablation A4 — online superpage promotion vs static remap hints.

The paper creates superpages statically (explicit ``remap()`` calls or
the modified ``sbrk``).  Section 5 argues a Romer-style online promotion
policy would port naturally, with thresholds retuned for remapping's low
cost (a cache flush, not a copy).  This bench runs the same traces three
ways — no superpages, static hints, online promotion at several
thresholds — and reports how much of the static benefit the online
policy captures with no application hints at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.config import paper_mtlb, paper_no_mtlb, paper_promotion
from ..sim.results import render_table
from ..sim.system import System
from .runner import BenchContext

THRESHOLDS = (1.0, 3.0, 10.0)


@dataclass
class PromotionResult:
    """Per-workload runtimes for each policy."""

    cycles: Dict[Tuple[str, str], int]
    captured: Dict[str, float]
    report: str
    shape_errors: List[str]


def run_promotion_ablation(
    context: Optional[BenchContext] = None,
    workloads: Sequence[str] = ("radix", "compress95"),
    progress: bool = False,
) -> PromotionResult:
    """Compare none / static / online-promotion policies."""
    context = context or BenchContext()
    cycles: Dict[Tuple[str, str], int] = {}
    promo_counts: Dict[Tuple[str, str], int] = {}
    policies: Dict[str, object] = {"none": paper_no_mtlb(96),
                                   "static": paper_mtlb(96)}
    for threshold in THRESHOLDS:
        policies[f"promote@{threshold:g}"] = paper_promotion(96, threshold)

    for workload in workloads:
        trace = context.trace(workload)
        for policy, config in policies.items():
            if progress:
                print(f"  running {workload} under {policy}...", flush=True)
            system = System(config)
            result = system.run(trace)
            cycles[(workload, policy)] = result.total_cycles
            promo_counts[(workload, policy)] = (
                system.kernel.promotion.stats.promotions
            )

    captured: Dict[str, float] = {}
    rows = []
    for workload in workloads:
        none = cycles[(workload, "none")]
        static = cycles[(workload, "static")]
        best_online = min(
            cycles[(workload, f"promote@{t:g}")] for t in THRESHOLDS
        )
        saving_static = none - static
        saving_online = none - best_online
        captured[workload] = (
            saving_online / saving_static if saving_static > 0 else 1.0
        )
        for policy in policies:
            rows.append(
                [
                    workload,
                    policy,
                    f"{cycles[(workload, policy)] / none:.3f}",
                    promo_counts[(workload, policy)],
                ]
            )
    report = render_table(
        ["workload", "policy", "runtime vs no-superpages", "promotions"],
        rows,
        title="A4: online promotion vs static remap hints",
    )
    errors = _check(captured, cycles, workloads)
    return PromotionResult(
        cycles=cycles, captured=captured, report=report,
        shape_errors=errors,
    )


def _check(
    captured: Dict[str, float],
    cycles: Dict[Tuple[str, str], int],
    workloads: Sequence[str],
) -> List[str]:
    errors: List[str] = []
    for workload in workloads:
        none = cycles[(workload, "none")]
        static = cycles[(workload, "static")]
        if static < none * 0.99:
            # Superpages actually pay on this input: the online policy
            # must capture most of that benefit...
            if captured[workload] < 0.5:
                errors.append(
                    f"{workload}: online promotion captured only "
                    f"{100 * captured[workload]:.0f}% of the static "
                    "benefit"
                )
            # ...and the best threshold must not lose outright.
            best = min(
                cycles[(workload, f"promote@{t:g}")] for t in THRESHOLDS
            )
            if best > none * 1.02:
                errors.append(
                    f"{workload}: every promotion threshold lost to "
                    "running without superpages"
                )
        else:
            # Superpages don't pay at this input scale (tiny working
            # sets fit the CPU TLB); promotion must at worst be a small
            # overhead, never a blow-up.
            for threshold in THRESHOLDS:
                online = cycles[(workload, f"promote@{threshold:g}")]
                if online > none * 1.10:
                    errors.append(
                        f"{workload}: promote@{threshold:g} cost "
                        f"{online / none:.2f}x on a TLB-friendly input"
                    )
    return errors
