"""Processor-side MMU models: TLBs and the software miss handler.

* :mod:`repro.cpu.tlb` — the unified, fully associative, variable-page-size
  CPU TLB with NRU replacement;
* :mod:`repro.cpu.micro_itlb` — the single-entry instruction micro-TLB;
* :mod:`repro.cpu.block_tlb` — the pinned kernel block mapping;
* :mod:`repro.cpu.miss_handler` — the trap-based software refill path that
  probes the hashed page table through the data cache.
"""

from .block_tlb import BlockTlb
from .micro_itlb import MicroItlb, MicroItlbStats
from .miss_handler import (
    MissHandlerCosts,
    MissHandlerStats,
    PageFault,
    RefillResult,
    SoftwareMissHandler,
)
from .tlb import Tlb, TlbEntry, TlbStats

__all__ = [
    "BlockTlb",
    "MicroItlb",
    "MicroItlbStats",
    "MissHandlerCosts",
    "MissHandlerStats",
    "PageFault",
    "RefillResult",
    "SoftwareMissHandler",
    "Tlb",
    "TlbEntry",
    "TlbStats",
]
