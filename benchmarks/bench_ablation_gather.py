"""A10 — page-granularity gather (the Impulse programme).

256 hot pages scattered over 64 MB: base pages thrash a 96-entry TLB;
gathering them into one 1 MB superpage alias (no copy) makes the hot set
one TLB entry.
"""

from repro.bench import run_gather_ablation


def test_gather_ablation(benchmark):
    result = benchmark.pedantic(
        run_gather_ablation, rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
