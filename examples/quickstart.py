#!/usr/bin/env python3
"""Quickstart: measure what a memory-controller TLB buys.

Builds the compress95 workload model (scaled down so this runs in ~30 s),
simulates it on a conventional machine and on one whose memory
controller hosts a 128-entry MTLB with shadow-backed superpages, and
prints the comparison the paper's Figure 3 makes.

Run:  python examples/quickstart.py
"""

from repro import paper_base, paper_mtlb, simulate
from repro.workloads import build_workload


def describe(label, result):
    stats = result.stats
    print(f"{label}")
    print(f"  total runtime          {stats.total_cycles:>12,} cycles")
    print(f"  in TLB miss handling   {stats.tlb_miss_cycles:>12,} cycles "
          f"({100 * stats.tlb_time_fraction:.1f}%)")
    print(f"  CPU TLB miss rate      {100 * stats.tlb_miss_rate:>11.3f}%")
    print(f"  cache hit rate         {100 * stats.cache_hit_rate:>11.1f}%")
    if stats.mtlb_lookups:
        print(f"  MTLB hit rate          {100 * stats.mtlb_hit_rate:>11.1f}%")
    print()


def main():
    print("generating the compress95 trace (LZW over random-probed "
          "tables + streamed buffers)...")
    trace = build_workload("compress95", scale=0.15)
    print(f"  {trace.total_refs:,} memory references, "
          f"{trace.footprint_bytes() >> 20} MB footprint\n")

    print("simulating the conventional system (96-entry CPU TLB)...")
    base = simulate(trace, paper_base())
    describe("conventional (no MTLB)", base)

    print("simulating with shadow superpages + a 128-entry MTLB...")
    fast = simulate(trace, paper_mtlb(tlb_entries=96))
    describe("96-entry TLB + MTLB", fast)

    speedup = base.total_cycles / fast.total_cycles
    print(f"speedup from the MTLB: {speedup:.3f}x "
          f"({100 * (1 - 1 / speedup):.1f}% less runtime)")


if __name__ == "__main__":
    main()
