"""Trace serialisation: cache generated traces on disk as ``.npz`` files.

Workload generation is cheap next to simulation, but the benchmark
harness reruns the same trace across many configurations and pytest
sessions; caching keeps those reruns honest (bit-identical streams) and
fast.  A trace file holds a JSON item list (events inline, segments by
index) plus the segments' numpy arrays.

Every file carries a CRC32 *content checksum* over the metadata and all
segment arrays.  A mismatch (bit rot, a partial write from a killed
process, a concurrent writer) raises
:class:`~repro.errors.TraceCacheCorrupt`; the harness treats that as a
cache miss — warn, delete, regenerate — rather than simulating a
silently wrong reference stream.
"""

from __future__ import annotations

import io
import json
import zipfile
import zlib
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..errors import TraceCacheCorrupt
from ..ioutil import atomic_write_bytes
from .events import HeapGrow, MapConventional, MapRegion, Phase, Remap
from .trace import Segment, Trace

#: Bump when the on-disk layout changes; stale caches are regenerated.
#: Version 3 added the content checksum.
FORMAT_VERSION = 3

_EVENT_TYPES = {
    "MapRegion": MapRegion,
    "MapConventional": MapConventional,
    "Remap": Remap,
    "HeapGrow": HeapGrow,
    "Phase": Phase,
}


def event_record(item) -> dict:
    """Serialise one kernel event to a JSON-ready record."""
    record = {"kind": type(item).__name__}
    record.update(vars(item))
    return record


def record_event(record: dict):
    """Rebuild a kernel event from :func:`event_record` output.

    Raises KeyError on an unknown event kind (callers treat that as
    corruption / format skew).  *record* is consumed: the ``kind`` key
    is popped.
    """
    kind = record.pop("kind")
    return _EVENT_TYPES[kind](**record)


def _content_checksum(meta: dict, arrays: Dict[str, np.ndarray]) -> int:
    """CRC32 over the canonical JSON metadata and every array's bytes.

    *meta* must not include the checksum itself; array keys participate
    so renamed/reordered arrays do not collide.
    """
    crc = zlib.crc32(json.dumps(meta, sort_keys=True).encode("utf-8"))
    for key in sorted(arrays):
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(np.ascontiguousarray(arrays[key]).tobytes(), crc)
    return crc & 0xFFFFFFFF


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write *trace* to *path* (an ``.npz`` file), atomically.

    The bytes are staged through a writer-private tmp file and renamed
    into place (:func:`repro.ioutil.atomic_write_bytes`): a killed
    writer leaves the previous file (or nothing) at the live name, and
    two concurrent writers of the same path never interleave — the
    direct-to-final-path write this replaced could leave a torn file
    that every later reader paid a checksum failure for.
    """
    path = Path(path)
    items = []
    arrays: Dict[str, np.ndarray] = {}
    seg_index = 0
    for item in trace.items:
        if isinstance(item, Segment):
            items.append(
                {
                    "kind": "segment",
                    "index": seg_index,
                    "label": item.label,
                    "text_pages": item.text_pages,
                }
            )
            arrays[f"seg{seg_index}_ops"] = item.ops
            arrays[f"seg{seg_index}_vaddrs"] = item.vaddrs
            arrays[f"seg{seg_index}_gaps"] = item.gaps
            seg_index += 1
        else:
            items.append(event_record(item))
    meta = {
        "version": FORMAT_VERSION,
        "name": trace.name,
        "text_base": trace.text_base,
        "text_size": trace.text_size,
        "items": items,
    }
    meta["checksum"] = _content_checksum(meta, arrays)
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    atomic_write_bytes(path, buffer.getvalue())


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`.

    Raises ValueError on a format-version mismatch (callers should
    regenerate rather than guess) and
    :class:`~repro.errors.TraceCacheCorrupt` when the file is
    unreadable, truncated, or fails its content checksum (callers
    should warn, delete, and regenerate).
    """
    path = Path(path)
    try:
        # Trace files are pure arrays + JSON metadata; refusing pickles
        # keeps a tampered cache file from executing code on load.
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise TraceCacheCorrupt(path, f"unreadable npz ({exc})") from exc
    try:
        try:
            raw = bytes(data["meta"].tobytes()).decode("utf-8")
            meta = json.loads(raw)
        except (KeyError, ValueError, UnicodeDecodeError) as exc:
            raise TraceCacheCorrupt(
                path, f"bad metadata ({exc})"
            ) from exc
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"trace file {path} has format version "
                f"{meta.get('version')}, expected {FORMAT_VERSION}"
            )
        stored_checksum = meta.pop("checksum", None)
        arrays: Dict[str, np.ndarray] = {}
        try:
            for key in data.files:
                if key != "meta":
                    arrays[key] = data[key]
        except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
            raise TraceCacheCorrupt(
                path, f"truncated array data ({exc})"
            ) from exc
        if stored_checksum != _content_checksum(meta, arrays):
            raise TraceCacheCorrupt(path, "content checksum mismatch")
    finally:
        data.close()

    trace = Trace(
        meta["name"],
        text_base=meta["text_base"],
        text_size=meta["text_size"],
    )
    for record in meta["items"]:
        kind = record.pop("kind")
        if kind == "segment":
            i = record["index"]
            trace.add(
                Segment(
                    record["label"],
                    arrays[f"seg{i}_ops"],
                    arrays[f"seg{i}_vaddrs"],
                    arrays[f"seg{i}_gaps"],
                    text_pages=record["text_pages"],
                )
            )
        else:
            record["kind"] = kind
            trace.add(record_event(record))
    return trace
