"""Main memory controller (MMC) with an optional memory-controller TLB.

The MMC receives cache-fill requests and writebacks from the bus.  When an
MTLB is configured, the MMC classifies *every* address as real, shadow, or
I/O — the paper conservatively charges one 120 MHz MMC cycle for this check
on every operation — and retranslates shadow addresses through the MTLB
before accessing DRAM.  An MTLB miss costs one extra DRAM access to load
the 4-byte entry from the flat shadow page table (which itself lives in
DRAM).

The OS programs shadow mappings and purges MTLB entries through uncached
writes to MMC control registers; those arrive via :meth:`write_mapping`,
:meth:`invalidate_mapping` and :meth:`purge_mtlb_range`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.addrspace import BASE_PAGE_MASK, BASE_PAGE_SHIFT, PhysicalMemoryMap
from ..core.mtlb import Mtlb, MtlbFault
from ..core.shadow_table import ShadowPageTable
from ..errors import UnrecoverableMemoryError
from ..faults import DRAM_TRANSIENT, FAULT_SITES, FaultPlan
from ..obs.tracer import CACHE_MISS, FAULT_INJECTED
from .dram import Dram
from .stream_buffers import StreamBufferUnit

#: Fault-site ordinals carried in ``fault_injected`` event payloads.
_SITE_ORDINAL = {site: i for i, site in enumerate(FAULT_SITES)}


class BadPhysicalAddress(Exception):
    """An access fell outside DRAM, shadow window and I/O hole."""

    def __init__(self, paddr: int) -> None:
        super().__init__(f"access to unbacked physical address {paddr:#010x}")
        self.paddr = paddr


@dataclass(frozen=True)
class MmcTiming:
    """MMC timing parameters, in MMC (120 MHz) cycles."""

    #: Fixed controller occupancy per operation (queueing, scheduling).
    base_occupancy: int = 2
    #: Added to every operation when an MTLB is present (the paper's
    #: conservative shadow-check assumption; set to 0 for ablation A3).
    shadow_check: int = 1
    #: CPU cycles per MMC cycle (240 MHz CPU / 120 MHz MMC).
    cpu_cycles_per_mmc_cycle: int = 2
    #: Charge a DRAM write when the MTLB first sets a referenced/dirty
    #: bit on a cached translation (the functionality the paper's
    #: simulated MTLB omitted, predicting "a negligible effect";
    #: ablation A9 checks that prediction).
    bit_writeback: bool = False


@dataclass
class MmcStats:
    """Event counters for the memory controller."""

    fills: int = 0
    shadow_fills: int = 0
    writebacks: int = 0
    shadow_writebacks: int = 0
    control_writes: int = 0
    #: Total MMC-side latency of all fills, in CPU cycles (Figure 4(B)).
    fill_cpu_cycles: int = 0
    #: Injected transient bus/DRAM errors retried successfully.
    transient_retries: int = 0

    @property
    def avg_fill_cpu_cycles(self) -> float:
        """Average MMC-side latency per cache fill, in CPU cycles."""
        return self.fill_cpu_cycles / self.fills if self.fills else 0.0

    def metrics_snapshot(self) -> Dict[str, int]:
        """Flat counter mapping for the machine's metrics registry."""
        return {
            "fills": self.fills,
            "shadow_fills": self.shadow_fills,
            "writebacks": self.writebacks,
            "shadow_writebacks": self.shadow_writebacks,
            "control_writes": self.control_writes,
            "fill_cpu_cycles": self.fill_cpu_cycles,
            "transient_retries": self.transient_retries,
        }


@dataclass(frozen=True)
class FillResult:
    """Outcome of one cache-fill request at the MMC."""

    #: The real physical address the data came from.
    real_paddr: int
    #: MMC-side latency in CPU cycles (bus time not included).
    cpu_cycles: int
    #: True if the request needed an MTLB hardware fill.
    mtlb_filled: bool


class MemoryController:
    """The MMC: address classification, MTLB retranslation, DRAM access."""

    def __init__(
        self,
        memory_map: PhysicalMemoryMap,
        dram: Dram,
        timing: MmcTiming = MmcTiming(),
        shadow_table: Optional[ShadowPageTable] = None,
        mtlb: Optional[Mtlb] = None,
        stream_buffers: Optional[StreamBufferUnit] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if (mtlb is None) != (shadow_table is None):
            raise ValueError(
                "shadow_table and mtlb must be configured together"
            )
        self.memory_map = memory_map
        self.dram = dram
        self.timing = timing
        self.shadow_table = shadow_table
        self.mtlb = mtlb
        #: Optional Section 6 extension: prefetches sequential miss
        #: streams past the (retranslated) real addresses.  Timing only;
        #: functional data never lives in the buffers.
        self.stream_buffers = stream_buffers
        #: Fault-injection schedule; None makes every access go straight
        #: to DRAM with no retry logic (and no PRNG draws).
        self.fault_plan = fault_plan
        self.stats = MmcStats()
        #: Observability event sink (None = null sink): one
        #: ``cache_miss`` event per serviced fill, ``fault_injected``
        #: when a transient DRAM error is injected and retried.
        self.tracer = None

    def metrics_snapshot(self) -> Dict[str, int]:
        """Counters this MMC registers into the metrics registry."""
        return self.stats.metrics_snapshot()

    @property
    def has_mtlb(self) -> bool:
        """True if this controller retranslates shadow addresses."""
        return self.mtlb is not None

    def _dram_access(self, paddr: int) -> int:
        """One DRAM access, retrying injected transient errors.

        Returns MMC cycles.  When the fault plan injects a transient
        bus/DRAM error, the MMC retries with exponential backoff
        (``retry_backoff_cycles`` doubling per attempt) up to
        ``max_retries`` times; an error that persists past the bound
        raises :class:`~repro.errors.UnrecoverableMemoryError`.
        """
        cycles = self.dram.access_cycles(paddr)
        plan = self.fault_plan
        if plan is None:
            return cycles
        attempts = 0
        while plan.fires(DRAM_TRANSIENT):
            attempts += 1
            if attempts > plan.config.max_retries:
                raise UnrecoverableMemoryError(paddr, attempts)
            cycles += plan.config.retry_backoff_cycles << (attempts - 1)
            cycles += self.dram.access_cycles(paddr)
        if attempts:
            self.stats.transient_retries += attempts
            plan.record_recovery(DRAM_TRANSIENT)
            if self.tracer is not None:
                self.tracer.emit(
                    FAULT_INJECTED, _SITE_ORDINAL[DRAM_TRANSIENT]
                )
        return cycles

    # ------------------------------------------------------------------ #
    # Bus-visible operations
    # ------------------------------------------------------------------ #

    def cache_fill(self, paddr: int, exclusive: bool) -> FillResult:
        """Service one cache-fill request.

        *exclusive* requests (write misses) mark the base page dirty in the
        shadow table; shared requests mark it referenced (Section 2.5).
        Raises :class:`~repro.core.mtlb.MtlbFault` if the request touches a
        shadow page whose mapping is invalid, and
        :class:`BadPhysicalAddress` for addresses nothing backs.
        """
        timing = self.timing
        mmc_cycles = timing.base_occupancy
        if self.mtlb is not None:
            mmc_cycles += timing.shadow_check
        mtlb_filled = False
        real_paddr = paddr
        is_shadow = self.memory_map.is_shadow(paddr)
        if is_shadow:
            if self.mtlb is None:
                raise BadPhysicalAddress(paddr)
            shadow_index = (
                paddr - self.memory_map.shadow_base
            ) >> BASE_PAGE_SHIFT
            pfn, mtlb_filled = self.mtlb.access(shadow_index, exclusive)
            if mtlb_filled:
                # Hardware fill: one DRAM access to the flat table entry.
                entry_paddr = self.shadow_table.entry_paddr(shadow_index)
                mmc_cycles += self._dram_access(entry_paddr)
            if timing.bit_writeback and self.mtlb.pending_bit_write:
                mmc_cycles += self._dram_access(
                    self.shadow_table.entry_paddr(shadow_index)
                )
            real_paddr = (pfn << BASE_PAGE_SHIFT) | (paddr & BASE_PAGE_MASK)
            self.stats.shadow_fills += 1
        elif not self.memory_map.is_dram(paddr):
            raise BadPhysicalAddress(paddr)
        buffered = (
            self.stream_buffers.lookup(real_paddr)
            if self.stream_buffers is not None
            else None
        )
        if buffered is not None:
            mmc_cycles += buffered
        else:
            mmc_cycles += self._dram_access(real_paddr)
        cpu_cycles = mmc_cycles * timing.cpu_cycles_per_mmc_cycle
        self.stats.fills += 1
        self.stats.fill_cpu_cycles += cpu_cycles
        if self.tracer is not None:
            self.tracer.emit(CACHE_MISS, paddr, cpu_cycles)
        return FillResult(
            real_paddr=real_paddr,
            cpu_cycles=cpu_cycles,
            mtlb_filled=mtlb_filled,
        )

    def writeback(self, paddr: int) -> int:
        """Service one writeback; returns MMC occupancy in CPU cycles.

        Writebacks to shadow addresses are retranslated exactly like fills
        (the MTLB examines every writeback), but a writeback can never
        fault: the OS flushes dirty data *before* invalidating a mapping
        (Section 4), so the translation is always valid.
        """
        timing = self.timing
        mmc_cycles = timing.base_occupancy
        if self.mtlb is not None:
            mmc_cycles += timing.shadow_check
        real_paddr = paddr
        if self.memory_map.is_shadow(paddr):
            if self.mtlb is None:
                raise BadPhysicalAddress(paddr)
            shadow_index = (
                paddr - self.memory_map.shadow_base
            ) >> BASE_PAGE_SHIFT
            try:
                # inject=False: writebacks are buffered and cannot take
                # a kernel-serviced parity fault; injection happens on
                # the fill/translation path only.
                pfn, filled = self.mtlb.access(
                    shadow_index, True, inject=False
                )
            except MtlbFault as exc:
                raise AssertionError(
                    "writeback faulted: the OS must flush dirty data before "
                    "invalidating a shadow mapping"
                ) from exc
            if filled:
                entry_paddr = self.shadow_table.entry_paddr(shadow_index)
                mmc_cycles += self._dram_access(entry_paddr)
            real_paddr = (pfn << BASE_PAGE_SHIFT) | (paddr & BASE_PAGE_MASK)
            self.stats.shadow_writebacks += 1
        elif not self.memory_map.is_dram(paddr):
            raise BadPhysicalAddress(paddr)
        mmc_cycles += self._dram_access(real_paddr)
        self.stats.writebacks += 1
        return mmc_cycles * timing.cpu_cycles_per_mmc_cycle

    # ------------------------------------------------------------------ #
    # Control-register interface (uncached writes from the kernel)
    # ------------------------------------------------------------------ #

    def write_mapping(
        self, shadow_index: int, pfn: int, valid: bool = True
    ) -> None:
        """Install one shadow-to-physical base-page mapping.

        Purges any stale MTLB copy so the new mapping takes effect
        immediately (the paper's uncached control-register write).
        """
        self._require_mtlb()
        self.shadow_table.set_mapping(shadow_index, pfn, valid)
        self.mtlb.purge(shadow_index)
        self.stats.control_writes += 1

    def invalidate_mapping(self, shadow_index: int) -> None:
        """Mark one shadow mapping not-present (page-out path)."""
        self._require_mtlb()
        self.shadow_table.invalidate(shadow_index)
        self.mtlb.purge(shadow_index)
        self.stats.control_writes += 1

    def revalidate_mapping(
        self, shadow_index: int, pfn: Optional[int] = None
    ) -> None:
        """Mark one shadow mapping present again (page-in path)."""
        self._require_mtlb()
        self.shadow_table.revalidate(shadow_index, pfn)
        self.mtlb.purge(shadow_index)
        self.stats.control_writes += 1

    def clear_mapping(self, shadow_index: int) -> None:
        """Remove one shadow mapping entirely (region freed)."""
        self._require_mtlb()
        self.shadow_table.clear_mapping(shadow_index)
        self.mtlb.purge(shadow_index)
        self.stats.control_writes += 1

    def purge_mtlb_range(self, first_index: int, count: int) -> None:
        """Purge cached MTLB translations for a run of shadow pages."""
        self._require_mtlb()
        self.mtlb.purge_range(first_index, count)
        self.stats.control_writes += 1

    def _require_mtlb(self) -> None:
        if self.mtlb is None:
            raise RuntimeError("this MMC has no MTLB configured")

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def resolve(self, paddr: int) -> int:
        """Functionally translate *paddr* to its real physical address.

        No timing, no stats, no referenced/dirty updates — used by the
        functional-check mode and by the OS when it needs to know where a
        shadow page's data actually lives.
        """
        if not self.memory_map.is_shadow(paddr):
            return paddr
        self._require_mtlb()
        shadow_index = (paddr - self.memory_map.shadow_base) >> BASE_PAGE_SHIFT
        entry = self.shadow_table.entry(shadow_index)
        if not entry.valid:
            raise MtlbFault(shadow_index, is_write=False)
        return (entry.pfn << BASE_PAGE_SHIFT) | (paddr & BASE_PAGE_MASK)
