"""Address-space constants and bit manipulation helpers.

The simulated machine follows the paper's running example (Section 2):

* the processor exports **32 bits of physical address**;
* the **base page size is 4 KB**;
* **superpages** are powers of four times the base page, from 16 KB up to
  16 MB, and must be virtually aligned to their own size;
* a contiguous **shadow window** sits above installed DRAM.  "Physical"
  addresses inside the window are not backed by DRAM; the memory controller
  retranslates them, per 4 KB base page, onto real page frames.

Everything else in the package builds on the helpers defined here, so this
module is deliberately dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass

#: log2 of the base page size (4 KB).
BASE_PAGE_SHIFT = 12
#: The base (small) page size in bytes.
BASE_PAGE_SIZE = 1 << BASE_PAGE_SHIFT
#: Mask selecting the offset within a base page.
BASE_PAGE_MASK = BASE_PAGE_SIZE - 1

#: Number of physical address bits exported by the processor.
PHYS_ADDR_BITS = 32
#: One past the largest representable physical address.
PHYS_ADDR_LIMIT = 1 << PHYS_ADDR_BITS

#: Legal superpage sizes in bytes, smallest first.  Powers of four times the
#: base page, 16 KB .. 16 MB, matching the SGI R10000 / PA-RISC 2.0 encoding
#: the paper targets.  The base page itself is *not* a superpage.
SUPERPAGE_SIZES = tuple((1 << BASE_PAGE_SHIFT) << (2 * k) for k in range(1, 7))

#: All legal mapping sizes (base page plus superpages), smallest first.
PAGE_SIZES = (BASE_PAGE_SIZE,) + SUPERPAGE_SIZES

#: Cache-line size used throughout the memory system (HP PA8000-like).
CACHE_LINE_SIZE = 32
CACHE_LINE_SHIFT = 5


def is_power_of_two(value: int) -> bool:
    """Return True if *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def page_number(addr: int, page_size: int = BASE_PAGE_SIZE) -> int:
    """Return the page number of *addr* for the given page size."""
    return addr // page_size


def page_offset(addr: int, page_size: int = BASE_PAGE_SIZE) -> int:
    """Return the offset of *addr* within its page."""
    return addr & (page_size - 1)


def page_base(addr: int, page_size: int = BASE_PAGE_SIZE) -> int:
    """Return the address of the start of the page containing *addr*."""
    return addr & ~(page_size - 1)


def align_up(addr: int, alignment: int) -> int:
    """Round *addr* up to the next multiple of *alignment* (a power of 2)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (addr + alignment - 1) & ~(alignment - 1)


def align_down(addr: int, alignment: int) -> int:
    """Round *addr* down to a multiple of *alignment* (a power of 2)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return addr & ~(alignment - 1)


def is_aligned(addr: int, alignment: int) -> bool:
    """Return True if *addr* is a multiple of *alignment* (a power of 2)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (addr & (alignment - 1)) == 0


def is_superpage_size(size: int) -> bool:
    """Return True if *size* is one of the legal superpage sizes."""
    return size in SUPERPAGE_SIZES


def is_mapping_size(size: int) -> bool:
    """Return True if *size* is a legal TLB mapping size (base or super)."""
    return size in PAGE_SIZES


def largest_superpage_not_exceeding(size: int) -> int:
    """Return the largest legal superpage size that is <= *size*.

    Raises ValueError if *size* is smaller than the smallest superpage.
    """
    best = 0
    for candidate in SUPERPAGE_SIZES:
        if candidate <= size:
            best = candidate
    if best == 0:
        raise ValueError(
            f"no legal superpage fits in {size} bytes "
            f"(minimum is {SUPERPAGE_SIZES[0]})"
        )
    return best


def base_pages_in(size: int) -> int:
    """Return how many base pages a region of *size* bytes spans (exact)."""
    if size % BASE_PAGE_SIZE:
        raise ValueError(f"size {size:#x} is not base-page aligned")
    return size // BASE_PAGE_SIZE


@dataclass(frozen=True)
class PhysicalMemoryMap:
    """Layout of the simulated 32-bit physical address space.

    The map mirrors the paper's running example: installed DRAM starts at
    address zero; a shadow window of ``shadow_size`` bytes sits at
    ``shadow_base`` (512 MB at 0x8000_0000 by default); memory-mapped I/O
    occupies a high hole that must never be treated as shadow memory.
    """

    dram_size: int = 256 << 20
    shadow_base: int = 0x8000_0000
    shadow_size: int = 512 << 20
    io_base: int = 0xF000_0000
    io_size: int = 0x1000_0000

    def __post_init__(self) -> None:
        if self.dram_size % BASE_PAGE_SIZE:
            raise ValueError("dram_size must be base-page aligned")
        if not is_aligned(self.shadow_base, SUPERPAGE_SIZES[-1]):
            raise ValueError(
                "shadow_base must be aligned to the largest superpage"
            )
        if self.shadow_size % BASE_PAGE_SIZE:
            raise ValueError("shadow_size must be base-page aligned")
        if self.shadow_base < self.dram_size:
            raise ValueError("shadow window overlaps installed DRAM")
        if self.shadow_end > self.io_base:
            raise ValueError("shadow window overlaps the I/O hole")
        if self.io_base + self.io_size > PHYS_ADDR_LIMIT:
            raise ValueError("I/O hole exceeds the physical address space")

    @property
    def shadow_end(self) -> int:
        """One past the last shadow address."""
        return self.shadow_base + self.shadow_size

    @property
    def dram_frames(self) -> int:
        """Number of installed 4 KB DRAM page frames."""
        return self.dram_size // BASE_PAGE_SIZE

    @property
    def shadow_pages(self) -> int:
        """Number of 4 KB shadow pages in the window."""
        return self.shadow_size // BASE_PAGE_SIZE

    def is_dram(self, paddr: int) -> bool:
        """Return True if *paddr* falls inside installed DRAM."""
        return 0 <= paddr < self.dram_size

    def is_shadow(self, paddr: int) -> bool:
        """Return True if *paddr* falls inside the shadow window.

        This is the classification the MMC performs on every cache-fill
        request (Section 2.2); the simulator charges one MMC cycle for it.
        """
        return self.shadow_base <= paddr < self.shadow_end

    def is_io(self, paddr: int) -> bool:
        """Return True if *paddr* falls inside the memory-mapped I/O hole."""
        return self.io_base <= paddr < self.io_base + self.io_size

    def shadow_page_index(self, paddr: int) -> int:
        """Return the base-page index of *paddr* within the shadow window."""
        if not self.is_shadow(paddr):
            raise ValueError(f"{paddr:#010x} is not a shadow address")
        return (paddr - self.shadow_base) >> BASE_PAGE_SHIFT

    def shadow_addr_of_index(self, index: int) -> int:
        """Return the shadow address of shadow base page *index*."""
        if not 0 <= index < self.shadow_pages:
            raise ValueError(f"shadow page index {index} out of range")
        return self.shadow_base + (index << BASE_PAGE_SHIFT)


#: Default memory map used by the paper-preset configurations.
DEFAULT_MEMORY_MAP = PhysicalMemoryMap()
