"""E7 — the paper's Figure 1 worked example, end to end.

The OS maps a contiguous 16 KB virtual range at 0x00004000 onto the
shadow superpage at "physical" page frame 0x80240.  An access to virtual
0x00004080 is translated by the CPU TLB to shadow physical 0x80240080,
which the MTLB retranslates to real physical 0x40138080.  The paper's
Section 2.2 fill example also appears: shadow page index 0x0240's table
entry lives at (0x0240 << 2) + table base, and maps to frame 0x04012.
"""

import pytest

from repro.core.addrspace import PhysicalMemoryMap
from repro.core.mtlb import Mtlb
from repro.core.shadow_table import ShadowPageTable
from repro.cpu.tlb import Tlb, TlbEntry


@pytest.fixture
def figure1():
    """A machine big enough for the paper's example frame numbers:
    32-bit physical space, >1 GB of DRAM below the 0x8000_0000 shadow
    window."""
    memory_map = PhysicalMemoryMap(dram_size=0x4800_0000)
    table = ShadowPageTable(memory_map, table_base=0)
    mtlb = Mtlb(table, entries=128, associativity=2)
    tlb = Tlb(entries=96)
    return memory_map, table, mtlb, tlb


class TestFigure1:
    def test_virtual_to_shadow_to_real(self, figure1):
        memory_map, table, mtlb, tlb = figure1
        # OS: one CPU-TLB superpage entry 0x00004000 -> shadow 0x80240000.
        tlb.insert(
            TlbEntry(vbase=0x0000_4000, pbase=0x8024_0000, size=16 << 10)
        )
        # OS: shadow-to-real mappings for the 4 base pages (frames chosen
        # to include the figure's 0x40138).
        first = memory_map.shadow_page_index(0x8024_0000)
        frames = [0x40138, 0x04012, 0x2AAAA, 0x11111]
        for i, pfn in enumerate(frames):
            table.set_mapping(first + i, pfn)

        # CPU side: virtual 0x00004080 hits the superpage entry.
        entry = tlb.lookup(0x0000_4080)
        assert entry is not None
        shadow = entry.translate(0x0000_4080)
        assert shadow == 0x8024_0080

        # MMC side: the MTLB retranslates to the real address.
        assert memory_map.is_shadow(shadow)
        index = memory_map.shadow_page_index(shadow)
        pfn, filled = mtlb.access(index, is_write=False)
        real = (pfn << 12) | (shadow & 0xFFF)
        assert real == 0x4013_8080
        assert filled  # first touch required a hardware fill

    def test_second_page_of_superpage(self, figure1):
        memory_map, table, mtlb, tlb = figure1
        tlb.insert(
            TlbEntry(vbase=0x0000_4000, pbase=0x8024_0000, size=16 << 10)
        )
        first = memory_map.shadow_page_index(0x8024_0000)
        table.set_mapping(first + 1, 0x04012)
        # Virtual 0x00005040 -> shadow 0x80241040 -> real 0x04012040
        # (the Section 2.2 fill walkthrough).
        entry = tlb.lookup(0x0000_5040)
        shadow = entry.translate(0x0000_5040)
        assert shadow == 0x8024_1040
        index = memory_map.shadow_page_index(shadow)
        pfn, _ = mtlb.access(index, is_write=False)
        assert ((pfn << 12) | (shadow & 0xFFF)) == 0x0401_2040

    def test_fill_address_arithmetic(self, figure1):
        """Section 2.2: the fill engine loads (index << 2) + table base —
        for shadow page 0x0240 with a zero table base, address 0x900."""
        memory_map, table, _mtlb, _tlb = figure1
        index = memory_map.shadow_page_index(0x8024_0000)
        assert index == 0x0240  # page 0x80240 minus the window base
        assert table.entry_paddr(0x0240) == 0x0240 << 2

    def test_discontiguous_backing(self, figure1):
        """The four base pages of the superpage live in scattered,
        unordered frames — the property conventional superpages forbid."""
        memory_map, table, mtlb, tlb = figure1
        tlb.insert(
            TlbEntry(vbase=0x0000_4000, pbase=0x8024_0000, size=16 << 10)
        )
        first = memory_map.shadow_page_index(0x8024_0000)
        frames = [0x40138, 0x04012, 0x2AAAA, 0x11111]
        for i, pfn in enumerate(frames):
            table.set_mapping(first + i, pfn)
        reals = []
        for page in range(4):
            vaddr = 0x0000_4000 + page * 4096
            shadow = tlb.lookup(vaddr).translate(vaddr)
            pfn, _ = mtlb.access(
                memory_map.shadow_page_index(shadow), False
            )
            reals.append(pfn)
        assert reals == frames
        assert reals != sorted(reals)
