"""Ablation benches A1-A3 (our additions; see DESIGN.md Section 4).

* **A1 — fragmentation**: conventional superpages need contiguous,
  aligned frame runs and fail on a fragmented machine; shadow-backed
  superpages are immune.  On an unfragmented machine the two perform
  comparably (conventional slightly ahead: no MTLB in the fill path).
* **A2 — shadow allocators**: the paper's static bucket scheme versus
  the buddy system it suggests as future work, under a mixed
  allocate/free stream.
* **A3 — shadow-check penalty**: the paper charges one MMC cycle on
  every operation for the real/shadow address check, calling this
  "likely overly conservative"; this bench quantifies what the
  assumption costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.addrspace import PhysicalMemoryMap
from ..core.shadow_space import (
    BucketShadowAllocator,
    BuddyShadowAllocator,
    ShadowSpaceExhausted,
)
from ..os_model.frames import OutOfMemory
from ..sim.config import paper_mtlb, paper_no_mtlb, with_check_penalty
from ..sim.results import render_table
from ..sim.system import System
from ..trace import synth
from ..trace.events import MapConventional, MapRegion, Remap
from ..trace.trace import Trace, make_segment
from .runner import BenchContext

# ---------------------------------------------------------------------- #
# A1 — fragmentation vs conventional superpages
# ---------------------------------------------------------------------- #

REGION_BYTES = 8 << 20
REGION_BASE = 0x1000_0000


def _scatter_trace(mode: str, refs: int = 400_000) -> Trace:
    """A radix-like scattered reference stream over an 8 MB region.

    *mode* selects the mapping style: "base", "conventional" or "shadow".
    """
    trace = Trace(f"scatter-{mode}")
    if mode == "conventional":
        trace.add(MapConventional(REGION_BASE, REGION_BYTES))
    else:
        trace.add(MapRegion(REGION_BASE, REGION_BYTES))
        if mode == "shadow":
            trace.add(Remap(REGION_BASE, REGION_BYTES))
    rng = np.random.default_rng(7)
    vaddrs = synth.uniform_random(rng, REGION_BASE, REGION_BYTES, refs)
    trace.add(
        make_segment(
            "scatter", vaddrs, write_mask=(vaddrs % 32 == 0), gap=3
        )
    )
    return trace


@dataclass
class FragmentationResult:
    """Outcome of A1: per (mapping mode, fragmentation) cell."""

    cells: Dict[Tuple[str, str], str]
    report: str
    shape_errors: List[str]


def run_fragmentation_ablation() -> FragmentationResult:
    """Run the A1 matrix."""
    cells: Dict[Tuple[str, str], str] = {}
    cycles: Dict[Tuple[str, str], int] = {}
    matrix = [
        ("base", "shuffled", paper_no_mtlb(96)),
        ("conventional", "none", paper_no_mtlb(96)),
        ("conventional", "aged", paper_no_mtlb(96)),
        ("conventional", "checkerboard", paper_no_mtlb(96)),
        ("shadow", "aged", paper_mtlb(96)),
        ("shadow", "checkerboard", paper_mtlb(96)),
    ]
    for mode, frag, config in matrix:
        config = replace(config, fragmentation=frag)
        trace = _scatter_trace(mode)
        try:
            result = System(config).run(trace)
        except OutOfMemory:
            cells[(mode, frag)] = "FAILS (no contiguous frames)"
            continue
        cells[(mode, frag)] = f"{result.total_cycles:,} cycles"
        cycles[(mode, frag)] = result.total_cycles
    rows = [
        [mode, frag, outcome] for (mode, frag), outcome in cells.items()
    ]
    report = render_table(
        ["mapping", "fragmentation", "outcome"],
        rows,
        title="A1: conventional vs shadow superpages under fragmentation",
    )
    errors: List[str] = []
    for frag in ("aged", "checkerboard"):
        if "FAILS" not in cells[("conventional", frag)]:
            errors.append(
                f"conventional superpages survived {frag} fragmentation"
            )
        if "FAILS" in cells[("shadow", frag)]:
            errors.append(f"shadow superpages failed under {frag}")
    if ("conventional", "none") in cycles:
        conv = cycles[("conventional", "none")]
        shad = cycles[("shadow", "aged")]
        base = cycles[("base", "shuffled")]
        if not conv <= shad <= base:
            errors.append(
                "expected conventional <= shadow <= base-pages runtime "
                f"(got {conv:,} / {shad:,} / {base:,})"
            )
    return FragmentationResult(cells=cells, report=report,
                               shape_errors=errors)


# ---------------------------------------------------------------------- #
# A2 — bucket vs buddy shadow allocation
# ---------------------------------------------------------------------- #


@dataclass
class AllocatorResult:
    """Outcome of A2."""

    bucket_failures: int
    buddy_failures: int
    report: str
    shape_errors: List[str]


def run_allocator_ablation(requests: int = 3000) -> AllocatorResult:
    """Drive both allocators with an identical skewed request stream.

    The stream over-asks for one popular size (as a real system, where
    most regions are data segments of similar sizes, would); the static
    bucket scheme runs that bucket dry while the buddy allocator splits
    larger regions to keep serving.
    """
    memory_map = PhysicalMemoryMap()
    rng = np.random.default_rng(3)
    sizes = np.array([16 << 10, 64 << 10, 256 << 10, 1 << 20], dtype=np.int64)
    weights = np.array([0.1, 0.7, 0.1, 0.1])
    stream = rng.choice(len(sizes), size=requests, p=weights)
    #: Regions stay live long enough that the popular size's demand
    #: exceeds its static bucket (256 x 64 KB in Figure 2).
    release_after = 1200

    failures = {"bucket": 0, "buddy": 0}
    for name, allocator in (
        ("bucket", BucketShadowAllocator(memory_map)),
        ("buddy", BuddyShadowAllocator(memory_map)),
    ):
        live = []
        for i, size_idx in enumerate(stream):
            size = int(sizes[size_idx])
            try:
                live.append(allocator.allocate(size))
            except ShadowSpaceExhausted:
                failures[name] += 1
            if len(live) > release_after:
                allocator.free(live.pop(0))
    rows = [
        ["bucket (paper Figure 2)", failures["bucket"]],
        ["buddy (paper future work)", failures["buddy"]],
    ]
    report = render_table(
        ["allocator", f"failed allocations out of {requests}"],
        rows,
        title="A2: shadow-region allocation under a skewed request mix",
    )
    errors: List[str] = []
    if failures["buddy"] > failures["bucket"]:
        errors.append("buddy allocator failed more often than buckets")
    return AllocatorResult(
        bucket_failures=failures["bucket"],
        buddy_failures=failures["buddy"],
        report=report,
        shape_errors=errors,
    )


# ---------------------------------------------------------------------- #
# A3 — the conservative shadow-check penalty
# ---------------------------------------------------------------------- #


@dataclass
class CheckPenaltyResult:
    """Outcome of A3."""

    deltas: Dict[str, float]
    report: str
    shape_errors: List[str]


@dataclass
class BitWritebackResult:
    """Outcome of A9."""

    deltas: Dict[str, float]
    report: str
    shape_errors: List[str]


def run_bit_writeback_ablation(
    context: Optional[BenchContext] = None,
    workloads: Tuple[str, ...] = ("em3d", "radix"),
) -> BitWritebackResult:
    """A9 — charge the MTLB's referenced/dirty-bit table write-backs.

    The paper's simulated MTLB did not write updated accounting bits
    back to its mapping table and predicted that "adding this
    functionality should have a negligible effect on performance"
    (Section 3.4).  This bench adds the functionality — one DRAM write
    the first time a cached translation's bit is set — and checks the
    prediction.
    """
    context = context or BenchContext()
    deltas: Dict[str, float] = {}
    rows = []
    for w in workloads:
        plain = context.run(w, paper_mtlb(96)).total_cycles
        charged_config = dataclasses_replace_mmc(paper_mtlb(96))
        charged = System(charged_config).run(context.trace(w)).total_cycles
        delta = charged / plain - 1.0
        deltas[w] = delta
        rows.append(
            [w, f"{plain:,}", f"{charged:,}", f"{100 * delta:+.3f}%"]
        )
    report = render_table(
        ["workload", "no bit write-back", "with write-back", "delta"],
        rows,
        title="A9: MTLB referenced/dirty-bit write-back cost",
    )
    errors: List[str] = []
    for w, delta in deltas.items():
        if abs(delta) > 0.02:
            errors.append(
                f"{w}: bit write-back changed runtime by "
                f"{100 * delta:.2f}% — the paper predicted negligible"
            )
    return BitWritebackResult(deltas=deltas, report=report,
                              shape_errors=errors)


def dataclasses_replace_mmc(config):
    """Return *config* with accounting-bit write-backs enabled."""
    return replace(config, mmc=replace(config.mmc, bit_writeback=True))


def run_check_penalty_ablation(
    context: Optional[BenchContext] = None,
    workloads: Tuple[str, ...] = ("em3d", "compress95"),
) -> CheckPenaltyResult:
    """Compare the 1-MMC-cycle check against the free-check design."""
    context = context or BenchContext()
    deltas: Dict[str, float] = {}
    rows = []
    for w in workloads:
        charged = context.run(w, paper_mtlb(96)).total_cycles
        free = System(
            with_check_penalty(paper_mtlb(96), 0)
        ).run(context.trace(w)).total_cycles
        delta = charged / free - 1.0
        deltas[w] = delta
        rows.append([w, f"{charged:,}", f"{free:,}", f"{100 * delta:.2f}%"])
    report = render_table(
        ["workload", "1-cycle check", "free check", "overhead"],
        rows,
        title="A3: cost of the paper's conservative shadow-check cycle",
    )
    errors: List[str] = []
    for w, delta in deltas.items():
        if delta < -0.002:
            errors.append(f"{w}: removing the check made things slower?")
        if delta > 0.10:
            errors.append(
                f"{w}: check penalty {100 * delta:.1f}% is implausibly large"
            )
    return CheckPenaltyResult(deltas=deltas, report=report,
                              shape_errors=errors)
