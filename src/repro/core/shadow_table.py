"""The MMC's flat shadow-to-physical mapping table (paper Section 2.2).

The table is a dense array with one 4-byte entry per base page of the shadow
window, indexed directly by shadow page offset — no tree walk, which is what
makes a hardware MTLB fill trivial: shift the shadow page index left by two
and add the table's physical base address.

Each entry packs a 24-bit real page frame number (enough to map 64 GB of
real memory) plus *valid*, *fault*, *referenced* and *modified* (dirty)
bits, with room left over, exactly as the paper describes.  The table lives
at a physical base address inside simulated DRAM, so every MTLB fill costs
the simulator a DRAM access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .addrspace import PhysicalMemoryMap

#: Entry field layout (bit positions within the 32-bit entry).
PFN_BITS = 24
PFN_MASK = (1 << PFN_BITS) - 1
VALID_BIT = 1 << 24
FAULT_BIT = 1 << 25
REF_BIT = 1 << 26
DIRTY_BIT = 1 << 27

#: Size of one table entry in bytes (drives MTLB fill address arithmetic).
ENTRY_BYTES = 4


@dataclass(frozen=True)
class ShadowEntry:
    """Decoded view of one shadow-table entry."""

    pfn: int
    valid: bool
    fault: bool
    referenced: bool
    dirty: bool

    @classmethod
    def decode(cls, raw: int) -> "ShadowEntry":
        """Decode a packed 32-bit entry."""
        return cls(
            pfn=raw & PFN_MASK,
            valid=bool(raw & VALID_BIT),
            fault=bool(raw & FAULT_BIT),
            referenced=bool(raw & REF_BIT),
            dirty=bool(raw & DIRTY_BIT),
        )

    def encode(self) -> int:
        """Pack the entry back into its 32-bit form."""
        raw = self.pfn & PFN_MASK
        if self.valid:
            raw |= VALID_BIT
        if self.fault:
            raw |= FAULT_BIT
        if self.referenced:
            raw |= REF_BIT
        if self.dirty:
            raw |= DIRTY_BIT
        return raw


class ShadowPageTable:
    """Dense shadow-page-index -> packed-entry array, plus its DRAM address.

    The OS writes mappings through :meth:`set_mapping` (modelling the
    uncached control-register writes of Section 2.4); the MTLB fill engine
    reads packed entries with :meth:`read_raw` and computes the DRAM
    address it would fetch with :meth:`entry_paddr`.
    """

    def __init__(
        self, memory_map: PhysicalMemoryMap, table_base: int = 0
    ) -> None:
        if not memory_map.is_dram(table_base):
            raise ValueError(
                f"table base {table_base:#010x} must lie in installed DRAM"
            )
        table_bytes = memory_map.shadow_pages * ENTRY_BYTES
        if not memory_map.is_dram(table_base + table_bytes - 1):
            raise ValueError("shadow page table does not fit in DRAM")
        self.memory_map = memory_map
        self.table_base = table_base
        self._entries = np.zeros(memory_map.shadow_pages, dtype=np.uint32)
        #: Indices whose stored entry has bad parity (fault injection
        #: corrupted it in "DRAM").  Hardware reads check this; any OS
        #: write to an entry rewrites it wholesale and restores parity.
        self._bad_parity: set = set()

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @property
    def size_bytes(self) -> int:
        """Total size of the table in bytes (0.1% overhead in the paper)."""
        return int(self._entries.size) * ENTRY_BYTES

    def entry_paddr(self, shadow_index: int) -> int:
        """Physical DRAM address of the entry for shadow page *shadow_index*.

        This is the address the MTLB fill hardware loads: the shadow page
        index left-shifted by two (4-byte entries) plus the table base.
        """
        return self.table_base + (shadow_index << 2)

    def index_for_paddr(self, shadow_paddr: int) -> int:
        """Return the table index for a shadow physical address."""
        return self.memory_map.shadow_page_index(shadow_paddr)

    # ------------------------------------------------------------------ #
    # OS-side mapping management
    # ------------------------------------------------------------------ #

    def set_mapping(
        self, shadow_index: int, pfn: int, valid: bool = True
    ) -> None:
        """Install (or replace) the mapping for one shadow base page."""
        if not 0 <= pfn <= PFN_MASK:
            raise ValueError(f"pfn {pfn:#x} does not fit in {PFN_BITS} bits")
        raw = pfn
        if valid:
            raw |= VALID_BIT
        self._entries[shadow_index] = raw
        self._bad_parity.discard(shadow_index)

    def clear_mapping(self, shadow_index: int) -> None:
        """Remove the mapping for one shadow base page entirely."""
        self._entries[shadow_index] = 0
        self._bad_parity.discard(shadow_index)

    def invalidate(self, shadow_index: int, fault: bool = False) -> None:
        """Mark a mapping not-present (e.g. its base page was paged out).

        The PFN and accounting bits are retained; the *fault* bit can be set
        when the MTLB signals an access to the invalid page (Section 4's
        imprecise-exception workaround).
        """
        raw = int(self._entries[shadow_index])
        raw &= ~VALID_BIT & 0xFFFFFFFF
        if fault:
            raw |= FAULT_BIT
        self._entries[shadow_index] = raw

    def revalidate(self, shadow_index: int, pfn: Optional[int] = None) -> None:
        """Mark a mapping present again after a page-in.

        The fault bit is cleared; if *pfn* is given the page may have been
        brought back into a different frame.
        """
        raw = int(self._entries[shadow_index])
        if pfn is not None:
            if not 0 <= pfn <= PFN_MASK:
                raise ValueError(f"pfn {pfn:#x} out of range")
            raw = (raw & ~PFN_MASK) | pfn
        raw |= VALID_BIT
        raw &= ~FAULT_BIT & 0xFFFFFFFF
        self._entries[shadow_index] = raw
        self._bad_parity.discard(shadow_index)

    # ------------------------------------------------------------------ #
    # MTLB-side access
    # ------------------------------------------------------------------ #

    def read_raw(self, shadow_index: int) -> int:
        """Return the packed entry (what the fill hardware loads)."""
        return int(self._entries[shadow_index])

    def entry(self, shadow_index: int) -> ShadowEntry:
        """Return the decoded entry for *shadow_index*."""
        return ShadowEntry.decode(int(self._entries[shadow_index]))

    def set_referenced(self, shadow_index: int) -> None:
        """Set the per-base-page referenced bit (on an MMC read fill)."""
        self._entries[shadow_index] |= np.uint32(REF_BIT)

    def set_dirty(self, shadow_index: int) -> None:
        """Set the per-base-page dirty bit (on an exclusive fill)."""
        self._entries[shadow_index] |= np.uint32(DIRTY_BIT | REF_BIT)

    def set_fault(self, shadow_index: int) -> None:
        """Record that an access to an invalid entry generated a fault."""
        self._entries[shadow_index] |= np.uint32(FAULT_BIT)

    def clear_referenced(self, shadow_index: int) -> None:
        """Clear the referenced bit (CLOCK hand sweep)."""
        self._entries[shadow_index] &= np.uint32(~REF_BIT & 0xFFFFFFFF)

    def clear_dirty(self, shadow_index: int) -> None:
        """Clear the dirty bit (after the OS cleans the base page)."""
        self._entries[shadow_index] &= np.uint32(~DIRTY_BIT & 0xFFFFFFFF)

    # ------------------------------------------------------------------ #
    # Fault injection / parity (DESIGN.md "Fault model and recovery")
    # ------------------------------------------------------------------ #

    def corrupt(self, shadow_index: int, bit: int) -> None:
        """Flip one bit of the stored entry and mark its parity bad.

        Models an in-DRAM bit flip.  Hardware that reads the entry
        (:meth:`parity_ok`) detects the damage; the kernel repairs it by
        rewriting the entry from its own records (:meth:`set_mapping`
        and friends restore parity as a side effect of the full write).
        """
        if not 0 <= bit < 32:
            raise ValueError(f"bit {bit} out of range 0..31")
        self._entries[shadow_index] ^= np.uint32(1 << bit)
        self._bad_parity.add(shadow_index)

    def parity_ok(self, shadow_index: int) -> bool:
        """True if the stored entry's parity is intact."""
        return shadow_index not in self._bad_parity

    def scrub(self, first_index: int, count: int) -> List[int]:
        """Scan a run of entries; return the indices with bad parity.

        This is the detection half of the kernel's scrub pass after a
        parity fault.  The damaged entries' *content* is not trusted —
        the caller must rewrite each returned index from authoritative
        records (which restores parity via the full-entry write).
        """
        return [
            idx
            for idx in range(first_index, first_index + count)
            if idx in self._bad_parity
        ]

    @property
    def corrupt_entries(self) -> int:
        """Number of entries currently carrying bad parity."""
        return len(self._bad_parity)

    # ------------------------------------------------------------------ #
    # Iteration helpers used by the pager
    # ------------------------------------------------------------------ #

    def entries_in_range(
        self, first_index: int, count: int
    ) -> Iterator[Tuple[int, ShadowEntry]]:
        """Yield (index, decoded entry) for a run of shadow base pages."""
        for idx in range(first_index, first_index + count):
            yield idx, ShadowEntry.decode(int(self._entries[idx]))
