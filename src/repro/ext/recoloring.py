"""No-copy page recoloring via shadow memory (paper Section 6).

The paper's closing section lists "no-copy page recoloring" (after
Bershad et al.) as a planned use of shadow memory: in a *physically
indexed* cache, pages whose frames share low physical-address bits — the
same cache *color* — conflict for the same sets.  The classical fix
copies one page into a frame of a different color; with shadow memory
the OS simply renames the page: it maps the virtual page to a shadow
address whose color bits differ and lets the MTLB point that shadow page
at the original frame.  No data moves.

This extension needs ``CacheConfig(physically_indexed=True)``; with the
paper's default virtually indexed cache, colors are a property of the
virtual layout and renaming physical pages cannot help (the module
refuses to run in that configuration rather than silently doing
nothing).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.addrspace import BASE_PAGE_SHIFT, BASE_PAGE_SIZE, SUPERPAGE_SIZES
from ..os_model.page_table import MappingError
from ..os_model.process import Process

#: Fixed per-recolor bookkeeping cost (CPU cycles): allocation search,
#: PTE rewrite, TLB/HPT shootdown instructions.
RECOLOR_OVERHEAD_CYCLES = 400


@dataclass
class RecolorStats:
    """Activity counters."""

    recolors: int = 0
    cycles: int = 0
    conflicts_found: int = 0


class Recolorer:
    """Shadow-memory page recoloring against one simulated machine."""

    def __init__(self, system) -> None:
        if system.mtlb is None:
            raise ValueError("recoloring needs an MTLB-equipped machine")
        if not getattr(system.cache, "physically_indexed", False):
            raise ValueError(
                "recoloring needs a physically indexed cache "
                "(CacheConfig(physically_indexed=True)); in a virtually "
                "indexed cache, renaming physical pages cannot change "
                "placement"
            )
        self.system = system
        cache = system.cache
        self.colors = cache.size_bytes // (
            cache.associativity * BASE_PAGE_SIZE
        )
        self.stats = RecolorStats()

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #

    def color_of_paddr(self, paddr: int) -> int:
        """The cache color of a physical (or shadow) page address."""
        return (paddr >> BASE_PAGE_SHIFT) % self.colors

    def color_of_page(self, process: Process, vaddr: int) -> int:
        """The *effective* color of a virtual page: the color of the
        address the cache indexes with (the shadow name, if any)."""
        mapping = process.page_table.lookup(vaddr)
        if mapping is None:
            raise MappingError(f"{vaddr:#010x} is not mapped")
        return self.color_of_paddr(mapping.translate(vaddr))

    def conflict_histogram(
        self, process: Process, page_vaddrs: List[int]
    ) -> Counter:
        """Count hot pages per color; >1 in a direct-mapped cache means
        the pages evict each other."""
        histogram = Counter(
            self.color_of_page(process, vaddr) for vaddr in page_vaddrs
        )
        self.stats.conflicts_found += sum(
            count - 1 for count in histogram.values() if count > 1
        )
        return histogram

    # ------------------------------------------------------------------ #
    # The mechanism
    # ------------------------------------------------------------------ #

    def recolor_page(
        self, process: Process, vaddr: int, target_color: int
    ) -> int:
        """Give one base page a new cache color without copying it.

        Flushes the page (by its old name), renames it to a shadow page
        of *target_color*, and points the MTLB at the original frame.
        Returns the simulated cycle cost.
        """
        system = self.system
        table = process.page_table
        mapping = table.lookup(vaddr)
        if mapping is None or mapping.is_superpage:
            raise MappingError(
                f"{vaddr:#010x} is not a base-page mapping"
            )
        if system.config.memory_map.is_shadow(mapping.pbase):
            raise MappingError(
                f"{vaddr:#010x} is already shadow-named; re-recoloring "
                "is not supported"
            )
        pfn = mapping.pbase >> BASE_PAGE_SHIFT
        page_vaddr = mapping.vbase

        cycles = RECOLOR_OVERHEAD_CYCLES
        flush_cycles, _dirty = system.flush_virtual_range(
            process, page_vaddr, BASE_PAGE_SIZE
        )
        cycles += flush_cycles
        system.shootdown_range(page_vaddr, BASE_PAGE_SIZE)
        system.kernel.hpt.purge_range(
            page_vaddr, BASE_PAGE_SIZE, space=process.pid
        )

        allocator = system.kernel.shadow_allocator
        region, page_index = allocator.allocate_colored(
            SUPERPAGE_SIZES[0], target_color, self.colors
        )
        first_index = system.config.memory_map.shadow_page_index(
            region.base
        )
        system.mmc.write_mapping(first_index + page_index, pfn, valid=True)
        cycles += system.uncached_mmc_write()

        table.unmap_range(page_vaddr, BASE_PAGE_SIZE)
        shadow_pfn = (region.base >> BASE_PAGE_SHIFT) + page_index
        new_mapping = table.map_base_page(page_vaddr, shadow_pfn)
        system.kernel.hpt.preload(
            page_vaddr >> BASE_PAGE_SHIFT, new_mapping, space=process.pid
        )
        self.stats.recolors += 1
        self.stats.cycles += cycles
        return cycles

    def auto_recolor(
        self, process: Process, page_vaddrs: List[int]
    ) -> Tuple[int, int]:
        """Spread a hot page set over distinct colors.

        Greedy: walk the pages; whenever one lands on a color already
        taken by an earlier hot page, rename it to the nearest free
        color.  Returns ``(pages_recolored, cycles)``.
        """
        taken: Dict[int, int] = {}
        moved = 0
        cycles = 0
        free_colors = [
            c for c in range(self.colors)
        ]
        for vaddr in page_vaddrs:
            color = self.color_of_page(process, vaddr)
            if color not in taken:
                taken[color] = vaddr
                if color in free_colors:
                    free_colors.remove(color)
                continue
            if not free_colors:
                break
            target = free_colors.pop(0)
            cycles += self.recolor_page(process, vaddr, target)
            taken[target] = vaddr
            moved += 1
        return moved, cycles
