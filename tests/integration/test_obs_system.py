"""Integration tests: the observability subsystem wired into System.

Covers the ISSUE acceptance criteria: identical RunStats with obs on and
off, valid Perfetto-loadable Chrome-trace output, exact phase-attribution
accounting, and the `repro metrics` dump/diff CLI round trip.
"""

import dataclasses
import json

import pytest

from repro.cli import main as bench_main
from repro.cli import repro_main
from repro.obs import ObsConfig
from repro.sim.config import paper_mtlb, paper_promotion
from repro.sim.system import System
from repro.workloads import build_workload

SCALE = 0.03


@pytest.fixture(scope="module")
def em3d_trace():
    return build_workload("em3d", scale=SCALE)


def _obs_config(base, **kwargs):
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("ring_capacity", 1 << 18)
    return dataclasses.replace(base, obs=ObsConfig(**kwargs))


class TestObsNeutrality:
    def test_runstats_identical_obs_on_and_off(self, em3d_trace):
        off = System(paper_mtlb(96)).run(em3d_trace)
        on = System(_obs_config(paper_mtlb(96))).run(em3d_trace)
        assert dataclasses.asdict(off.stats) == dataclasses.asdict(
            on.stats
        )

    def test_disabled_run_has_no_collector(self, em3d_trace):
        result = System(paper_mtlb(96)).run(em3d_trace)
        assert result.obs is None
        # ... but the metrics registry is always populated.
        assert result.metrics["tlb.misses"] == result.stats.tlb_misses
        assert result.metrics["cycles.total"] == result.stats.total_cycles

    def test_metrics_registry_agrees_with_stats(self, em3d_trace):
        result = System(paper_mtlb(96)).run(em3d_trace)
        stats = result.stats
        assert result.metrics["cache.misses"] == stats.cache_misses
        assert result.metrics["cache.writebacks"] == stats.cache_writebacks
        assert result.metrics["mtlb.lookups"] == stats.mtlb_lookups
        assert result.metrics["fills.count"] == stats.fills


class TestObsArtifacts:
    def test_events_and_histograms_populated(self, em3d_trace):
        result = System(_obs_config(paper_mtlb(96))).run(em3d_trace)
        obs = result.obs
        counts = obs.tracer.site_counts()
        assert counts.get("cache_miss", 0) > 0
        assert counts.get("mtlb_fill", 0) > 0
        assert counts.get("remap", 0) >= 1
        assert result.metrics["obs.events_emitted"] == obs.tracer.total
        _pages, latencies = obs.tracer.payloads_of("remap")
        assert all(latency > 0 for latency in latencies)

    def test_promotion_events_traced(self, em3d_trace):
        config = _obs_config(paper_promotion(96))
        result = System(config).run(em3d_trace)
        assert (
            result.metrics["promotion.promotions"]
            == len(result.obs.events("promotion"))
        )

    def test_chrome_trace_is_valid_trace_event_json(
        self, em3d_trace, tmp_path
    ):
        result = System(_obs_config(paper_mtlb(96))).run(em3d_trace)
        path = result.obs.write_chrome_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i", "C"}
        assert "C" in phases, "figure-3 counter track missing"
        for event in events:
            assert isinstance(e0 := event.get("name"), str) and e0
            assert isinstance(event.get("pid"), int)
            if event["ph"] != "M":
                assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_attribution_buckets_sum_to_total(self, em3d_trace):
        result = System(_obs_config(paper_mtlb(96))).run(em3d_trace)
        buckets = result.obs.buckets()
        assert sum(b.total for b in buckets) == result.stats.total_cycles
        csv = result.obs.attribution_csv()
        assert csv.startswith("start_cycle,end_cycle,")
        assert len(csv.strip().splitlines()) == len(buckets) + 1


class TestMetricsCli:
    def _dump(self, tmp_path, name, seed=1998):
        path = tmp_path / f"{name}.json"
        rc = repro_main(
            [
                "metrics", "dump", "--workload", "em3d",
                "--config", "mtlb", "--quick", "--seed", str(seed),
                "-o", str(path),
            ]
        )
        assert rc == 0
        return path

    def test_identical_runs_diff_clean(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a")
        b = self._dump(tmp_path, "b")
        rc = repro_main(
            ["metrics", "diff", str(a), str(b), "--threshold", "2%"]
        )
        assert rc == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_perturbation_trips_threshold(self, tmp_path, capsys):
        a = self._dump(tmp_path, "a")
        payload = json.loads(a.read_text())
        run = next(iter(payload["runs"].values()))
        run["metrics"]["total_cycles"] = int(
            run["metrics"]["total_cycles"] * 1.05
        )
        b = tmp_path / "b.json"
        b.write_text(json.dumps(payload))
        rc = repro_main(
            ["metrics", "diff", str(a), str(b), "--threshold", "2%"]
        )
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_rejects_non_snapshot(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        rc = repro_main(["metrics", "diff", str(bogus), str(bogus)])
        assert rc == 2

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            repro_main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_bench_banner_states_obs_and_faults(self, capsys):
        rc = bench_main(["list"])
        assert rc == 0
        # list doesn't run a banner; fig2 does.
        rc = bench_main(["fig2", "--quick"])
        out = capsys.readouterr().out
        assert "repro-bench" in out
        assert "faults: disabled" in out
        assert "obs: disabled" in out
