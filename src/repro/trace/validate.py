"""Trace validation: catch malformed workloads before simulation.

The simulator raises :class:`~repro.sim.system.SimulationError` on the
first reference to an unmapped page; this validator finds *all* problems
up front and reports them together — useful when authoring a new
workload model.  Checks:

* every referenced page is covered by an earlier MapRegion/HeapGrow;
* mapped regions never overlap;
* every Remap targets an already-mapped range (and none of it twice);
* events are page-aligned with positive lengths;
* user regions stay above the kernel-reserved virtual range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.addrspace import BASE_PAGE_SHIFT, BASE_PAGE_SIZE
from .events import HeapGrow, MapConventional, MapRegion, Phase, Remap
from .trace import Segment, Trace

#: Must match MiniKernel.USER_VBASE_MIN (kept literal to avoid an
#: os_model import from the trace layer).
USER_VBASE_MIN = 0x0100_0000

_MAPPING_EVENTS = (MapRegion, MapConventional, HeapGrow)


@dataclass
class ValidationReport:
    """All problems found in one trace."""

    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the trace is simulatable."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise ValueError listing every problem, if any."""
        if self.errors:
            raise ValueError(
                "invalid trace:\n  " + "\n  ".join(self.errors)
            )


def validate_trace(trace: Trace) -> ValidationReport:
    """Validate *trace*; returns the full problem list."""
    report = ValidationReport()
    mapped: List[Tuple[int, int]] = []  # (first_page, end_page)
    remapped: List[Tuple[int, int]] = []

    def covered(lo: int, hi: int) -> bool:
        return any(mlo <= lo and hi <= mhi for mlo, mhi in mapped)

    def page_covered(page: int) -> bool:
        return any(mlo <= page < mhi for mlo, mhi in mapped)

    for position, item in enumerate(trace.items):
        where = f"item {position}"
        if isinstance(item, Segment):
            if item.refs == 0:
                report.errors.append(f"{where}: empty segment")
                continue
            pages = np.unique(item.vaddrs >> BASE_PAGE_SHIFT)
            for page in pages.tolist():
                if not page_covered(page):
                    report.errors.append(
                        f"{where} ({item.label!r}): page "
                        f"{page << BASE_PAGE_SHIFT:#010x} referenced "
                        "before mapping"
                    )
        elif isinstance(item, Phase):
            continue
        elif isinstance(item, _MAPPING_EVENTS + (Remap,)):
            if item.vaddr % BASE_PAGE_SIZE or item.length % BASE_PAGE_SIZE:
                report.errors.append(
                    f"{where}: {type(item).__name__} at "
                    f"{item.vaddr:#010x}+{item.length:#x} not page aligned"
                )
                continue
            if item.length <= 0:
                report.errors.append(
                    f"{where}: {type(item).__name__} with non-positive "
                    "length"
                )
                continue
            lo = item.vaddr >> BASE_PAGE_SHIFT
            hi = (item.vaddr + item.length) >> BASE_PAGE_SHIFT
            if isinstance(item, Remap):
                if not covered(lo, hi):
                    report.errors.append(
                        f"{where}: remap of unmapped range "
                        f"{item.vaddr:#010x}+{item.length:#x}"
                    )
                if any(rlo < hi and lo < rhi for rlo, rhi in remapped):
                    report.errors.append(
                        f"{where}: range {item.vaddr:#010x} remapped twice"
                    )
                remapped.append((lo, hi))
            else:
                if item.vaddr < USER_VBASE_MIN:
                    report.errors.append(
                        f"{where}: mapping at {item.vaddr:#010x} below "
                        "the user virtual range"
                    )
                if any(mlo < hi and lo < mhi for mlo, mhi in mapped):
                    report.errors.append(
                        f"{where}: mapping {item.vaddr:#010x}+"
                        f"{item.length:#x} overlaps an earlier mapping"
                    )
                mapped.append((lo, hi))
        else:
            report.errors.append(
                f"{where}: unknown trace item {type(item).__name__}"
            )
    return report
