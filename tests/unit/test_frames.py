"""Unit and property tests for the physical frame allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.os_model.frames import FrameAllocator, OutOfMemory, frames_for_bytes


class TestBasics:
    def test_allocate_free_roundtrip(self):
        alloc = FrameAllocator(100, 10, fragmentation="none")
        pfn = alloc.allocate()
        assert 100 <= pfn < 110
        assert alloc.free_frames == 9
        alloc.free(pfn)
        assert alloc.free_frames == 10

    def test_exhaustion(self):
        alloc = FrameAllocator(0, 2, fragmentation="none")
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(OutOfMemory):
            alloc.allocate()

    def test_double_free_rejected(self):
        alloc = FrameAllocator(0, 4, fragmentation="none")
        pfn = alloc.allocate()
        alloc.free(pfn)
        with pytest.raises(ValueError):
            alloc.free(pfn)

    def test_foreign_frame_rejected(self):
        alloc = FrameAllocator(100, 4, fragmentation="none")
        with pytest.raises(ValueError):
            alloc.free(50)

    def test_allocate_many(self):
        alloc = FrameAllocator(0, 8, fragmentation="none")
        frames = alloc.allocate_many(5)
        assert len(set(frames)) == 5
        with pytest.raises(OutOfMemory):
            alloc.allocate_many(4)

    def test_shuffled_order_differs(self):
        sequential = FrameAllocator(0, 256, fragmentation="none")
        shuffled = FrameAllocator(0, 256, fragmentation="shuffled", seed=3)
        seq = [sequential.allocate() for _ in range(32)]
        shf = [shuffled.allocate() for _ in range(32)]
        assert seq != shf
        assert sorted(seq) == seq

    def test_frame_addr_helpers(self):
        assert FrameAllocator.frame_paddr(3) == 3 * 4096
        assert FrameAllocator.paddr_frame(0x5123) == 5
        assert frames_for_bytes(1) == 1
        assert frames_for_bytes(4096) == 1
        assert frames_for_bytes(4097) == 2


class TestContiguous:
    def test_success_when_unfragmented(self):
        alloc = FrameAllocator(0, 64, fragmentation="none")
        pfn = alloc.allocate_contiguous(16, align_frames=16)
        assert pfn % 16 == 0
        assert alloc.free_frames == 48

    def test_alignment_respected(self):
        alloc = FrameAllocator(4, 64, fragmentation="none")
        pfn = alloc.allocate_contiguous(4, align_frames=4)
        assert pfn % 4 == 0

    def test_checkerboard_defeats_contiguity(self):
        alloc = FrameAllocator(0, 64, fragmentation="checkerboard")
        with pytest.raises(OutOfMemory):
            alloc.allocate_contiguous(2)
        # Single frames still work.
        assert alloc.allocate() is not None

    def test_aged_defeats_large_runs(self):
        alloc = FrameAllocator(0, 4096, fragmentation="aged", seed=1)
        with pytest.raises(OutOfMemory):
            alloc.allocate_contiguous(64, align_frames=64)
        assert alloc.stats.contiguous_failures == 1

    def test_largest_free_run(self):
        alloc = FrameAllocator(0, 8, fragmentation="none")
        assert alloc.largest_free_run() == 8
        # Poke a hole in the middle.
        frames = alloc.allocate_many(8)
        for pfn in frames:
            if pfn != 3:
                alloc.free(pfn)
        assert alloc.largest_free_run() == 4

    def test_contiguous_marks_frames_used(self):
        alloc = FrameAllocator(0, 32, fragmentation="none")
        pfn = alloc.allocate_contiguous(8, align_frames=8)
        taken = set(range(pfn, pfn + 8))
        rest = {alloc.allocate() for _ in range(24)}
        assert taken.isdisjoint(rest)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.booleans(), min_size=1, max_size=200),
    st.sampled_from(["none", "shuffled", "aged", "checkerboard"]),
)
def test_conservation(ops, mode):
    """Alternating allocate/free never duplicates or loses frames."""
    alloc = FrameAllocator(10, 128, fragmentation=mode, seed=5)
    initial_free = alloc.free_frames
    live = []
    for do_alloc in ops:
        if do_alloc:
            try:
                live.append(alloc.allocate())
            except OutOfMemory:
                pass
        elif live:
            alloc.free(live.pop())
    assert len(set(live)) == len(live)
    assert alloc.free_frames + len(live) == initial_free
    for pfn in live:
        alloc.free(pfn)
    assert alloc.free_frames == initial_free
