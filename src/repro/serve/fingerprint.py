"""Canonical scenario fingerprints: the result store's content address.

A *fingerprint* names the simulation outcome of one scenario — one
``(workload spec, trace generation params, SystemConfig)`` point — such
that two scenarios share a fingerprint **iff** they are guaranteed to
produce bit-identical :class:`~repro.sim.stats.RunStats`.  That is the
whole contract of the content-addressed store: a hit may be served
without simulating, so the fingerprint must include everything that can
change a result and exclude everything that provably cannot.

Canonicalization rules (DESIGN.md §12):

* the :class:`~repro.sim.config.SystemConfig` tree is serialised with
  ``dataclasses.asdict`` and dumped as sorted-key JSON, so field order,
  nesting, and tuple-vs-list spelling never perturb the hash;
* **result-irrelevant knobs are stripped**: ``engine`` (the scalar and
  vector engines are bit-identical by construction, gated by the
  equivalence suite), ``sanitize`` (read-only invariant audits), and
  ``obs`` (event tracing keeps RunStats bit-identical).  A checkpoint
  written by a vector run must be a cache hit for a scalar rerun;
* **backend canonicalization keeps old addresses stable**: the default
  ``backend="mtlb"`` is stripped from the tree (every pre-registry
  config was implicitly an mtlb config, and those scenarios must keep
  their historical addresses without a ``fingerprint_version`` bump),
  and each backend's knob subtree (``coalesced``, ``victima``) is
  included only when that backend is selected — inert knobs provably
  cannot change a result;
* trace generation is pinned by ``(workload name, input scale, seed)``
  — exactly the trace cache's key — and multiprogrammed mixes
  additionally pin their scheduling shape ``(quantum_refs,
  switch_cost)``;
* a ``fingerprint_version`` field salts the hash so any future change
  to these rules invalidates every old address instead of aliasing it.

Per-run *budgets* (``max_references``) are deliberately excluded: a
budget can only abort a run, never change a completed result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional, Sequence, Tuple, Union

from ..sim.config import SystemConfig

#: Bump whenever canonicalization rules change; stale addresses must
#: miss, never alias.
FINGERPRINT_VERSION = 1

#: Top-level SystemConfig fields that provably never change RunStats.
RESULT_IRRELEVANT_FIELDS: Tuple[str, ...] = ("engine", "sanitize", "obs")


def canonical_config(config: SystemConfig) -> Dict[str, object]:
    """The config as a plain, result-relevant, JSON-ready tree."""
    tree = dataclasses.asdict(config)
    for name in RESULT_IRRELEVANT_FIELDS:
        tree.pop(name, None)
    # Backend stability rule: default-backend trees canonicalize
    # byte-identically to their pre-registry form, and only the selected
    # backend's knob subtree is hashed (the others are inert).
    backend = tree.get("backend", "mtlb")
    if backend == "mtlb":
        tree.pop("backend", None)
    if backend != "coalesced":
        tree.pop("coalesced", None)
    if backend != "victima":
        tree.pop("victima", None)
    return tree


def canonical_scenario(
    workload: Union[str, Sequence[str]],
    config: SystemConfig,
    scale: Union[float, Sequence[float]],
    seed: int,
    quantum_refs: Optional[int] = None,
    switch_cost: Optional[int] = None,
) -> Dict[str, object]:
    """The full canonical document a fingerprint hashes.

    *scale* is one float for a single workload, or one float per mix
    member.  Kept public (and stored alongside each entry) so a human
    can read *why* two scenarios did or did not collide.
    """
    is_mix = not isinstance(workload, str)
    doc: Dict[str, object] = {
        "fingerprint_version": FINGERPRINT_VERSION,
        "workload": list(workload) if is_mix else workload,
        "scale": list(scale) if is_mix else scale,
        "seed": seed,
        "config": canonical_config(config),
    }
    if is_mix:
        doc["quantum_refs"] = quantum_refs
        doc["switch_cost"] = switch_cost
    return doc


def scenario_fingerprint(
    workload: Union[str, Sequence[str]],
    config: SystemConfig,
    scale: Union[float, Sequence[float]],
    seed: int,
    quantum_refs: Optional[int] = None,
    switch_cost: Optional[int] = None,
) -> str:
    """SHA-256 hex address of one scenario's canonical document."""
    doc = canonical_scenario(
        workload, config, scale, seed,
        quantum_refs=quantum_refs, switch_cost=switch_cost,
    )
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
