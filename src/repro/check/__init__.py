"""repro.check: correctness tooling (DESIGN.md §11).

Three parts, all outside the simulation's costed paths:

* :mod:`~repro.check.sanitizers` — opt-in architectural invariant
  checkers over the TLB, cache, shadow page table, MTLB, and frame
  allocator, run at every segment boundary and kernel event
  (``SystemConfig.sanitize`` / ``repro-bench --sanitize``);
* :mod:`~repro.check.lockstep` — the scalar-vs-vector differential
  harness: per-boundary state digests, first-divergence report with
  component-level field detail (``repro check diff``);
* :mod:`~repro.check.shrink` — bisects a failing trace to a minimal
  window and emits a standalone repro script;
* :mod:`~repro.check.corpus` — seeded planted-bug corpus that validates
  all of the above end to end (``repro check corpus``).
"""

from .lockstep import DiffReport, Divergence, run_lockstep
from .sanitizers import SanitizerSuite
from .shrink import emit_repro, shrink_trace

__all__ = [
    "DiffReport",
    "Divergence",
    "SanitizerSuite",
    "emit_repro",
    "run_lockstep",
    "shrink_trace",
]
