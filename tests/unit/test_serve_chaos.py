"""Unit tests: the deterministic service-layer chaos harness.

The chaos plan's contract mirrors repro.faults: every injection is a
pure function of (config, consultation order), so the same seed always
produces the same failure schedule — the property the ``repro chaos
soak`` bit-identity check rests on.
"""

import errno

import pytest

from repro.serve.chaos import (
    CHAOS_SITES,
    ChaosConfig,
    ChaosDirective,
    ChaosPlan,
    corrupt_record_file,
    default_chaos,
)


def _consume(plan: ChaosPlan, dispatches: int = 20, commits: int = 20):
    """Consult every site the way the supervisor would."""
    directives = [plan.dispatch_directive() for _ in range(dispatches)]
    faults = [plan.commit_fault() for _ in range(commits)]
    corrupt = [plan.corrupts_commit() for _ in range(commits)]
    return directives, faults, corrupt


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        config = default_chaos(7)
        a = ChaosPlan(config)
        b = ChaosPlan(config)
        _consume(a)
        _consume(b)
        assert a.schedule == b.schedule
        assert a.injected == b.injected

    def test_different_seed_different_schedule(self):
        a = ChaosPlan(default_chaos(1))
        b = ChaosPlan(default_chaos(2))
        _consume(a, 50, 50)
        _consume(b, 50, 50)
        assert a.schedule != b.schedule

    def test_schedule_records_site_and_consultation(self):
        plan = ChaosPlan(ChaosConfig(triggers=(("worker_kill", 3),)))
        for _ in range(5):
            plan.dispatch_directive()
        assert plan.schedule == [("worker_kill", 3)]

    def test_zero_rate_plan_is_inert(self):
        plan = ChaosPlan(ChaosConfig())
        directives, faults, corrupt = _consume(plan)
        assert not ChaosConfig().enabled
        assert all(not d.active for d in directives)
        assert all(f is None for f in faults)
        assert not any(corrupt)
        assert plan.total_injected == 0


class TestTriggers:
    """Each site must fire exactly at its configured consultation."""

    def test_worker_kill(self):
        plan = ChaosPlan(ChaosConfig(triggers=(("worker_kill", 2),)))
        directives = [plan.dispatch_directive() for _ in range(4)]
        assert [d.kill for d in directives] == [
            False, True, False, False,
        ]

    def test_worker_stall_carries_duration(self):
        plan = ChaosPlan(
            ChaosConfig(
                triggers=(("worker_stall", 1),), stall_seconds=123.0
            )
        )
        first = plan.dispatch_directive()
        second = plan.dispatch_directive()
        assert first.stall_seconds == 123.0
        assert second.stall_seconds is None

    def test_slow_shard_carries_latency(self):
        plan = ChaosPlan(
            ChaosConfig(
                triggers=(("slow_shard", 2),), slow_seconds=0.01
            )
        )
        directives = [plan.dispatch_directive() for _ in range(3)]
        assert [d.slow_seconds for d in directives] == [
            None, 0.01, None,
        ]

    def test_store_enospc(self):
        plan = ChaosPlan(ChaosConfig(triggers=(("store_enospc", 1),)))
        fault = plan.commit_fault()
        assert isinstance(fault, OSError)
        assert fault.errno == errno.ENOSPC
        assert plan.commit_fault() is None

    def test_store_eio(self):
        plan = ChaosPlan(ChaosConfig(triggers=(("store_eio", 1),)))
        fault = plan.commit_fault()
        assert isinstance(fault, OSError)
        assert fault.errno == errno.EIO

    def test_store_corrupt(self):
        plan = ChaosPlan(ChaosConfig(triggers=(("store_corrupt", 2),)))
        assert [plan.corrupts_commit() for _ in range(3)] == [
            False, True, False,
        ]

    def test_injected_counts_per_site(self):
        plan = ChaosPlan(
            ChaosConfig(
                triggers=(
                    ("worker_kill", 1),
                    ("worker_kill", 2),
                    ("store_eio", 1),
                )
            )
        )
        _consume(plan, 3, 3)
        assert plan.injected["worker_kill"] == 2
        assert plan.injected["store_eio"] == 1
        assert plan.total_injected == 3


class TestConfigValidation:
    def test_rate_out_of_range(self):
        with pytest.raises(ValueError):
            ChaosConfig(worker_kill_rate=1.5)

    def test_unknown_trigger_site(self):
        with pytest.raises(ValueError):
            ChaosConfig(triggers=(("warp_core_breach", 1),))

    def test_nonpositive_stall(self):
        with pytest.raises(ValueError):
            ChaosConfig(stall_seconds=0.0)

    def test_default_chaos_exercises_every_site(self):
        config = default_chaos(0)
        assert config.enabled
        for site in CHAOS_SITES:
            assert config.rate_of(site) > 0.0, site

    def test_directive_active_flag(self):
        assert not ChaosDirective().active
        assert ChaosDirective(kill=True).active
        assert ChaosDirective(stall_seconds=1.0).active
        assert ChaosDirective(slow_seconds=0.1).active


class TestCorruptRecordFile:
    def test_flips_one_byte_in_place(self, tmp_path):
        path = tmp_path / "record.json"
        original = b'{"stats": {"total_cycles": 12345}}'
        path.write_bytes(original)
        assert corrupt_record_file(path)
        mutated = path.read_bytes()
        assert mutated != original
        assert len(mutated) == len(original)
        assert sum(a != b for a, b in zip(mutated, original)) == 1

    def test_missing_file_is_a_noop(self, tmp_path):
        assert not corrupt_record_file(tmp_path / "absent.json")

    def test_empty_file_is_a_noop(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        assert not corrupt_record_file(path)
