"""Unit tests for the page-gather extension."""

import dataclasses

import numpy as np
import pytest

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.ext.gather import GatherMapper
from repro.os_model.page_table import MappingError
from repro.sim.config import CacheConfig, paper_mtlb, paper_no_mtlb
from repro.sim.system import System

TABLE = 0x1000_0000
ALIAS = 0x7000_0000


@pytest.fixture
def machine():
    config = dataclasses.replace(
        paper_mtlb(96), cache=CacheConfig(physically_indexed=True)
    )
    system = System(config)
    process = system.kernel.create_process("gather")
    system.kernel.sys_map(process, TABLE, 4 << 20)
    return system, process


def scattered_sources(count=4, stride_pages=37):
    return [TABLE + i * stride_pages * BASE_PAGE_SIZE for i in range(count)]


class TestGatherSetup:
    def test_requires_physical_indexing(self, mtlb_system):
        with pytest.raises(ValueError):
            GatherMapper(mtlb_system)

    def test_requires_mtlb(self):
        system = System(
            dataclasses.replace(
                paper_no_mtlb(96),
                cache=CacheConfig(physically_indexed=True),
            )
        )
        with pytest.raises(ValueError):
            GatherMapper(system)

    def test_alias_superpage_created(self, machine):
        system, process = machine
        mapper = GatherMapper(system)
        cycles = mapper.gather(process, ALIAS, scattered_sources())
        assert cycles > 0
        mapping = process.page_table.lookup(ALIAS)
        assert mapping.is_superpage and mapping.size == 16 << 10
        assert system.config.memory_map.is_shadow(mapping.pbase)

    def test_sources_stay_mapped(self, machine):
        system, process = machine
        GatherMapper(system).gather(process, ALIAS, scattered_sources())
        for vaddr in scattered_sources():
            assert process.page_table.lookup(vaddr) is not None

    def test_non_tiling_count_rejected(self, machine):
        system, process = machine
        with pytest.raises(ValueError):
            GatherMapper(system).gather(
                process, ALIAS, scattered_sources(count=3)
            )

    def test_unmapped_source_rejected(self, machine):
        system, process = machine
        with pytest.raises(MappingError):
            GatherMapper(system).gather(
                process, ALIAS, [0x6000_0000] * 4
            )

    def test_misaligned_source_rejected(self, machine):
        system, process = machine
        with pytest.raises(ValueError):
            GatherMapper(system).gather(
                process, ALIAS, [TABLE + 8, TABLE, TABLE, TABLE]
            )


class TestAliasCoherence:
    def test_alias_and_source_reach_same_frame(self, machine):
        system, process = machine
        sources = scattered_sources()
        GatherMapper(system).gather(process, ALIAS, sources)
        for i, source in enumerate(sources):
            alias = ALIAS + i * BASE_PAGE_SIZE
            source_real = system.mmc.resolve(
                process.page_table.translate(source)
            )
            alias_real = system.mmc.resolve(
                process.page_table.translate(alias)
            )
            assert source_real == alias_real

    def test_data_visible_through_both_names(self, machine):
        system, process = machine
        sources = scattered_sources()
        GatherMapper(system).gather(process, ALIAS, sources)
        system.store_word(process, sources[2] + 64, 0xFACE)
        assert (
            system.load_word(process, ALIAS + 2 * BASE_PAGE_SIZE + 64)
            == 0xFACE
        )
        system.store_word(process, ALIAS + 128, 0xBEEF)
        assert system.load_word(process, sources[0] + 128) == 0xBEEF

    def test_cache_coherent_across_names(self, machine):
        """Physically indexed + tagged: one frame, one cache line, no
        matter which virtual name warmed it."""
        system, process = machine
        sources = scattered_sources()
        GatherMapper(system).gather(process, ALIAS, sources)
        system.touch(process, sources[1] + 32)
        alias_line = ALIAS + BASE_PAGE_SIZE + 32
        paddr = system.mmc.resolve(
            process.page_table.translate(alias_line)
        )
        assert system.cache.probe(alias_line, paddr)

    def test_one_tlb_entry_covers_hot_set(self, machine):
        system, process = machine
        big_table = 0x3000_0000
        system.kernel.sys_map(process, big_table, 16 << 20)
        sources = [
            big_table + i * 13 * BASE_PAGE_SIZE for i in range(256)
        ]
        GatherMapper(system).gather(process, ALIAS, sources)
        rng = np.random.default_rng(4)
        system.tlb.flush_all()
        before = system.tlb.stats.misses
        for _ in range(2000):
            page = int(rng.integers(0, 256))
            system.touch(process, ALIAS + page * BASE_PAGE_SIZE)
        misses = system.tlb.stats.misses - before
        assert misses <= 2  # the single superpage entry (+ epsilon)
