"""Unit tests for trace containers, events, and serialisation."""

import numpy as np
import pytest

from repro.trace.events import HeapGrow, MapRegion, Phase, Remap
from repro.trace.io import load_trace, save_trace
from repro.trace.trace import Segment, Trace, make_segment


class TestSegment:
    def test_make_segment_defaults(self):
        seg = make_segment("s", [0x1000, 0x2000], gap=3)
        assert seg.refs == 2
        assert seg.instructions == 2 + 6
        assert seg.stores == 0

    def test_write_mask(self):
        seg = make_segment("s", [0, 8, 16], write_mask=[True, False, True])
        assert seg.stores == 2
        assert list(seg.ops) == [1, 0, 1]

    def test_array_gap(self):
        seg = make_segment("s", [0, 8], gap=np.array([1, 5]))
        assert seg.instructions == 2 + 6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Segment(
                "s",
                np.zeros(2, dtype=np.uint8),
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=np.int32),
            )

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            make_segment("s", [-8])
        with pytest.raises(ValueError):
            make_segment("s", [8], gap=np.array([-1]))


class TestTrace:
    def test_totals(self):
        trace = Trace("t")
        trace.add(MapRegion(0x1000, 4096))
        trace.add(make_segment("a", [0x1000] * 10, gap=2))
        trace.add(Phase("p"))
        trace.add(make_segment("b", [0x2000] * 5, gap=2))
        assert trace.total_refs == 15
        assert len(list(trace.segments())) == 2
        assert len(list(trace.events())) == 2

    def test_footprint(self):
        trace = Trace("t")
        trace.add(make_segment("a", [0x1000, 0x1008, 0x5000]))
        assert trace.footprint_bytes() == 2 * 4096


class TestTraceIo:
    def test_roundtrip(self, tmp_path):
        trace = Trace("roundtrip", text_base=0x111000, text_size=8192)
        trace.add(MapRegion(0x1000, 8192, label="m"))
        trace.add(Remap(0x1000, 8192))
        trace.add(HeapGrow(0x2000, 4096, remap=False))
        trace.add(Phase("go"))
        trace.add(
            make_segment(
                "seg", [0x1000, 0x1008], write_mask=[True, False], gap=7,
                text_pages=3,
            )
        )
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "roundtrip"
        assert loaded.text_base == 0x111000 and loaded.text_size == 8192
        events = list(loaded.events())
        assert events[0] == MapRegion(0x1000, 8192, label="m")
        assert events[1] == Remap(0x1000, 8192)
        assert events[2] == HeapGrow(0x2000, 4096, remap=False)
        assert events[3] == Phase("go")
        seg = next(loaded.segments())
        assert seg.label == "seg" and seg.text_pages == 3
        assert list(seg.vaddrs) == [0x1000, 0x1008]
        assert list(seg.ops) == [1, 0]
        assert list(seg.gaps) == [7, 7]

    def test_version_check(self, tmp_path):
        import json
        trace = Trace("v")
        trace.add(make_segment("s", [0]))
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        # Corrupt the version.
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"].tobytes()))
        meta["version"] = 999
        data["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace(path)
