"""Page-granularity gather: alias scattered pages into one superpage.

The paper closes by situating this work in the Impulse project, whose
programme was exactly this: use the memory controller's extra translation
level to make sparse data *look* dense.  This module implements the
page-granularity version: given a set of hot base pages scattered across
a large structure (an index's upper levels, a hash directory, a working
subset of a huge table), the OS builds a **dense shadow superpage whose
base pages alias the originals** — no copy, one CPU-TLB entry for the
whole hot set, and the original mappings stay valid.

Aliasing two virtual names to one frame is only coherent when the cache
is physically indexed (physically tagged it already is); with the
paper's virtually indexed cache the same frame could live in two sets at
once, so :class:`GatherMapper` refuses that configuration, exactly like
the recoloring extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.addrspace import BASE_PAGE_SHIFT, BASE_PAGE_SIZE
from ..core.remap import plan_superpages
from ..os_model.page_table import MappingError
from ..os_model.process import Process

#: Fixed bookkeeping cost per gathered page (CPU cycles).
GATHER_PAGE_OVERHEAD = 60
#: Fixed setup cost per gather call.
GATHER_CALL_OVERHEAD = 500


@dataclass
class GatherRegion:
    """One live gather: the alias range and its source pages."""

    process: Process
    alias_vbase: int
    source_vaddrs: List[int]

    @property
    def bytes(self) -> int:
        return len(self.source_vaddrs) * BASE_PAGE_SIZE


class GatherMapper:
    """Builds gather superpages on one simulated machine."""

    def __init__(self, system) -> None:
        if system.mtlb is None:
            raise ValueError("gathering needs an MTLB-equipped machine")
        if not getattr(system.cache, "physically_indexed", False):
            raise ValueError(
                "gathering creates physical aliases, which are only "
                "coherent in a physically indexed cache "
                "(CacheConfig(physically_indexed=True))"
            )
        self.system = system
        self.regions: List[GatherRegion] = []

    def gather(
        self,
        process: Process,
        alias_vbase: int,
        source_vaddrs: Sequence[int],
    ) -> int:
        """Alias *source_vaddrs* (page-aligned) densely at *alias_vbase*.

        The alias range must tile exactly into superpages (its length is
        ``len(source_vaddrs)`` base pages), so the page count must be a
        multiple of 4 and the base 16 KB-aligned at minimum.  Each source
        page must currently be base-mapped to a real frame.  Returns the
        simulated cycle cost.  The source mappings remain usable.
        """
        if not source_vaddrs:
            raise ValueError("nothing to gather")
        length = len(source_vaddrs) * BASE_PAGE_SIZE
        plans = plan_superpages(alias_vbase, length)
        covered = sum(plan.size for plan in plans)
        if covered != length:
            raise ValueError(
                f"alias range {alias_vbase:#010x}+{length:#x} does not "
                "tile exactly into superpages"
            )

        table = process.page_table
        pfns: List[int] = []
        for vaddr in source_vaddrs:
            if vaddr % BASE_PAGE_SIZE:
                raise ValueError(f"{vaddr:#010x} is not page aligned")
            mapping = table.lookup(vaddr)
            if mapping is None or mapping.is_superpage:
                raise MappingError(
                    f"source {vaddr:#010x} is not a base-page mapping"
                )
            if self.system.config.memory_map.is_shadow(mapping.pbase):
                raise MappingError(
                    f"source {vaddr:#010x} is already shadow-named"
                )
            pfns.append(mapping.pbase >> BASE_PAGE_SHIFT)

        system = self.system
        kernel = system.kernel
        cycles = GATHER_CALL_OVERHEAD
        page_cursor = 0
        for plan in plans:
            region = kernel.shadow_allocator.allocate(plan.size)
            first_index = system.config.memory_map.shadow_page_index(
                region.base
            )
            pages = plan.size >> BASE_PAGE_SHIFT
            for k in range(pages):
                system.mmc.write_mapping(
                    first_index + k, pfns[page_cursor], valid=True
                )
                cycles += system.uncached_mmc_write()
                cycles += GATHER_PAGE_OVERHEAD
                page_cursor += 1
            table.map_superpage(plan.vaddr, region.base, plan.size)
            # First miss on the alias installs the HPT entry lazily via
            # the segment walk; preload to spare the first trap.
            mapping = table.lookup(plan.vaddr)
            kernel.hpt.preload(
                plan.vaddr >> BASE_PAGE_SHIFT, mapping, space=process.pid
            )
        self.regions.append(
            GatherRegion(
                process=process,
                alias_vbase=alias_vbase,
                source_vaddrs=list(source_vaddrs),
            )
        )
        return cycles

    def alias_of(self, region: GatherRegion, source_index: int) -> int:
        """The alias virtual address of the region's n-th source page."""
        return region.alias_vbase + source_index * BASE_PAGE_SIZE
