"""compress95 (SPECint95) workload model.

LZW compression of a 1,000,000-character input run through two
compress/decompress cycles (the paper's reduced run length).  The working
set is dominated by the hash table and code table — about 440 KB combined,
probed "in a relatively random manner" — plus three ~1 MB buffers holding
the original, compressed and uncompressed data, which are streamed.

The instrumented program remaps four regions (paper Section 3.1):

* the hash table + code table + intervening structures: 557,056 bytes,
  **10 superpages**;
* the initial portion of the three buffers: 999,424 bytes each, which due
  to their differing alignments tile into **13, 7 and 13 superpages**.

The region base addresses below are chosen so our maximal-superpage
planner produces exactly those counts (asserted by the test suite).

Reference model, per input character: one word-granularity read of the
original buffer (sequential), one probe of the hash/code region (random,
25 % of probes insert and therefore store), and one word write of the
compressed buffer every 8 characters (modelled as a third interleaved
stream at word granularity).  Decompression reads the compressed buffer
sequentially, probes the code table randomly, and writes the uncompressed
buffer sequentially.

``scale`` multiplies the number of input characters; the table and buffer
footprints are the paper's fixed sizes.
"""

from __future__ import annotations

import numpy as np

from ..trace import synth
from ..trace.events import MapRegion, Phase, Remap
from ..trace.trace import Trace, make_segment
from .base import Workload, register

#: Paper-exact region sizes (bytes).
TABLES_BYTES = 557_056
BUFFER_BYTES = 999_424
INPUT_CHARS = 1_000_000
CYCLES = 2

#: Region bases.  tables/orig/uncomp sit 16 KB past a 256 KB boundary
#: (tiling to 10 and 13 superpages); comp is 256 KB aligned (7).
TABLES_BASE = 0x0200_4000
ORIG_BASE = 0x0300_4000
COMP_BASE = 0x0400_0000
UNCOMP_BASE = 0x0500_4000

#: Fraction of hash probes that insert (store).
INSERT_FRACTION = 0.25
#: Non-memory instructions between references (LZW inner loop work).
GAP = 3
#: Hash-probe temporal locality: common prefixes re-probe a hot subset of
#: the table's 136 pages.  These control the instantaneous TLB working
#: set (hot pages stay resident in a warm TLB; cold probes miss).
HOT_PAGES = 76
HOT_FRACTION = 0.78


@register
class Compress95(Workload):
    """The compress95 model; see the module docstring."""

    name = "compress95"
    description = (
        "LZW compress/decompress, ~440KB random-probed tables + 3 streamed "
        "~1MB buffers, 4 remapped regions (10/13/7/13 superpages)"
    )

    def build(self, scale: float = 1.0, seed: int = 1998) -> Trace:
        rng = self._rng(seed)
        n = self._scaled(INPUT_CHARS, scale, minimum=4096)
        trace = Trace(self.name, text_size=128 << 10)

        for base, length in (
            (TABLES_BASE, TABLES_BYTES),
            (ORIG_BASE, BUFFER_BYTES),
            (COMP_BASE, BUFFER_BYTES),
            (UNCOMP_BASE, BUFFER_BYTES),
        ):
            trace.add(MapRegion(base, self._page_round(length)))
            trace.add(Remap(base, self._page_round(length)))

        for cycle in range(CYCLES):
            trace.add(Phase(f"compress-{cycle}"))
            trace.add(self._compress_segment(rng, n, cycle))
            trace.add(Phase(f"decompress-{cycle}"))
            trace.add(self._decompress_segment(rng, n, cycle))
        return trace

    def _compress_segment(self, rng, n: int, cycle: int):
        """One compression pass over *n* input characters."""
        # Sequential word reads of the original data (one read per 8
        # characters' worth of bytes, repeated so streams stay aligned).
        idx = np.arange(n, dtype=np.int64)
        orig = ORIG_BASE + ((idx % BUFFER_BYTES) >> 3 << 3)
        probes = synth.hot_cold(
            rng, TABLES_BASE, TABLES_BYTES & ~0xFFF, n,
            hot_pages=HOT_PAGES, hot_fraction=HOT_FRACTION, hot_seed=17,
        )
        comp = COMP_BASE + ((idx // 8 * 8) % BUFFER_BYTES)
        vaddrs = synth.interleave(orig, probes, comp)
        writes = np.zeros(len(vaddrs), dtype=bool)
        # Probe stream occupies positions 1 mod 3: a quarter insert.
        probe_pos = np.arange(1, len(vaddrs), 3)
        insert = rng.random(len(probe_pos)) < INSERT_FRACTION
        writes[probe_pos[insert]] = True
        writes[2::3] = True  # compressed-output writes
        return make_segment(
            f"compress-{cycle}", vaddrs, write_mask=writes, gap=GAP,
            text_pages=12,
        )

    def _decompress_segment(self, rng, n: int, cycle: int):
        """One decompression pass producing *n* output characters."""
        idx = np.arange(n, dtype=np.int64)
        comp = COMP_BASE + ((idx // 8 * 8) % BUFFER_BYTES)
        probes = synth.hot_cold(
            rng, TABLES_BASE, TABLES_BYTES & ~0xFFF, n,
            hot_pages=HOT_PAGES, hot_fraction=HOT_FRACTION, hot_seed=17,
        )
        uncomp = UNCOMP_BASE + ((idx % BUFFER_BYTES) >> 3 << 3)
        vaddrs = synth.interleave(comp, probes, uncomp)
        writes = np.zeros(len(vaddrs), dtype=bool)
        writes[2::3] = True  # uncompressed-output writes
        return make_segment(
            f"decompress-{cycle}", vaddrs, write_mask=writes, gap=GAP,
            text_pages=12,
        )
