"""radix (SPLASH-2) workload model: a real radix sort's reference stream.

The paper runs the SPLASH-2 radix sort on 1,048,576 keys (default
arguments otherwise): radix 1024, so 31-bit keys sort in four passes.
Its primary structures — two key arrays plus rank/histogram space,
8,437,760 bytes in all — are dynamically allocated up front and remapped
with a single ``remap()`` into **14 superpages** before initialisation.

We execute the sort for real: per pass, the histogram phase reads every
key sequentially, then the permutation phase reads each key sequentially
and writes it to its counting-sort position in the destination array —
the scattered writes that give radix its notoriously poor TLB locality
(13.5 % of runtime in TLB misses even with a 256-entry TLB, per the
paper).  Key order evolves across passes exactly as a real stable
counting sort would, because we compute the permutation with a stable
argsort of the actual digit values.

``scale`` multiplies the key count (the paper's own input-size knob), so
the footprint scales with it; scale 1.0 is the paper's 1 M keys.
"""

from __future__ import annotations

import numpy as np

from ..core.addrspace import BASE_PAGE_SIZE
from ..trace import synth
from ..trace.events import MapRegion, Phase, Remap
from ..trace.trace import Trace, make_segment
from .base import Workload, register

#: Paper defaults.
KEYS = 1_048_576
RADIX_BITS = 10
KEY_BITS = 31
KEY_BYTES = 4

#: Heap base: 16 KB past a 4 KB-aligned boundary so the paper-size region
#: tiles into exactly 14 superpages (see tests/unit/test_workload_layout).
HEAP_BASE = 0x1000_4000

#: Total mapped dynamic space at scale 1.0 (paper: 8,437,760 bytes).
PAPER_REGION_BYTES = 8_437_760

#: Instruction gap between references (loop overhead of the sort kernel).
GAP = 5


@register
class Radix(Workload):
    """The SPLASH-2 radix sort model; see the module docstring."""

    name = "radix"
    description = (
        "SPLASH-2 radix sort, 1M 31-bit keys, 4 passes of radix 1024; "
        "8.4MB dynamic region remapped into 14 superpages"
    )

    def build(self, scale: float = 1.0, seed: int = 1998) -> Trace:
        rng = self._rng(seed)
        n = self._scaled(KEYS, scale, minimum=4096)
        trace = Trace(self.name, text_size=64 << 10)

        # Layout of the dynamic region: from[n], to[n], rank/histogram
        # space, padded so scale 1.0 reproduces the paper's byte count.
        from_base = HEAP_BASE
        to_base = from_base + n * KEY_BYTES
        aux_base = to_base + n * KEY_BYTES
        region_bytes = self._page_round(
            2 * n * KEY_BYTES + (PAPER_REGION_BYTES - 2 * KEYS * KEY_BYTES)
        )
        trace.add(MapRegion(HEAP_BASE, region_bytes))
        trace.add(Remap(HEAP_BASE, region_bytes))

        keys = rng.integers(0, 1 << KEY_BITS, size=n, dtype=np.int64)
        passes = -(-KEY_BITS // RADIX_BITS)  # ceil: 4 passes for 31 bits
        src_base, dst_base = from_base, to_base
        for p in range(passes):
            trace.add(Phase(f"pass-{p}"))
            digit = (keys >> (RADIX_BITS * p)) & ((1 << RADIX_BITS) - 1)
            order = np.argsort(digit, kind="stable")
            positions = np.empty(n, dtype=np.int64)
            positions[order] = np.arange(n, dtype=np.int64)

            # Histogram phase: sequential read of every key, with the
            # density-count update folded into the instruction gap (the
            # 4 KB count array is permanently cache- and TLB-resident).
            hist = src_base + np.arange(n, dtype=np.int64) * KEY_BYTES
            trace.add(
                make_segment(f"hist-{p}", hist, gap=GAP + 1, text_pages=4)
            )

            # Permutation phase: sequential source reads interleaved with
            # scattered destination writes (the TLB killer), plus a rank
            # lookup read in the aux area per key.
            src = src_base + np.arange(n, dtype=np.int64) * KEY_BYTES
            rank = aux_base + (digit.astype(np.int64) * 8) % (
                BASE_PAGE_SIZE * 2
            )
            dst = dst_base + positions * KEY_BYTES
            vaddrs = synth.interleave(src, rank, dst)
            writes = np.zeros(len(vaddrs), dtype=bool)
            writes[2::3] = True
            trace.add(
                make_segment(
                    f"permute-{p}", vaddrs, write_mask=writes, gap=GAP,
                    text_pages=4,
                )
            )

            keys = keys[order]
            src_base, dst_base = dst_base, src_base
        return trace
