"""Workload model infrastructure.

A workload model is the executable stand-in for one of the paper's
benchmark programs: it lays out the program's address space (segments and
heap), runs (a model of) the program's algorithm to produce the data
reference stream, and interleaves the kernel events — ``MapRegion``,
``Remap``, heap growth — at the points the instrumented binary would
perform them.

``scale`` shrinks the *input*, not the mechanism: a scale-0.25 radix sorts
a quarter of the keys, with proportionally smaller arrays.  Scale 1.0 is
the paper's input size.

The heap path reuses the real :class:`~repro.os_model.syscalls.SbrkAllocator`
logic against a recording VM, so the addresses a workload computes at
generation time are exactly the addresses the kernel produces at
simulation time (a property the test suite checks).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Tuple, Type

import numpy as np

from ..core.addrspace import BASE_PAGE_SIZE, align_up
from ..os_model.process import Process
from ..os_model.syscalls import SbrkAllocator
from ..os_model.vm import RemapReport
from ..trace.events import MapRegion, Remap
from ..trace.trace import Trace


class _RecordingVm:
    """A VM stand-in that records map/remap calls as trace events."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def map_region(
        self, process: Process, vstart: int, length: int, writable: bool = True
    ) -> int:
        self.trace.add(MapRegion(vstart, length))
        return 0

    def remap_to_shadow(
        self, process: Process, vstart: int, length: int
    ) -> RemapReport:
        self.trace.add(Remap(vstart, length))
        return RemapReport()


class HeapBuilder:
    """Generation-time heap that emits the same events the kernel replays.

    Wraps the real modified-sbrk allocator around a recording VM: calls to
    :meth:`alloc` return the exact virtual addresses the simulated kernel
    will hand out, and pool growth appends ``MapRegion`` (+ ``Remap``)
    events to the trace at the right position in the reference stream.
    """

    def __init__(
        self,
        trace: Trace,
        heap_base: int = 0x1000_0000,
        initial_prealloc: int = 8 << 20,
        increment: int = 2 << 20,
        use_superpages: bool = True,
    ) -> None:
        self.process = Process(pid=0, name=trace.name, heap_base=heap_base,
                               brk=heap_base)
        self._sbrk = SbrkAllocator(
            vm=_RecordingVm(trace),
            process=self.process,
            initial_prealloc=initial_prealloc,
            increment=increment,
            use_superpages=use_superpages,
        )

    def alloc(self, nbytes: int) -> int:
        """Allocate *nbytes* from the heap; returns the virtual address."""
        return self._sbrk.sbrk(nbytes)

    def alloc_array(self, count: int, item_bytes: int) -> int:
        """Allocate an array; returns its base address."""
        return self.alloc(count * item_bytes)

    def set_increment(self, increment: int) -> None:
        """Change the pool growth size (vortex drops 8 MB -> 2 MB)."""
        self._sbrk.set_increment(increment)

    @property
    def brk(self) -> int:
        """Current program break."""
        return self.process.brk

    @property
    def growths(self) -> int:
        """Number of pool growth events emitted so far."""
        return self._sbrk.stats.growths


class Workload(abc.ABC):
    """Base class for the five benchmark-program models."""

    #: Registry key ("compress95", "vortex", "radix", "em3d", "gcc").
    name: str = ""
    #: One-line description for reports.
    description: str = ""

    @abc.abstractmethod
    def build(self, scale: float = 1.0, seed: int = 1998) -> Trace:
        """Generate the trace for one run at the given input scale."""

    def stream(
        self, scale: float = 1.0, seed: int = 1998
    ) -> Tuple[Trace, Iterator]:
        """Generate incrementally: an empty shell plus an item iterator.

        The shell carries the trace header (name, text segment); the
        iterator yields the kernel events and reference segments in
        order.  The trace store tees the iterator to disk while a
        simulator consumes it, so simulation of early segments overlaps
        generation of later ones.

        The default adapter builds eagerly and then iterates — models
        with phase structure override this to yield each phase as it is
        generated (see the synthetic family).  Overrides must produce
        **bit-identical** items to :meth:`build`; the cache treats the
        two as interchangeable producers of the same content address.
        """
        trace = self.build(scale=scale, seed=seed)
        shell = Trace(
            trace.name,
            text_base=trace.text_base,
            text_size=trace.text_size,
        )
        return shell, iter(trace.items)

    @staticmethod
    def _scaled(value: int, scale: float, minimum: int = 1) -> int:
        """Scale an input-size parameter, keeping it sane."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return max(minimum, int(round(value * scale)))

    @staticmethod
    def _page_round(nbytes: int) -> int:
        return align_up(nbytes, BASE_PAGE_SIZE)

    @staticmethod
    def _rng(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)


_REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise ValueError("workload class must define a name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def workload_names() -> List[str]:
    """All registered workload names, in registration order."""
    return list(_REGISTRY)


def _workload_class(name: str) -> Type[Workload]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def build_workload(name: str, scale: float = 1.0, seed: int = 1998) -> Trace:
    """Build the named workload's trace at the given scale."""
    return _workload_class(name)().build(scale=scale, seed=seed)


def stream_workload(
    name: str, scale: float = 1.0, seed: int = 1998
) -> Tuple[Trace, Iterator]:
    """Stream the named workload: (header shell, item iterator)."""
    return _workload_class(name)().stream(scale=scale, seed=seed)
