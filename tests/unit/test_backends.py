"""Unit tests for the TranslationBackend protocol (DESIGN.md §16).

Covers the registry, config-time validation, fingerprint stability of
the new ``backend``/``coalesced``/``victima`` fields, the wire codec's
``backend`` handling, the ``repro.api`` deprecation shim, and the
``peek_lru`` cache primitive the victima pool relies on.
"""

import dataclasses
import json
import warnings
from pathlib import Path

import pytest

from repro.api import ScenarioSpec, spec_from_doc, spec_to_doc
from repro.core.backends import (
    DEFAULT_BACKEND,
    TranslationBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.core.backends.coalesced import CoalescedBackend
from repro.core.backends.mtlb import MtlbBackend
from repro.core.backends.victima import VictimaBackend
from repro.errors import SpecValidationError, UnknownBackend
from repro.mem.cache import SetAssociativeCache
from repro.serve.fingerprint import (
    canonical_config,
    scenario_fingerprint,
)
from repro.sim.config import (
    MtlbConfig,
    SystemConfig,
    paper_base,
    paper_mtlb,
    paper_no_mtlb,
    paper_promotion,
)

BASELINE = Path(__file__).parent.parent / "data" / "backend_baseline.json"


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_builtins_registered(self):
        assert list_backends() == ["coalesced", "mtlb", "victima"]

    def test_get_backend_returns_classes(self):
        assert get_backend("mtlb") is MtlbBackend
        assert get_backend("coalesced") is CoalescedBackend
        assert get_backend("victima") is VictimaBackend

    def test_default_backend_is_mtlb(self):
        assert DEFAULT_BACKEND == "mtlb"
        assert SystemConfig().backend == "mtlb"

    def test_unknown_backend_typed_error_lists_registry(self):
        with pytest.raises(UnknownBackend) as exc_info:
            get_backend("nonesuch")
        message = str(exc_info.value)
        assert "nonesuch" in message
        assert "coalesced, mtlb, victima" in message
        # UnknownBackend is a SpecValidationError so the daemon's
        # existing 400 mapping catches it with no extra wiring.
        assert isinstance(exc_info.value, SpecValidationError)

    def test_unhashable_name_is_unknown_not_typeerror(self):
        with pytest.raises(UnknownBackend):
            get_backend(["mtlb"])

    def test_reregister_same_class_is_noop(self):
        assert register_backend(MtlbBackend) is MtlbBackend
        assert list_backends() == ["coalesced", "mtlb", "victima"]

    def test_name_theft_rejected(self):
        class Impostor(TranslationBackend):
            name = "mtlb"

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Impostor)

    def test_unnamed_backend_rejected(self):
        class Nameless(TranslationBackend):
            pass

        with pytest.raises(ValueError):
            register_backend(Nameless)


# ---------------------------------------------------------------------- #
# Config-time validation
# ---------------------------------------------------------------------- #


class TestConfigValidation:
    def test_unknown_backend_rejected_at_config_time(self):
        with pytest.raises(UnknownBackend):
            SystemConfig(backend="nonesuch")

    def test_backend_label_suffix(self):
        base = paper_base()
        assert "@" not in base.label
        coal = dataclasses.replace(base, backend="coalesced")
        assert coal.label == base.label + "@coalesced"
        vict = dataclasses.replace(base, backend="victima")
        assert vict.label == base.label + "@victima"

    @pytest.mark.parametrize("backend", ["coalesced", "victima"])
    def test_backend_vetoes_mtlb_machinery(self, backend):
        with pytest.raises(ValueError, match="owns the translation path"):
            dataclasses.replace(paper_mtlb(96), backend=backend)

    def test_backend_vetoes_promotion(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                paper_promotion(), backend="coalesced"
            )

    def test_coalesced_span_must_be_page_size(self):
        from repro.core.backends.coalesced import CoalescedConfig

        with pytest.raises(ValueError, match="max_span_bytes"):
            dataclasses.replace(
                paper_base(),
                backend="coalesced",
                coalesced=CoalescedConfig(max_span_bytes=48 << 10),
            )

    def test_victima_geometry_checked(self):
        from repro.core.backends.victima import VictimaConfig

        with pytest.raises(ValueError):
            dataclasses.replace(
                paper_base(),
                backend="victima",
                victima=VictimaConfig(size_bytes=3000),
            )

    def test_mtlb_validation_unchanged(self):
        # The historical mtlb checks moved into MtlbBackend.validate
        # but still fire through SystemConfig.__post_init__.
        with pytest.raises(ValueError, match="requires an enabled MTLB"):
            SystemConfig(
                mtlb=MtlbConfig(enabled=False),
                use_superpages=True,
            )


# ---------------------------------------------------------------------- #
# Fingerprint stability
# ---------------------------------------------------------------------- #


class TestFingerprints:
    def test_default_backend_fields_stripped(self):
        tree = canonical_config(paper_base())
        assert "backend" not in tree
        assert "coalesced" not in tree
        assert "victima" not in tree

    def test_active_backend_fields_kept(self):
        coal = canonical_config(
            dataclasses.replace(paper_base(), backend="coalesced")
        )
        assert coal["backend"] == "coalesced"
        assert "coalesced" in coal
        assert "victima" not in coal
        vict = canonical_config(
            dataclasses.replace(paper_base(), backend="victima")
        )
        assert vict["backend"] == "victima"
        assert "victima" in vict
        assert "coalesced" not in vict

    def test_pinned_fingerprints_regression(self):
        """Every pre-refactor store address must still resolve: adding
        the backend fields must not move any existing fingerprint."""
        baseline = json.loads(BASELINE.read_text())
        factories = {
            "paper_base": paper_base,
            "paper_mtlb96": lambda: paper_mtlb(96),
            "paper_no_mtlb128": lambda: paper_no_mtlb(128),
            "paper_promotion": paper_promotion,
        }
        scales, seed = baseline["scales"], baseline["seed"]
        for key, want in baseline["fingerprints"].items():
            workload, label = key.split("|")
            got = scenario_fingerprint(
                workload, factories[label](), scales[workload], seed
            )
            assert got == want, f"fingerprint moved for {key}"

    def test_backend_is_result_relevant(self):
        base = scenario_fingerprint("em3d", paper_base(), 0.08, 1998)
        coal = scenario_fingerprint(
            "em3d",
            dataclasses.replace(paper_base(), backend="coalesced"),
            0.08,
            1998,
        )
        assert base != coal


# ---------------------------------------------------------------------- #
# Wire codec
# ---------------------------------------------------------------------- #


class TestWireCodec:
    def test_round_trip_preserves_backend(self):
        spec = ScenarioSpec(
            "em3d", paper_no_mtlb(96), backend="victima", seed=7
        )
        doc = json.loads(json.dumps(spec_to_doc(spec)))
        back = spec_from_doc(doc)
        assert back.config.backend == "victima"
        assert back.config == spec.config
        assert scenario_fingerprint(
            "em3d", back.config, 0.08, 7
        ) == scenario_fingerprint("em3d", spec.config, 0.08, 7)

    def test_omitted_backend_defaults_to_mtlb(self):
        """A pre-refactor client document (no backend keys anywhere)
        must still build the default machine at the old address."""
        spec = ScenarioSpec("em3d", paper_base(), seed=1998)
        doc = json.loads(json.dumps(spec_to_doc(spec)))
        del doc["backend"]
        for key in ("backend", "coalesced", "victima"):
            doc["config"].pop(key, None)
        back = spec_from_doc(doc)
        assert back.config.backend == "mtlb"
        baseline = json.loads(BASELINE.read_text())
        assert (
            scenario_fingerprint("em3d", back.config, 0.08, 1998)
            == baseline["fingerprints"]["em3d|paper_base"]
        )

    def test_bad_backend_in_doc_is_spec_validation_error(self):
        spec = ScenarioSpec("em3d", paper_base())
        doc = spec_to_doc(spec)
        doc["backend"] = "nonesuch"
        with pytest.raises(SpecValidationError):
            spec_from_doc(doc)


# ---------------------------------------------------------------------- #
# ScenarioSpec backend fold
# ---------------------------------------------------------------------- #


class TestSpecFold:
    def test_backend_folds_into_config(self):
        spec = ScenarioSpec("em3d", paper_base(), backend="coalesced")
        assert spec.config.backend == "coalesced"
        assert spec.label.endswith("@coalesced")

    def test_none_keeps_config_backend(self):
        spec = ScenarioSpec("em3d", paper_base())
        assert spec.config.backend == "mtlb"

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(UnknownBackend):
            ScenarioSpec("em3d", paper_base(), backend="nonesuch")

    def test_incompatible_config_is_spec_validation_error(self):
        with pytest.raises(SpecValidationError):
            ScenarioSpec("em3d", paper_mtlb(96), backend="victima")


# ---------------------------------------------------------------------- #
# repro.api deprecation shim
# ---------------------------------------------------------------------- #


class TestDeprecationShim:
    @pytest.mark.parametrize(
        "name,target_module",
        [
            ("Mtlb", "repro.core.mtlb"),
            ("ShadowPageTable", "repro.core.shadow_table"),
        ],
    )
    def test_deprecated_reexports_warn(self, name, target_module):
        import importlib

        import repro.api as api

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            obj = getattr(api, name)
        assert obj is getattr(
            importlib.import_module(target_module), name
        )
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_unknown_attribute_still_raises(self):
        import repro.api as api

        with pytest.raises(AttributeError):
            api.NoSuchThing

    def test_registry_exports_clean(self):
        import repro.api as api

        assert "get_backend" in api.__all__
        assert "list_backends" in api.__all__
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no warning for the new way
            assert api.list_backends() == ["coalesced", "mtlb", "victima"]


# ---------------------------------------------------------------------- #
# peek_lru (the victima pool's eviction preview)
# ---------------------------------------------------------------------- #


class TestPeekLru:
    def test_peek_on_unfull_set_is_none(self):
        cache = SetAssociativeCache(
            size_bytes=1024, associativity=2, physically_indexed=False
        )
        assert cache.peek_lru(0, 0) is None
        cache.access(0, 0, is_write=False)
        assert cache.peek_lru(0, 0) is None  # line already present

    def test_peek_names_lru_victim_without_evicting(self):
        cache = SetAssociativeCache(
            size_bytes=1024, associativity=2, physically_indexed=False
        )
        line = 64 * cache.num_sets  # all addresses map to set 0

        cache.access(0, 0, is_write=False)
        cache.access(line, line, is_write=False)
        victim = cache.peek_lru(2 * line, 2 * line)
        assert victim == 0  # LRU = the first-inserted tag
        before = cache.occupancy
        assert cache.peek_lru(2 * line, 2 * line) == victim  # idempotent
        assert cache.occupancy == before  # no side effects
        # The preview agrees with what access() actually evicts.
        cache.access(2 * line, 2 * line, is_write=False)
        assert not cache.probe(0, 0)
        assert cache.probe(line, line)

    def test_peek_matches_access_eviction(self):
        cache = SetAssociativeCache(
            size_bytes=512, associativity=1, physically_indexed=False
        )
        cache.access(0, 0, is_write=False)
        victim = cache.peek_lru(64 * cache.num_sets, 64 * cache.num_sets)
        assert victim is not None
        cache.access(64 * cache.num_sets, 64 * cache.num_sets, False)
        assert not cache.probe(0, 0)
