"""Unit tests: the daemon's priority + weighted-fair tenant queue.

The queue is the daemon's scheduling decision, so its contract is
tested directly: priority bands strictly dominate, tenants inside a
band interleave by virtual time regardless of arrival order, a greedy
tenant cannot starve a small one, idleness never banks into a burst,
and the close/wait lifecycle matches what the supervisor's serve loop
expects.
"""

import threading

import pytest

from repro.serve.queue import FairQueue, QueueClosed


def drain(queue):
    out = []
    while True:
        item = queue.poll()
        if item is None:
            return out
        out.append(item)


class TestOrdering:
    def test_fifo_single_tenant(self):
        q = FairQueue()
        for i in range(5):
            q.push("a", i)
        assert drain(q) == [0, 1, 2, 3, 4]

    def test_priority_bands_dominate(self):
        q = FairQueue()
        q.push("a", "low", priority=0)
        q.push("a", "high", priority=5)
        q.push("a", "mid", priority=1)
        assert drain(q) == ["high", "mid", "low"]

    def test_equal_weight_tenants_interleave(self):
        """Tenant b's 3 items must not wait behind all 6 of tenant a's,
        despite arriving later."""
        q = FairQueue()
        for i in range(6):
            q.push("a", f"a{i}")
        for i in range(3):
            q.push("b", f"b{i}")
        order = drain(q)
        # b's items interleave near the front: every b item pops before
        # a's item of the same per-tenant rank + 1 (virtual times tie,
        # arrival seq breaks the tie in a's favour only rank-for-rank).
        assert order.index("b0") <= 2
        assert order.index("b1") <= 4
        assert order.index("b2") <= 6

    def test_greedy_tenant_cannot_starve_small_one(self):
        """The satellite's fairness bound: one tenant enqueues 100, the
        other 5; the small tenant's median pop position stays in the
        first ~tenth of the schedule instead of after all 100."""
        q = FairQueue()
        for i in range(100):
            q.push("greedy", ("greedy", i))
        for i in range(5):
            q.push("small", ("small", i))
        order = drain(q)
        positions = [
            index for index, (tenant, _) in enumerate(order)
            if tenant == "small"
        ]
        assert len(positions) == 5
        p50 = sorted(positions)[2]
        # Perfect start-time fairness interleaves small's k-th item at
        # position ~2k; allow slack but forbid anything like FIFO
        # (where p50 would be 102).
        assert p50 <= 10, f"small tenant starved: positions={positions}"
        assert positions[-1] <= 12

    def test_weights_shift_the_share(self):
        q = FairQueue()
        for i in range(8):
            q.push("heavy", ("heavy", i), weight=4.0)
            q.push("light", ("light", i), weight=1.0)
        first_five = [tenant for tenant, _ in drain(q)[:5]]
        assert first_five.count("heavy") >= 3

    def test_idle_tenant_cannot_burst(self):
        """A tenant that sat idle re-joins at the band's virtual clock:
        its backlog interleaves with the active tenant's from *now*, it
        does not pre-empt wholesale with banked virtual time."""
        q = FairQueue()
        for i in range(4):
            q.push("active", ("active", i))
        for _ in range(4):
            q.poll()  # active advances the band clock to ~4
        for i in range(4):
            q.push("active", ("active", 4 + i))
        for i in range(3):
            q.push("latecomer", ("late", i))
        order = [tenant for tenant, _ in drain(q)]
        # Interleaved, not three lates first.
        assert order[:3] != ["late", "late", "late"]
        assert "late" in order[:2]

    def test_deterministic_tie_break_by_arrival(self):
        a = FairQueue()
        b = FairQueue()
        for q in (a, b):
            for i in range(10):
                q.push(f"t{i % 3}", i)
        assert drain(a) == drain(b)


class TestLifecycle:
    def test_push_after_close_raises(self):
        q = FairQueue()
        q.push("a", 1)
        q.close()
        with pytest.raises(QueueClosed):
            q.push("a", 2)
        assert q.closed
        # The backlog still drains after close.
        assert drain(q) == [1]

    def test_get_blocks_until_push(self):
        q = FairQueue()
        got = []

        def consumer():
            got.append(q.get(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        q.push("a", 42)
        thread.join(5.0)
        assert got == [42]

    def test_wait_wakes_on_close(self):
        q = FairQueue()
        woke = []

        def waiter():
            woke.append(q.wait(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        q.close()
        thread.join(5.0)
        assert woke == [False]  # woke up, nothing queued

    def test_invalid_weights_rejected(self):
        q = FairQueue()
        with pytest.raises(ValueError):
            q.push("a", 1, weight=0.0)
        with pytest.raises(ValueError):
            FairQueue(default_weight=-1.0)


class TestIntrospection:
    def test_len_and_depths(self):
        q = FairQueue()
        assert len(q) == 0
        q.push("a", 1)
        q.push("a", 2)
        q.push("b", 3, priority=2)
        assert len(q) == 3
        assert q.depths() == {"a": 2, "b": 1}
        q.poll()
        assert len(q) == 2

    def test_snapshot_shape(self):
        q = FairQueue()
        q.push("a", 1)
        q.push("b", 2, priority=3, weight=2.0)
        snap = q.snapshot()
        assert snap["depth"] == 2
        assert not snap["closed"]
        assert set(snap["bands"]) == {"0", "3"}
        assert snap["bands"]["3"]["b"]["weight"] == 2.0
