"""Ablation A7 — no-copy page recoloring (Section 6 future work).

Two hot pages whose frames share a cache color ping-pong every line of a
physically indexed direct-mapped cache: every access misses.  Renaming
one page through shadow memory moves it to a free color without copying
a byte; the conflict disappears.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List

from ..core.addrspace import BASE_PAGE_SIZE, CACHE_LINE_SIZE
from ..ext.recoloring import Recolorer
from ..sim.config import CacheConfig, paper_mtlb
from ..sim.results import render_table
from ..sim.system import System

ROUNDS = 20


@dataclass
class RecoloringResult:
    """A7 outcome."""

    miss_rate_before: float
    miss_rate_after: float
    cycles_before: int
    cycles_after: int
    recolor_cycles: int
    report: str
    shape_errors: List[str]


def _pingpong(system, process, page_a: int, page_b: int):
    """Alternate line accesses between the two pages; returns
    (cycles, misses)."""
    misses_before = system.cache.stats.misses
    cycles = 0
    for _ in range(ROUNDS):
        for offset in range(0, BASE_PAGE_SIZE, CACHE_LINE_SIZE):
            cycles += system.touch(process, page_a + offset)
            cycles += system.touch(process, page_b + offset)
    return cycles, system.cache.stats.misses - misses_before


def run_recoloring_ablation() -> RecoloringResult:
    """Measure the conflict, recolor, measure again."""
    config = dataclasses.replace(
        paper_mtlb(96),
        cache=CacheConfig(physically_indexed=True),
        fragmentation="none",  # frames hand out sequentially
    )
    system = System(config)
    process = system.kernel.create_process("recolor")
    recolorer = Recolorer(system)
    colors = recolorer.colors

    # Lay out two one-page buffers whose frames are exactly `colors`
    # frames apart: identical color, guaranteed conflict.
    page_a = 0x0200_0000
    filler = 0x0300_0000
    page_b = 0x0400_0000
    system.kernel.sys_map(process, page_a, BASE_PAGE_SIZE)
    system.kernel.sys_map(
        process, filler, (colors - 1) * BASE_PAGE_SIZE
    )
    system.kernel.sys_map(process, page_b, BASE_PAGE_SIZE)
    color_a = recolorer.color_of_page(process, page_a)
    color_b = recolorer.color_of_page(process, page_b)

    cycles_before, misses_before = _pingpong(
        system, process, page_a, page_b
    )
    accesses = 2 * ROUNDS * (BASE_PAGE_SIZE // CACHE_LINE_SIZE)

    target = (color_a + colors // 2) % colors
    recolor_cycles = recolorer.recolor_page(process, page_b, target)

    cycles_after, misses_after = _pingpong(
        system, process, page_a, page_b
    )

    rows = [
        ["hot page colors", f"A={color_a}, B={color_b}",
         f"A={color_a}, B={target}"],
        ["miss rate", f"{misses_before / accesses:.3f}",
         f"{misses_after / accesses:.3f}"],
        ["ping-pong cycles", f"{cycles_before:,}", f"{cycles_after:,}"],
        ["recolor cost (cycles)", "-", f"{recolor_cycles:,}"],
    ]
    report = render_table(
        ["quantity", "before recoloring", "after"],
        rows,
        title="A7: no-copy page recoloring via shadow memory",
    )
    errors: List[str] = []
    if color_a != color_b:
        errors.append("setup failed: hot pages do not share a color")
    if misses_before < accesses * 0.9:
        errors.append(
            f"conflict not established: only {misses_before} misses in "
            f"{accesses} accesses"
        )
    if misses_after > accesses * 0.1:
        errors.append(
            f"recoloring did not remove the conflict: {misses_after} "
            f"misses in {accesses} accesses"
        )
    if cycles_after + recolor_cycles >= cycles_before:
        errors.append("recoloring did not pay for itself in one run")
    return RecoloringResult(
        miss_rate_before=misses_before / accesses,
        miss_rate_after=misses_after / accesses,
        cycles_before=cycles_before,
        cycles_after=cycles_after,
        recolor_cycles=recolor_cycles,
        report=report,
        shape_errors=errors,
    )
