"""Run-to-run regression diffing over metrics snapshots.

``diff_snapshots(baseline, candidate, threshold)`` compares every run
key the two snapshots share, metric by metric.  A metric only *regress*
in its bad direction: for lower-is-better metrics (cycles, misses,
stall fractions) the candidate regresses when it exceeds the baseline by
more than the relative threshold; for higher-is-better metrics (hit
rates) when it falls short by more.  Metrics with no known direction
(reference counts, configuration echoes) are reported as informational
changes but can never fail a diff — so a run on a bigger input does not
read as a regression.

Two identical snapshots always produce zero regressions, which is what
lets the bench runner use ``repro metrics diff`` as a CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

#: Metrics where *larger* is worse.
LOWER_IS_BETTER = frozenset(
    {
        "total_cycles",
        "instruction_cycles",
        "memory_stall_cycles",
        "tlb_miss_cycles",
        "kernel_cycles",
        "tlb_misses",
        "itlb_main_misses",
        "cache_misses",
        "cache_writebacks",
        "fill_stall_cycles",
        "mtlb_misses",
        "mtlb_faults",
        "remap_cycles",
        "remap_flush_cycles",
        "degraded_remaps",
        "tlb_miss_rate",
        "tlb_time_fraction",
        "avg_fill_cycles",
        "cpi",
        "wall_seconds",
    }
)

#: Metrics where *smaller* is worse.
HIGHER_IS_BETTER = frozenset({"cache_hit_rate", "mtlb_hit_rate"})

#: Absolute-change floor: direction-tracked metrics whose values differ
#: by less than this never regress, so single-cycle jitter on near-zero
#: counters cannot fail a diff.
MIN_ABS_DELTA = 1e-9


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between baseline and candidate."""

    run: str
    metric: str
    baseline: float
    candidate: float
    regressed: bool

    @property
    def rel_change(self) -> Optional[float]:
        """Relative change vs baseline (None when baseline is zero)."""
        if self.baseline == 0:
            return None
        return (self.candidate - self.baseline) / self.baseline

    def describe(self) -> str:
        rel = self.rel_change
        rel_text = f"{100 * rel:+.2f}%" if rel is not None else "new"
        flag = "  REGRESSION" if self.regressed else ""
        return (
            f"{self.run}: {self.metric} {self.baseline:g} -> "
            f"{self.candidate:g} ({rel_text}){flag}"
        )


@dataclass
class DiffReport:
    """Everything ``repro metrics diff`` found."""

    threshold: float
    deltas: List[MetricDelta] = field(default_factory=list)
    #: Run keys present in only one snapshot (compared in neither).
    only_in_baseline: List[str] = field(default_factory=list)
    only_in_candidate: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def changed(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.baseline != d.candidate]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def identical(self) -> bool:
        """True when every shared metric is bit-equal *and* the two
        snapshots cover exactly the same run keys.  This is the
        ``--require-identical`` gate: it holds the candidate to exact
        equality (engine-equivalence checks), not just to the
        regression threshold."""
        return (
            not self.changed
            and not self.only_in_baseline
            and not self.only_in_candidate
        )

    def render(self, show_unchanged: bool = False) -> str:
        lines: List[str] = []
        shown = self.deltas if show_unchanged else self.changed
        for delta in shown:
            lines.append("  " + delta.describe())
        if not shown:
            lines.append("  (no metric changes)")
        for key in self.only_in_baseline:
            lines.append(f"  {key}: only in baseline (skipped)")
        for key in self.only_in_candidate:
            lines.append(f"  {key}: only in candidate (skipped)")
        lines.append(
            f"{len(self.regressions)} regression(s) at threshold "
            f"{100 * self.threshold:g}% across "
            f"{len(self.deltas)} compared metric(s)"
        )
        return "\n".join(lines)


def metric_regressed(
    name: str, baseline: float, candidate: float, threshold: float
) -> bool:
    """Does candidate regress against baseline for this metric?"""
    if abs(candidate - baseline) < MIN_ABS_DELTA:
        return False
    if name in LOWER_IS_BETTER:
        if baseline == 0:
            return candidate > 0
        return candidate > baseline * (1.0 + threshold)
    if name in HIGHER_IS_BETTER:
        if baseline == 0:
            return False
        return candidate < baseline * (1.0 - threshold)
    return False


def diff_snapshots(
    baseline: Mapping[str, object],
    candidate: Mapping[str, object],
    threshold: float = 0.02,
) -> DiffReport:
    """Compare two loaded snapshots; see the module docstring."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    report = DiffReport(threshold=threshold)
    base_runs: Dict[str, dict] = dict(baseline.get("runs", {}))
    cand_runs: Dict[str, dict] = dict(candidate.get("runs", {}))
    report.only_in_baseline = sorted(set(base_runs) - set(cand_runs))
    report.only_in_candidate = sorted(set(cand_runs) - set(base_runs))
    for key in sorted(set(base_runs) & set(cand_runs)):
        base_metrics = base_runs[key].get("metrics", {})
        cand_metrics = cand_runs[key].get("metrics", {})
        for name in sorted(set(base_metrics) & set(cand_metrics)):
            old, new = base_metrics[name], cand_metrics[name]
            if not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in (old, new)
            ):
                continue
            report.deltas.append(
                MetricDelta(
                    run=key,
                    metric=name,
                    baseline=float(old),
                    candidate=float(new),
                    regressed=metric_regressed(
                        name, float(old), float(new), threshold
                    ),
                )
            )
    return report


def parse_threshold(text: str) -> float:
    """Parse a CLI threshold: ``2%`` or ``0.02`` both mean 2 %."""
    text = text.strip()
    if text.endswith("%"):
        return float(text[:-1]) / 100.0
    value = float(text)
    return value
