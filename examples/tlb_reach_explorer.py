#!/usr/bin/env python3
"""Explore TLB reach: how working-set size interacts with TLB geometry.

Sweeps a random-access workload across working sets from 256 KB to 8 MB
on three machines — small TLB, big TLB, and small TLB + MTLB — and
prints runtime per reference.  The crossover the paper describes is
visible directly: once the working set outruns the conventional TLB's
reach, runtime climbs steeply; the shadow-superpage machine stays flat
because one TLB entry covers the whole region and MTLB misses cost a
DRAM access instead of a software trap.

Run:  python examples/tlb_reach_explorer.py
"""

import numpy as np

from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.system import System
from repro.trace import synth
from repro.trace.events import MapRegion, Remap
from repro.trace.trace import Trace, make_segment

REGION = 0x0200_0000
REFS = 300_000


def scatter_trace(working_set_bytes):
    trace = Trace(f"ws-{working_set_bytes >> 10}k")
    trace.add(MapRegion(REGION, working_set_bytes))
    trace.add(Remap(REGION, working_set_bytes))
    rng = np.random.default_rng(11)
    vaddrs = synth.uniform_random(rng, REGION, working_set_bytes, REFS)
    trace.add(make_segment("scatter", vaddrs, gap=3))
    return trace


def main():
    configs = {
        "64-entry TLB": paper_no_mtlb(64),
        "256-entry TLB": paper_no_mtlb(256),
        "64-entry TLB + MTLB": paper_mtlb(64),
    }
    working_sets = [256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20]

    names = list(configs)
    print(f"{'working set':>12} | " + " | ".join(f"{n:>20}" for n in names))
    print("-" * (15 + 23 * len(names)))
    for ws in working_sets:
        trace = scatter_trace(ws)
        cells = []
        for name in names:
            result = System(configs[name]).run(trace)
            cycles_per_ref = (
                result.total_cycles / result.stats.references
            )
            cells.append(
                f"{cycles_per_ref:7.2f} cyc/ref "
                f"({100 * result.tlb_time_fraction:4.1f}%)"
            )
        print(f"{ws >> 10:>9} KB | " + " | ".join(f"{c:>20}" for c in cells))
    print("\n(parenthesised: fraction of runtime in TLB miss handling)")
    print("reach: 64 entries x 4 KB = 256 KB; 256 x 4 KB = 1 MB; "
          "with superpages one entry maps the whole region")


if __name__ == "__main__":
    main()
