"""Integration tests for the scenario service (repro.serve).

Pins the service's contract end to end: the facade is bit-identical to
the legacy entry points, the scheduler dedupes within a batch and
against the store, checkpoint/resume is equivalent to a store cache
hit, and the CLI front (``repro serve sweep``/``status``) round-trips
through ``repro metrics diff --require-identical``.
"""

import dataclasses
import json
import warnings

import pytest

from repro.api import ScenarioSpec, Session, validate_spec
from repro.bench.runner import BenchContext
from repro.cli import repro_main
from repro.errors import SnapshotSchemaError, SpecValidationError
from repro.obs.snapshot import SCHEMA_VERSION, load_snapshot, write_snapshot
from repro.serve import ResultStore, SweepClient, SweepScheduler
from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.system import simulate
from repro.workloads import PAPER_SUITE, build_workload

TINY = {name: 0.02 for name in PAPER_SUITE}


@pytest.fixture
def session(tmp_path):
    return Session(
        quick=True, scales=dict(TINY), cache_dir=tmp_path / "cache",
        store=tmp_path / "store",
    )


class TestFacadeEquivalence:
    def test_bit_identical_to_simulate_all_workloads(self, session):
        """repro.api.run(spec) == legacy simulate() on every workload
        (same trace path, same machine, full RunStats equality)."""
        config = paper_mtlb(96)
        for workload in PAPER_SUITE:
            report = session.run(ScenarioSpec(workload, config))
            trace = build_workload(
                workload, scale=TINY[workload],
                seed=session.context.seed,
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = simulate(trace, config)
            assert dataclasses.asdict(report.stats) == (
                dataclasses.asdict(legacy.stats)
            ), workload

    def test_simulate_warns_deprecated(self, session):
        trace = build_workload("em3d", scale=0.02, seed=1998)
        with pytest.deprecated_call():
            simulate(trace, paper_mtlb(96))

    def test_engine_override_is_cache_compatible(self, session):
        """A stored scalar result serves a vector-spec request: engine
        is excluded from the fingerprint because engines are
        bit-identical."""
        scalar = session.run(
            ScenarioSpec("em3d", paper_mtlb(96), engine="scalar")
        )
        vector = session.run(
            ScenarioSpec("em3d", paper_mtlb(96), engine="vector")
        )
        assert vector.cache_hit
        assert vector.fingerprint == scalar.fingerprint
        assert vector.stats == scalar.stats


class TestSchedulerDedupe:
    def test_same_spec_twice_simulates_once(self, session):
        """In-batch dedupe: duplicate fingerprints collapse onto one
        execution; both reports carry the same stats."""
        spec = ScenarioSpec("em3d", paper_mtlb(96))
        scheduler = session.scheduler()
        reports = scheduler.sweep([spec, spec])
        assert scheduler.simulated.value == 1
        assert scheduler.deduped.value == 1
        assert reports[0].stats == reports[1].stats
        assert not reports[0].cache_hit and reports[1].cache_hit

    def test_warm_sweep_hits_store(self, session):
        specs = [
            ScenarioSpec(w, cfg)
            for w in ("em3d", "gcc")
            for cfg in (paper_no_mtlb(96), paper_mtlb(96))
        ]
        cold = session.scheduler()
        cold_reports = cold.sweep(specs)
        assert cold.simulated.value == 4
        warm = session.scheduler()
        warm_reports = warm.sweep(specs)
        assert warm.simulated.value == 0
        assert warm.store_hits.value == 4
        assert warm.cache_hit_rate >= 0.9
        for a, b in zip(cold_reports, warm_reports):
            assert a.stats == b.stats

    def test_parallel_sweep_matches_serial(self, session):
        specs = [
            ScenarioSpec(w, cfg)
            for w in ("em3d", "radix")
            for cfg in (paper_no_mtlb(96), paper_mtlb(96))
        ]
        serial = session.scheduler().sweep(specs)
        # A fresh store so the parallel path actually simulates.
        parallel = SweepScheduler(
            context=session.context, store=None, jobs=2
        ).sweep(specs)
        for a, b in zip(serial, parallel):
            assert dataclasses.asdict(a.stats) == (
                dataclasses.asdict(b.stats)
            )

    def test_completion_events_stream_in_order(self, session):
        events = []
        specs = [
            ScenarioSpec("em3d", paper_no_mtlb(96)),
            ScenarioSpec("em3d", paper_mtlb(96)),
        ]
        session.scheduler().sweep(
            specs, on_result=lambda i, r: events.append((i, r.cache_hit))
        )
        assert events == [(0, False), (1, False)]

    def test_obs_instruments_populated(self, session):
        scheduler = session.scheduler()
        scheduler.sweep([ScenarioSpec("em3d", paper_mtlb(96))])
        metrics = scheduler.registry.collect()
        assert metrics["serve.submitted"] == 1
        assert metrics["serve.queue_depth"] == 0

    def test_invalid_spec_fails_before_any_work(self, session):
        scheduler = session.scheduler()
        with pytest.raises(SpecValidationError, match="unknown workload"):
            scheduler.sweep(
                [ScenarioSpec("em3d", paper_mtlb(96)),
                 ScenarioSpec("nonesuch")]
            )
        assert scheduler.submitted.value == 0  # nothing started

    def test_failed_scenario_reported_not_raised(self, session):
        session.context.max_references = 10
        reports = session.scheduler().sweep(
            [ScenarioSpec("em3d", paper_mtlb(96))], raise_errors=False
        )
        assert not reports[0].ok
        assert reports[0].stats is None


class TestScaleHygiene:
    def test_explicit_scale_never_leaks_into_later_specs(self, session):
        """A spec's explicit scale override is pinned to that spec
        alone: a default-scale spec in the same serial batch still
        resolves, executes, and commits at the session default, and
        the session's own scale table comes back untouched."""
        from repro.serve import spec_fingerprint

        baseline = dict(session.context.scales)
        config = paper_mtlb(96)
        override = ScenarioSpec("em3d", config, scale=0.01, seed=71)
        default = ScenarioSpec("em3d", config, seed=72)
        expected = spec_fingerprint(default, session.context)

        reports = session.sweep([override, default])
        assert all(r.ok for r in reports)
        assert reports[1].fingerprint == expected
        assert session.context.scales == baseline
        assert session.store.get(
            reports[0].fingerprint
        ).meta["scale"] == 0.01
        assert session.store.get(expected).meta["scale"] == (
            baseline["em3d"]
        )

    def test_parallel_workers_pin_the_resolved_scales(self, session):
        """The pool path ships each scenario's resolved scales to the
        workers: mixed override/default batches over 2 workers commit
        every record at exactly the scale its fingerprint claims."""
        baseline = dict(session.context.scales)
        config = paper_mtlb(96)
        specs = [
            ScenarioSpec("em3d", config, scale=0.01, seed=81),
            ScenarioSpec("em3d", config, seed=82),
            ScenarioSpec("radix", config, scale=0.01, seed=83),
            ScenarioSpec("radix", config, seed=84),
        ]
        scheduler = SweepScheduler(
            context=session.context, store=session.store, jobs=2
        )
        reports = scheduler.sweep(specs)
        assert all(r.ok for r in reports)
        assert session.context.scales == baseline
        for spec, report in zip(specs, reports):
            record = session.store.get(report.fingerprint)
            want = (
                spec.scale if spec.scale is not None
                else baseline[spec.workload]
            )
            assert record.meta["scale"] == want, spec


class TestResumeAsCacheHit:
    CONFIGS = staticmethod(
        lambda: {
            "tlb96": paper_no_mtlb(96),
            "tlb96+mtlb1282w": paper_mtlb(96),
        }
    )

    def test_matrix_resumes_from_store_without_checkpoint(self, tmp_path):
        """With a store attached, deleting the checkpoint no longer
        costs a re-simulation: resume is a store cache hit."""
        store = ResultStore(tmp_path / "store")
        ctx = BenchContext(
            quick=True, scales={"em3d": 0.02},
            cache_dir=tmp_path / "cache", store=store,
        )
        full = ctx.run_matrix(
            ["em3d"], self.CONFIGS(), "tlb96", checkpoint="r1"
        )
        assert not (tmp_path / "cache" / "checkpoint_r1.json").exists()
        # Rerun: no checkpoint file exists, but the store serves both
        # cells without touching the simulator.
        fresh = BenchContext(
            quick=True, scales={"em3d": 0.02},
            cache_dir=tmp_path / "cache", store=store,
        )

        def boom(workload, config):  # noqa: ARG001
            raise AssertionError("cell was re-simulated")

        fresh.run = boom
        again = fresh.run_matrix(
            ["em3d"], self.CONFIGS(), "tlb96", checkpoint="r1"
        )
        for label in self.CONFIGS():
            assert (
                again.get("em3d", label).total_cycles
                == full.get("em3d", label).total_cycles
            )

    def test_old_checkpoint_files_still_resume(self, tmp_path):
        """Pre-service checkpoint JSON (cells of RunStats fields) is
        still honoured: a store-less resume re-runs only missing
        cells, exactly as before the refactor."""
        configs = self.CONFIGS()
        ctx = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        )
        full = ctx.run_matrix(["em3d"], configs, "tlb96")
        # Hand-write a legacy-format checkpoint holding the first cell.
        first = dataclasses.asdict(
            full.get("em3d", "tlb96").stats
        )
        meta = ctx._checkpoint_meta("tlb96")
        (tmp_path / "checkpoint_old.json").write_text(
            json.dumps({"meta": meta, "cells": {"em3d|tlb96": first}})
        )
        resumed_ctx = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        )
        ran = []
        real_run = resumed_ctx.run
        resumed_ctx.run = lambda w, c: (
            ran.append(c.label) or real_run(w, c)
        )
        matrix = resumed_ctx.run_matrix(
            ["em3d"], configs, "tlb96", checkpoint="old"
        )
        assert ran == ["tlb96+mtlb1282w"]
        for label in configs:
            assert (
                matrix.get("em3d", label).total_cycles
                == full.get("em3d", label).total_cycles
            )


class TestSweepClient:
    def test_submit_gather_async_surface(self, session):
        import asyncio

        client = SweepClient(session=session)
        specs = [ScenarioSpec("em3d", paper_mtlb(96))]

        async def go():
            ticket = await client.submit(specs)
            return await client.gather(ticket)

        reports = asyncio.run(go())
        assert reports[0].ok
        status = client.status()
        assert status["entries"] == 1
        assert status["simulated"] == 1

    def test_ticket_single_use(self, session):
        import asyncio

        client = SweepClient(session=session)

        async def go():
            ticket = await client.submit(
                [ScenarioSpec("em3d", paper_mtlb(96))]
            )
            await client.gather(ticket)
            with pytest.raises(RuntimeError, match="already gathered"):
                await client.gather(ticket)

        asyncio.run(go())


class TestServeCli:
    def test_sweep_cold_then_warm_identical(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        args = [
            "serve", "sweep", "fig4", "--quick",
            "--store", str(tmp_path / "store"),
        ]
        assert repro_main(args + ["-o", "cold.json"]) == 0
        assert repro_main(args + ["-o", "warm.json"]) == 0
        assert repro_main(
            ["metrics", "diff", "cold.json", "warm.json",
             "--require-identical"]
        ) == 0
        # The warm run's store served everything.
        status = ResultStore(tmp_path / "store").status()
        assert status["entries"] == 10

    def test_status_command(self, tmp_path, capsys):
        assert repro_main(
            ["serve", "status", "--store", str(tmp_path / "store")]
        ) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "quarantined" in out

    def test_bad_jobs_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            repro_main(
                ["serve", "sweep", "fig4", "--quick", "--jobs", "0",
                 "--store", str(tmp_path / "store")]
            )


class TestSnapshotVersioning:
    def test_snapshots_are_stamped(self, session, tmp_path):
        from repro.obs.snapshot import run_snapshot

        report = session.run(ScenarioSpec("em3d", paper_mtlb(96)))
        snap = run_snapshot(report.to_result(), label="t")
        assert snap["schema_version"] == SCHEMA_VERSION
        assert snap["repro_version"]

    def test_load_refuses_future_schema_clearly(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({
            "schema": "repro-metrics/99",
            "schema_version": 99,
            "label": "x",
            "runs": {},
        }))
        with pytest.raises(SnapshotSchemaError, match="re-generate"):
            load_snapshot(path)

    def test_load_refuses_version_stamp_mismatch(self, tmp_path):
        path = tmp_path / "stamp.json"
        path.write_text(json.dumps({
            "schema": "repro-metrics/1",
            "schema_version": 2,
            "label": "x",
            "runs": {},
        }))
        with pytest.raises(SnapshotSchemaError, match="schema_version"):
            load_snapshot(path)

    def test_unstamped_snapshots_still_load(self, tmp_path):
        """Snapshots written before the stamp are version 1 de facto."""
        path = write_snapshot(
            {"schema": "repro-metrics/1", "label": "x", "runs": {}},
            tmp_path / "old.json",
        )
        assert load_snapshot(path)["runs"] == {}

    def test_metrics_diff_cli_explains_mismatch(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        write_snapshot(
            {"schema": "repro-metrics/1", "label": "x", "runs": {}}, good
        )
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "schema": "repro-metrics/99", "label": "x", "runs": {},
        }))
        assert repro_main(
            ["metrics", "diff", str(good), str(bad)]
        ) == 2
        err = capsys.readouterr().err
        assert "repro-metrics/99" in err


class TestValidateSpecMixes:
    def test_mix_spec_validates(self):
        validate_spec(
            ScenarioSpec(("em3d", "gcc"), paper_mtlb(96))
        )

    def test_mix_runs_through_session(self, session):
        report = session.run(
            ScenarioSpec(("em3d", "radix"), paper_mtlb(96),
                         quantum_refs=5_000)
        )
        assert report.ok
        again = session.run(
            ScenarioSpec(("em3d", "radix"), paper_mtlb(96),
                         quantum_refs=5_000)
        )
        assert again.cache_hit
        assert again.stats == report.stats
