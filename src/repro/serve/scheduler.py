"""Sharded async sweep scheduler: batches of scenarios, deduped and cached.

The scheduler is the scenario service's execution core (DESIGN.md §12).
One sweep moves through four stages:

1. **validate** — every spec is checked up front
   (:func:`repro.api.validate_spec`), so a bad ``--jobs``/``--engine``
   combination fails fast in the submitting process, never inside a
   worker;
2. **dedupe** — each spec is fingerprinted
   (:mod:`repro.serve.fingerprint`); store hits are served immediately,
   and duplicate fingerprints *within* the batch collapse onto one
   pending execution (submitted twice, simulated once);
3. **supervise** — the remaining unique scenarios are dispatched one at
   a time onto a pool of supervised worker processes
   (:class:`~repro.serve.supervise.ShardSupervisor`, DESIGN.md §13):
   per-scenario wall-clock deadlines with a hard-kill watchdog,
   retry-with-backoff for transient failures, poison quarantine for
   scenarios that keep failing, and a circuit breaker for sweeps
   failing wholesale.  A dead worker costs exactly the scenario it was
   running — the slot is respawned and that one scenario retried;
4. **commit** — completed scenarios are written to the content-addressed
   store and streamed to the caller's ``on_result`` callback as they
   arrive (partial-progress commits: a killed sweep resumes as store
   cache hits).  Each commit is *verified* by reading the record back
   through the store's checksums and rewritten if corrupt; disk errors
   (real or chaos-injected) are retried with backoff.

The front is ``asyncio`` (``await submit(...)`` / ``await gather(...)``)
so a service embedding the scheduler can overlap sweeps; the synchronous
:meth:`SweepScheduler.sweep` wrapper drives one batch to completion.
With ``jobs <= 1`` scenarios run serially in-process, in submission
order — the path ``BenchContext.run_matrix`` uses for checkpointed
serial matrices.

Everything the scheduler observes is exported through
:class:`~repro.obs.MetricsRegistry` instruments: submitted / store-hit /
deduped / simulated / failed counters, a live queue-depth gauge, and a
shard wall-time histogram.
"""

from __future__ import annotations

import asyncio
import dataclasses
import pickle
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..api import RunReport, ScenarioSpec, validate_spec
from ..bench.runner import BenchContext
from ..errors import SweepInterrupted
from ..obs import MetricsRegistry
from ..sim.multiprog import run_job_mix
from ..sim.results import RunResult
from ..sim.stats import RunStats
from ..trace.store import trace_metrics_source
from .chaos import ChaosConfig, ChaosPlan, corrupt_record_file
from .fingerprint import canonical_scenario, scenario_fingerprint
from .store import ResultStore
from .supervise import (
    ScenarioOutcome,
    ScenarioTask,
    ShardSupervisor,
    ShutdownGuard,
    SupervisionPolicy,
    SupervisionReport,
)

__all__ = [
    "SweepScheduler",
    "SweepTicket",
    "execute_spec",
    "guarded_commit",
    "resolve_scales",
    "spec_fingerprint",
    "spec_scale",
]

#: Shard wall-time histogram edges, in seconds.
SHARD_WALL_EDGES = (0.1, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0, 300.0)

#: Commit guard: attempts per store commit before the disk error is
#: considered permanent, and the base backoff between attempts.
MAX_COMMIT_ATTEMPTS = 6
COMMIT_BACKOFF_SECONDS = 0.05


# ====================================================================== #
# Spec execution (shared by the serial path, the workers, and Session)
# ====================================================================== #


def resolve_scales(
    spec: ScenarioSpec, context: BenchContext
) -> Dict[str, float]:
    """The spec's effective per-workload input scales, resolved
    immutably: the explicit ``spec.scale`` override when set, else
    *context*'s current default.  Nothing is written back to the
    context, so many requests resolving against one shared long-lived
    context (the daemon) can never contaminate each other — the scale a
    spec is fingerprinted at is decided here, once, and carried with
    the spec from then on."""
    return {
        name: (
            spec.scale if spec.scale is not None
            else context.scale_of(name)
        )
        for name in spec.workloads
    }


def spec_scale(
    spec: ScenarioSpec,
    context: BenchContext,
    scales: Optional[Dict[str, float]] = None,
):
    """The spec's resolved input scale: one float, or one per mix
    member (the shape :func:`~repro.serve.fingerprint.
    canonical_scenario` expects).  *scales* is a pre-resolved map from
    :func:`resolve_scales`; None resolves against *context* now."""
    if scales is None:
        scales = resolve_scales(spec, context)
    if spec.is_mix:
        return [scales[w] for w in spec.workloads]
    return scales[spec.workload]


def spec_fingerprint(
    spec: ScenarioSpec,
    context: BenchContext,
    scales: Optional[Dict[str, float]] = None,
) -> Optional[str]:
    """The spec's store address, or None when it must not be cached.

    Observability runs carry artifacts (event logs, attribution) that
    the store does not hold, and sanitize runs exist to *execute* the
    invariant audits — serving either from the store would silently
    skip what the user asked for, so both always simulate.

    *scales* is a pre-resolved :func:`resolve_scales` map; callers that
    go on to execute the spec should resolve once and pass the same map
    here, to execution, and to the commit, so the address can never
    drift from what actually ran.
    """
    config = spec.config
    if config.obs.enabled:
        return None
    if config.sanitize or context.sanitize:
        return None
    if spec.is_mix:
        return scenario_fingerprint(
            spec.workload, config,
            spec_scale(spec, context, scales), spec.seed,
            quantum_refs=spec.quantum_refs,
            switch_cost=spec.switch_cost,
        )
    return scenario_fingerprint(
        spec.workload, config, spec_scale(spec, context, scales),
        spec.seed,
    )


def _pin_scales(
    context: BenchContext, scales: Dict[str, float]
) -> None:
    """Set the context's scale table to exactly *scales*.

    The context's in-memory trace cache is keyed by workload name only,
    so a changed scale must also drop the stale cached trace.
    """
    for name, scale in scales.items():
        if context.scales.get(name) != scale:
            context.scales[name] = scale
            context._traces.pop(name, None)


def _restore_scales(
    context: BenchContext, saved: Dict[str, Optional[float]]
) -> None:
    """Undo :func:`_pin_scales`: put back each saved scale (None =
    the key was absent) and drop any trace cached at the pinned one."""
    for name, scale in saved.items():
        if context.scales.get(name) == scale:
            continue
        if scale is None:
            context.scales.pop(name, None)
        else:
            context.scales[name] = scale
        context._traces.pop(name, None)


def execute_spec(
    context: BenchContext,
    spec: ScenarioSpec,
    scales: Optional[Dict[str, float]] = None,
) -> RunResult:
    """Simulate one spec on *context*; the single execution funnel.

    Single workloads go through :meth:`BenchContext.run` (which applies
    the context's engine/sanitize overrides and the reference budget);
    mixes build a :class:`~repro.sim.multiprog.MultiProgram` over the
    context's cached traces with the same overrides applied.

    *scales* pins the exact per-workload input scales to run at — the
    map the caller fingerprinted with; None resolves the spec against
    the context's current defaults.  Either way the context's scale
    table is restored afterwards, so one spec's explicit override never
    leaks into a later spec's resolution on a shared context.
    """
    if scales is None:
        scales = resolve_scales(spec, context)
    saved_scales = {
        name: context.scales.get(name) for name in scales
    }
    _pin_scales(context, scales)
    saved_budget = context.max_references
    if spec.max_references is not None:
        context.max_references = spec.max_references
    try:
        config = spec.resolved_config()
        if not spec.is_mix:
            return context.run(spec.workload, config)
        if context.engine is not None and config.engine != context.engine:
            config = dataclasses.replace(config, engine=context.engine)
        if context.sanitize and not config.sanitize:
            config = dataclasses.replace(config, sanitize=True)
        traces = [context.trace(name) for name in spec.workloads]
        multi = run_job_mix(
            config,
            traces,
            quantum_refs=spec.quantum_refs,
            switch_cost=spec.switch_cost,
        )
        return multi.result
    finally:
        context.max_references = saved_budget
        _restore_scales(context, saved_scales)


def _put_record(
    store: ResultStore,
    context: BenchContext,
    spec: ScenarioSpec,
    fingerprint: str,
    report: RunReport,
    scales: Optional[Dict[str, float]] = None,
) -> None:
    scale = spec_scale(spec, context, scales)
    store.put(
        fingerprint,
        workload="+".join(spec.workloads),
        config_label=spec.config.label,
        stats=report.stats,
        metrics=report.metrics,
        meta={
            "seed": spec.seed,
            "quick": context.quick,
            "scale": scale,
        },
        scenario=canonical_scenario(
            spec.workload,
            spec.config,
            scale,
            spec.seed,
            quantum_refs=(spec.quantum_refs if spec.is_mix else None),
            switch_cost=(spec.switch_cost if spec.is_mix else None),
        ),
    )


def guarded_commit(
    store: ResultStore,
    context: BenchContext,
    spec: ScenarioSpec,
    fingerprint: str,
    report: RunReport,
    chaos: Optional[ChaosPlan] = None,
    log: Optional[Callable[[str], None]] = None,
    on_retry: Optional[Callable[[], None]] = None,
    scales: Optional[Dict[str, float]] = None,
) -> None:
    """Commit one report with disk-fault retries and verification.

    The single store-commit discipline, shared by the batch scheduler
    and the daemon: chaos commit sites are consulted once per attempt
    (``store_enospc``/``store_eio`` surface as the OSError a real
    full/failing disk would raise, and ``store_corrupt`` flips a byte
    of the record *after* the write — which the verification read-back,
    the store's own checksum machinery, must catch and quarantine,
    triggering a rewrite).  A commit that keeps failing past
    :data:`MAX_COMMIT_ATTEMPTS` raises the last disk error.  *on_retry*
    fires once per retry attempt (the ``serve.commit_retries``
    counter).  *scales* is the resolved map the scenario was
    fingerprinted and executed with, so the canonical record can never
    claim a scale other than the one that actually ran.
    """
    emit = log if log is not None else (lambda message: None)
    last_error: Optional[OSError] = None
    for attempt in range(1, MAX_COMMIT_ATTEMPTS + 1):
        if attempt > 1:
            if on_retry is not None:
                on_retry()
            time.sleep(
                min(1.0, COMMIT_BACKOFF_SECONDS * (2 ** (attempt - 2)))
            )
        fault = chaos.commit_fault() if chaos is not None else None
        if fault is not None:
            last_error = fault
            emit(
                f"  commit fault on {spec.label} "
                f"(attempt {attempt}): {fault}"
            )
            continue
        try:
            _put_record(
                store, context, spec, fingerprint, report, scales
            )
        except OSError as exc:
            last_error = exc
            emit(
                f"  commit failed on {spec.label} "
                f"(attempt {attempt}): {exc}"
            )
            continue
        if not store.record_path(fingerprint).exists():
            # ResultStore.put tolerates a read-only filesystem by
            # design (run uncached); nothing to verify or retry.
            return
        if chaos is not None and chaos.corrupts_commit():
            corrupt_record_file(store.record_path(fingerprint))
        with warnings.catch_warnings():
            # A corrupt read-back is quarantined (warning) and then
            # rewritten here — expected under chaos, not news.
            warnings.simplefilter("ignore", RuntimeWarning)
            verified = store.get(fingerprint) is not None
        if verified:
            return
        last_error = OSError(
            "commit verification failed (record quarantined)"
        )
        emit(
            f"  commit verification failed on {spec.label} "
            f"(attempt {attempt}); rewriting"
        )
    raise last_error or OSError("commit failed")


def _picklable(exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a summary.

    The repo's typed errors define ``__reduce__`` and round-trip; this
    guards third-party/ad-hoc exceptions so a shard's *other* results
    are never lost to one unpicklable failure object.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure
        return RuntimeError(f"{type(exc).__name__}: {exc}")


# ====================================================================== #
# The scheduler
# ====================================================================== #


@dataclass
class _Entry:
    """One submitted spec's lifecycle inside a ticket."""

    index: int
    spec: ScenarioSpec
    fingerprint: Optional[str]
    #: The resolved per-workload scales this entry was fingerprinted
    #: at; execution and commit pin exactly these.
    scales: Optional[Dict[str, float]] = None
    report: Optional[RunReport] = None
    error: Optional[BaseException] = None
    #: The entry this one deduplicated onto (same fingerprint, earlier
    #: in the batch); resolved at assembly time.
    primary: Optional["_Entry"] = None


@dataclass
class SweepTicket:
    """Handle for one submitted batch, consumed by ``gather``."""

    entries: List[_Entry]
    #: Entries that need simulation, in submission order.
    to_run: List[_Entry] = field(default_factory=list)
    #: Pool mode: the supervisor driving the batch and its awaitable
    #: (the supervision loop running on a thread).
    supervisor: Optional[ShardSupervisor] = None
    task: Optional[object] = None
    #: The supervisor's report, available once gathered.
    supervision: Optional[SupervisionReport] = None
    on_result: Optional[Callable[[int, RunReport], None]] = None
    gathered: bool = False


class SweepScheduler:
    """Sharded, store-deduplicating scenario scheduler (DESIGN.md §12)."""

    def __init__(
        self,
        context: Optional[BenchContext] = None,
        store: Optional[ResultStore] = None,
        jobs: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        progress_cb: Optional[Callable[[str], None]] = None,
        policy: Optional[SupervisionPolicy] = None,
        chaos: Optional[Union[ChaosConfig, ChaosPlan]] = None,
        shutdown: Optional[ShutdownGuard] = None,
    ) -> None:
        self.context = context if context is not None else BenchContext()
        self.store = store
        self.jobs = jobs if jobs is not None else (self.context.jobs or 1)
        self.registry = registry or MetricsRegistry()
        self.progress_cb = progress_cb
        self.policy = policy
        self.chaos_plan: Optional[ChaosPlan] = (
            ChaosPlan(chaos) if isinstance(chaos, ChaosConfig) else chaos
        )
        self.shutdown = shutdown
        #: The most recent pool sweep's supervision report (None for
        #: serial sweeps and before the first pool sweep).
        self.last_supervision: Optional[SupervisionReport] = None
        reg = self.registry
        self.submitted = reg.counter("serve.submitted")
        self.store_hits = reg.counter("serve.store_hits")
        self.deduped = reg.counter("serve.deduped")
        self.simulated = reg.counter("serve.simulated")
        self.failed = reg.counter("serve.failed")
        self.commit_retries = reg.counter("serve.commit_retries")
        self.queue_depth = reg.gauge("serve.queue_depth")
        self.shard_wall = reg.histogram(
            "serve.shard_wall_seconds", SHARD_WALL_EDGES
        )
        # Trace-store traffic (hits/misses/generated/...) rides the
        # operational registry, never RunResult.metrics — run metrics
        # are compared bit-for-bit across cold/warm caches by CI.
        reg.add_source("trace", trace_metrics_source)

    # -- helpers --------------------------------------------------------- #

    def _log(self, message: str) -> None:
        if self.progress_cb is not None:
            self.progress_cb(message)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted scenarios served without simulating."""
        total = self.submitted.value
        if not total:
            return 0.0
        return (self.store_hits.value + self.deduped.value) / total

    def _ctx_kwargs(self) -> dict:
        ctx = self.context
        return {
            "quick": ctx.quick,
            "scales": ctx.scales,
            "cache_dir": ctx.cache_dir,
            "seed": ctx.seed,
            "max_references": ctx.max_references,
            "engine": ctx.engine,
            "sanitize": ctx.sanitize,
            "trace_store": ctx.trace_store,
        }

    def _commit(self, entry: _Entry, ticket: SweepTicket) -> None:
        """Persist + stream one completed entry."""
        report = entry.report
        if (
            self.store is not None
            and entry.fingerprint is not None
            and report is not None
            and report.stats is not None
            and not report.cache_hit
        ):
            self._guarded_put(entry)
        if ticket.on_result is not None and report is not None:
            ticket.on_result(entry.index, report)

    def _guarded_put(self, entry: _Entry) -> None:
        """Commit one entry via the shared :func:`guarded_commit`."""
        guarded_commit(
            self.store,
            self.context,
            entry.spec,
            entry.fingerprint,
            entry.report,
            chaos=self.chaos_plan,
            log=self._log,
            on_retry=self.commit_retries.inc,
            scales=entry.scales,
        )

    # -- async surface --------------------------------------------------- #

    async def submit(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]] = None,
    ) -> SweepTicket:
        """Validate, dedupe, and launch a batch; returns its ticket.

        Store hits are resolved (and streamed to *on_result*)
        immediately; with ``jobs > 1`` shard workers start right away,
        otherwise execution happens during ``gather``.
        """
        specs = list(specs)
        for spec in specs:  # fail fast, before any work starts
            validate_spec(spec)
        entries: List[_Entry] = []
        pending: Dict[str, _Entry] = {}
        ticket = SweepTicket(entries=entries, on_result=on_result)
        for index, spec in enumerate(specs):
            self.submitted.inc()
            scales = resolve_scales(spec, self.context)
            fingerprint = spec_fingerprint(spec, self.context, scales)
            entry = _Entry(index, spec, fingerprint, scales=scales)
            entries.append(entry)
            if fingerprint is not None and self.store is not None:
                record = self.store.get(fingerprint)
                if record is not None:
                    entry.report = RunReport(
                        spec=spec,
                        stats=record.run_stats(),
                        fingerprint=fingerprint,
                        cache_hit=True,
                        metrics=record.metrics,
                    )
                    self.store_hits.inc()
                    self._log(f"  store hit: {spec.label}")
                    self._commit(entry, ticket)
                    continue
            if fingerprint is not None and fingerprint in pending:
                entry.primary = pending[fingerprint]
                self.deduped.inc()
                continue
            if fingerprint is not None:
                pending[fingerprint] = entry
            ticket.to_run.append(entry)
        self.queue_depth.set(len(ticket.to_run))
        if not ticket.to_run:
            return ticket

        jobs = max(1, self.jobs)
        if jobs > 1 and len(ticket.to_run) > 1:
            # Legacy trace cache only: pre-warm on disk in the parent so
            # N workers never race to generate the same trace — at each
            # entry's resolved scale, without mutating the shared
            # context's own scale table.  In store mode the workers
            # coordinate themselves through the store's single-flight
            # lock, so the first cell starts as soon as *its own* trace
            # exists instead of waiting for the whole warm-up loop —
            # this is where time-to-first-result drops on a cold sweep.
            if not self.context.trace_store:
                for name, scale in dict.fromkeys(
                    (name, entry.scales[name])
                    for entry in ticket.to_run
                    for name in entry.spec.workloads
                ):
                    self.context.trace_at(name, scale)
            workers = min(jobs, len(ticket.to_run))
            ticket.supervisor = ShardSupervisor(
                self._ctx_kwargs(),
                jobs=workers,
                policy=self.policy,
                chaos=self.chaos_plan,
                registry=self.registry,
                poison_dir=(
                    self.store.poison_dir
                    if self.store is not None else None
                ),
                shutdown=self.shutdown,
                progress_cb=self.progress_cb,
            )
            self._log(
                f"  running {len(ticket.to_run)} scenario(s) on "
                f"{workers} supervised worker(s)..."
            )
            sup_tasks = [
                ScenarioTask(
                    index=entry.index,
                    spec=entry.spec,
                    label=entry.spec.label,
                    fingerprint=entry.fingerprint,
                    workload="+".join(entry.spec.workloads),
                    config_label=entry.spec.config.label,
                    scales=tuple(sorted(entry.scales.items())),
                )
                for entry in ticket.to_run
            ]
            loop = asyncio.get_running_loop()
            by_index = {e.index: e for e in ticket.to_run}
            remaining = [len(ticket.to_run)]

            def on_outcome(outcome: ScenarioOutcome) -> None:
                # Runs on the supervisor's thread as each scenario
                # reaches a terminal state (commit-as-you-go).
                entry = by_index[outcome.task.index]
                if outcome.error is not None:
                    entry.error = outcome.error
                    self.failed.inc()
                else:
                    entry.report = RunReport(
                        spec=entry.spec,
                        stats=RunStats(**outcome.stats),
                        fingerprint=entry.fingerprint,
                        cache_hit=False,
                        metrics=outcome.metrics,
                        wall_seconds=outcome.wall_seconds,
                    )
                    self.simulated.inc()
                    self._commit(entry, ticket)
                    self._log(f"  finished {entry.spec.label}")
                remaining[0] -= 1
                self.queue_depth.set(remaining[0])

            ticket.task = loop.run_in_executor(
                None, ticket.supervisor.run, sup_tasks, on_outcome
            )
        return ticket

    async def gather(
        self, ticket: SweepTicket, raise_errors: bool = True
    ) -> List[RunReport]:
        """Drive a ticket to completion; reports in submission order.

        With *raise_errors* (the default) the first failed scenario's
        original exception is re-raised — after every completed
        scenario has been committed, so a rerun resumes from the store.
        Otherwise failures surface as ``RunReport.error`` entries.
        """
        if ticket.gathered:
            raise RuntimeError("ticket was already gathered")
        ticket.gathered = True
        if ticket.task is not None:
            await self._gather_supervised(ticket, raise_errors)
        else:
            self._run_serial(ticket, raise_errors)
        self.queue_depth.set(0)
        # Resolve dedupe references and assemble in submission order.
        reports: List[RunReport] = []
        first_error: Optional[BaseException] = None
        for entry in ticket.entries:
            if entry.primary is not None:
                primary = entry.primary
                if primary.report is not None:
                    entry.report = dataclasses.replace(
                        primary.report, spec=entry.spec, cache_hit=True
                    )
                else:
                    entry.error = primary.error
                self._commit(entry, ticket)
            if entry.report is None:
                error = entry.error or RuntimeError(
                    "scenario was never executed"
                )
                if first_error is None:
                    first_error = error
                entry.report = RunReport(
                    spec=entry.spec,
                    stats=None,
                    fingerprint=entry.fingerprint,
                    error=error,
                )
            reports.append(entry.report)
        if raise_errors and first_error is not None:
            raise first_error
        return reports

    def _run_serial(
        self, ticket: SweepTicket, raise_errors: bool
    ) -> None:
        """In-process execution, submission order, commit-per-scenario."""
        remaining = len(ticket.to_run)
        for entry in ticket.to_run:
            spec = entry.spec
            self._log(f"  running {spec.label}...")
            start = time.perf_counter()
            try:
                result = execute_spec(self.context, spec, entry.scales)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                self.failed.inc()
                entry.error = exc
                if raise_errors:
                    self.queue_depth.set(0)
                    raise
                remaining -= 1
                self.queue_depth.set(remaining)
                continue
            entry.report = RunReport(
                spec=spec,
                stats=result.stats,
                fingerprint=entry.fingerprint,
                cache_hit=False,
                metrics=result.metrics,
                wall_seconds=time.perf_counter() - start,
            )
            self.simulated.inc()
            remaining -= 1
            self.queue_depth.set(remaining)
            self._commit(entry, ticket)

    async def _gather_supervised(
        self, ticket: SweepTicket, raise_errors: bool
    ) -> None:
        """Await the supervision loop; outcomes were already committed
        as they arrived (via the submit-time ``on_outcome`` callback).

        A tripped circuit breaker re-raises when *raise_errors* is set;
        otherwise it (like a graceful interrupt) surfaces as the error
        on every scenario the supervisor never finished.
        """
        start = time.perf_counter()
        breaker: Optional[BaseException] = None
        try:
            ticket.supervision = await ticket.task
        except Exception as exc:  # noqa: BLE001 - breaker/loop failure
            breaker = exc
            ticket.supervision = ticket.supervisor.report
        finally:
            self.last_supervision = ticket.supervisor.report
            self.shard_wall.observe(time.perf_counter() - start)
        report = ticket.supervisor.report
        if breaker is not None or report.interrupted:
            # Scenarios the supervisor never finished carry the sweep-
            # level cause; the assembly in gather() raises or reports
            # it per the caller's raise_errors choice.
            unfinished = [
                e for e in ticket.to_run
                if e.report is None and e.error is None
            ]
            finished = len(ticket.to_run) - len(unfinished)
            for entry in unfinished:
                entry.error = (
                    breaker
                    if breaker is not None
                    else SweepInterrupted(finished, len(unfinished))
                )
                self.failed.inc()
        if not report.clean:
            self._log(report.render())
        if breaker is not None and raise_errors:
            # The breaker is the sweep-level diagnosis; raise it rather
            # than whichever scenario happened to fail first.
            self.queue_depth.set(0)
            raise breaker

    # -- sync wrapper ----------------------------------------------------- #

    def sweep(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]] = None,
        raise_errors: bool = True,
    ) -> List[RunReport]:
        """Submit + gather one batch synchronously."""

        async def _run() -> List[RunReport]:
            ticket = await self.submit(specs, on_result=on_result)
            return await self.gather(ticket, raise_errors=raise_errors)

        return asyncio.run(_run())
