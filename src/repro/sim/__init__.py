"""Simulator driver: configuration, the machine, statistics, results."""

from .config import (
    CPU_HZ,
    CacheConfig,
    MtlbConfig,
    SystemConfig,
    TlbConfig,
    figure3_configs,
    figure4_configs,
    paper_base,
    paper_mtlb,
    paper_no_mtlb,
    with_check_penalty,
)
from .multiprog import MultiProgram, MultiRunResult, run_job_mix
from .report import compare_runs, describe_run
from .results import ResultMatrix, RunResult, render_series, render_table
from .stats import RunStats
from .system import SimulationError, System, simulate

__all__ = [
    "CPU_HZ",
    "CacheConfig",
    "MtlbConfig",
    "SystemConfig",
    "TlbConfig",
    "figure3_configs",
    "figure4_configs",
    "paper_base",
    "paper_mtlb",
    "paper_no_mtlb",
    "with_check_penalty",
    "MultiProgram",
    "MultiRunResult",
    "run_job_mix",
    "compare_runs",
    "describe_run",
    "ResultMatrix",
    "RunResult",
    "render_series",
    "render_table",
    "RunStats",
    "SimulationError",
    "System",
    "simulate",
]
