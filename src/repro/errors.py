"""One exception hierarchy for the whole reproduction.

Every failure the simulator can signal derives from :class:`ReproError`,
so callers (the benchmark harness, the CLI's ``--keep-going`` mode, and
tests) can distinguish *modelled* failures from genuine Python bugs with
a single ``except`` clause.  The hierarchy splits into:

* **protocol/consistency errors** — the simulated OS or hardware did
  something the paper's design forbids (:class:`SimulationError` and its
  subclasses).  These indicate a bug in the model and should never be
  swallowed;
* **fault-model errors** — injected hardware faults surfacing through
  their architected detection paths (:class:`MtlbParityFault`,
  :class:`UnrecoverableMemoryError`).  The kernel's recovery protocols
  handle the recoverable ones;
* **harness errors** — resource/robustness limits of the benchmark
  harness itself (:class:`TraceCacheCorrupt`,
  :class:`ReferenceBudgetExceeded`).

A few classes double-inherit from the builtin exception they historically
were (``AssertionError``, ``RuntimeError``) so existing callers keep
working while new code can catch the typed form.

Exceptions with multi-argument constructors define ``__reduce__`` so
they survive the pickle round-trip out of ``run_matrix``'s worker
processes with their typed attributes intact (the default reduction
would try to rebuild them from the formatted message alone).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error the reproduction raises deliberately."""


# ---------------------------------------------------------------------- #
# Protocol / consistency errors (model bugs; never expected in a run)
# ---------------------------------------------------------------------- #


class SimulationError(ReproError):
    """An inconsistency the simulated OS/hardware should never produce."""


class StaleSystemError(SimulationError, RuntimeError):
    """A :class:`~repro.sim.system.System` was asked to run twice.

    One System instance is one machine for one run; reusing it would mix
    warmed-up hardware state into a "fresh boot" measurement.
    """


class StatsConsistencyError(SimulationError, AssertionError):
    """The disjoint cycle categories of a run do not sum to its total."""


class SilentCorruption(SimulationError):
    """The oracle checker caught a translation no recovery path fixed.

    Raised by the opt-in differential checker
    (``SystemConfig.check_translations``) when the MMC's answer for a
    shadow address disagrees with the shadow page table or the kernel's
    own superpage records — i.e. an injected fault escaped every
    detection/recovery mechanism and would have produced wrong numbers.
    """

    def __init__(
        self, shadow_index: int, hardware_pfn: int, expected_pfn: int
    ) -> None:
        super().__init__(
            f"silent corruption on shadow page {shadow_index:#x}: "
            f"hardware translated to pfn {hardware_pfn:#x}, "
            f"oracle expected {expected_pfn:#x}"
        )
        self.shadow_index = shadow_index
        self.hardware_pfn = hardware_pfn
        self.expected_pfn = expected_pfn

    def __reduce__(self):
        return (
            type(self),
            (self.shadow_index, self.hardware_pfn, self.expected_pfn),
        )


class InvariantViolation(SimulationError):
    """An architectural invariant sanitizer found corrupted state.

    Raised by the opt-in sanitizer suite (``SystemConfig.sanitize``,
    ``repro.check.sanitizers``) at the first segment boundary or kernel
    event after which a component's internal invariants no longer hold.
    ``component`` names the checked structure (``"tlb"``, ``"cache"``,
    ``"shadow_table"``, ``"mtlb"``, ``"frames"``), ``detail`` says which
    invariant broke, and ``where`` is the boundary label the suite was
    invoked at.
    """

    def __init__(self, component: str, detail: str, where: str) -> None:
        super().__init__(
            f"invariant violated in {component} ({where}): {detail}"
        )
        self.component = component
        self.detail = detail
        self.where = where

    def __reduce__(self):
        return (type(self), (self.component, self.detail, self.where))


# ---------------------------------------------------------------------- #
# Fault-model errors (architected detection of injected hardware faults)
# ---------------------------------------------------------------------- #


class MtlbParityFault(ReproError):
    """The MTLB detected bad parity on a cached or in-DRAM entry.

    The paper's Section 4 signalling in reverse: instead of the OS using
    deliberate bad parity to fault accesses, here real (injected)
    corruption trips the parity check.  ``origin`` says which copy was
    bad: ``"mtlb"`` (a cached way) or ``"table"`` (the in-DRAM shadow
    page table entry read by the fill engine).  The kernel recovers with
    a flush-and-refill plus a shadow-table scrub.
    """

    def __init__(self, shadow_index: int, origin: str) -> None:
        super().__init__(
            f"MTLB parity fault on shadow page {shadow_index:#x} "
            f"({origin} copy)"
        )
        self.shadow_index = shadow_index
        self.origin = origin

    def __reduce__(self):
        return (type(self), (self.shadow_index, self.origin))


class UnrecoverableMemoryError(ReproError):
    """A transient bus/DRAM error persisted past the MMC's retry bound."""

    def __init__(self, paddr: int, attempts: int) -> None:
        super().__init__(
            f"memory access at {paddr:#010x} still failing after "
            f"{attempts} retries"
        )
        self.paddr = paddr
        self.attempts = attempts

    def __reduce__(self):
        return (type(self), (self.paddr, self.attempts))


# ---------------------------------------------------------------------- #
# Harness errors (benchmark-runner robustness limits)
# ---------------------------------------------------------------------- #


class TraceCacheCorrupt(ReproError):
    """A cached trace file failed its checksum or is truncated.

    The harness treats this as a cache miss: warn, delete, regenerate.
    """

    def __init__(self, path, reason: str) -> None:
        super().__init__(f"trace cache file {path} is corrupt: {reason}")
        self.path = path
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.path, self.reason))


class TraceStoreCorrupt(TraceCacheCorrupt):
    """A trace-store entry failed a chunk CRC / manifest checksum.

    Subclasses :class:`TraceCacheCorrupt` so every handler that already
    treats a corrupt trace cache as a miss (warn, quarantine,
    regenerate) handles the chunked store the same way.
    """


class TraceStoreTimeout(ReproError):
    """A single-flight waiter gave up waiting for the generating peer.

    Raised when a trace-store entry stays locked past the waiter's
    timeout with no manifest appearing — the generating process is
    stuck or the lock is stale beyond the steal horizon.
    """

    def __init__(self, address: str, waited_seconds: float) -> None:
        super().__init__(
            f"trace store entry {address} still generating after "
            f"{waited_seconds:.1f}s"
        )
        self.address = address
        self.waited_seconds = waited_seconds

    def __reduce__(self):
        return (type(self), (self.address, self.waited_seconds))


class ReferenceBudgetExceeded(ReproError):
    """A run would exceed the harness's per-run reference budget.

    Guards ``repro-bench all`` against one pathological (workload,
    config) cell running unbounded.
    """

    def __init__(self, references: int, budget: int) -> None:
        super().__init__(
            f"run needs {references} references, budget is {budget}"
        )
        self.references = references
        self.budget = budget

    def __reduce__(self):
        return (type(self), (self.references, self.budget))


# ---------------------------------------------------------------------- #
# Scenario-service errors (repro.api / repro.serve)
# ---------------------------------------------------------------------- #


class SpecValidationError(ReproError, ValueError):
    """A :class:`~repro.api.ScenarioSpec` cannot be run as written.

    Raised *before* any worker is spawned, so a bad ``--jobs``/
    ``--engine`` combination (e.g. the vector engine requested together
    with an active fault plan, which forces the scalar engine) fails
    fast in the submitting process with an explanation instead of dying
    inside a shard worker.
    """


class UnknownBackend(SpecValidationError):
    """A config or spec named a translation backend that is not registered.

    Raised at *config time* — :class:`~repro.sim.config.SystemConfig`
    construction, :class:`~repro.api.ScenarioSpec` construction, and the
    daemon's ``POST /v1/sweep`` codec all hit it before any simulation
    starts — so an unknown backend name is an immediate, typed failure
    (HTTP 400 over the wire) instead of an ``AttributeError`` mid-run.
    """

    def __init__(self, name: object, known=()) -> None:
        registered = ", ".join(sorted(map(str, known)))
        super().__init__(
            f"unknown translation backend {name!r}"
            + (f"; registered backends: {registered}" if registered else "")
        )
        self.name = name
        self.known = tuple(known)

    def __reduce__(self):
        return (UnknownBackend, (self.name, self.known))


class ResultStoreCorrupt(ReproError):
    """A result-store entry failed its checksum or schema validation.

    The store treats this as a miss: the entry is moved into the
    store's ``quarantine/`` directory (never silently served), a
    RuntimeWarning is emitted, and the scheduler regenerates the result.
    """

    def __init__(self, path, reason: str) -> None:
        super().__init__(f"result-store entry {path} is corrupt: {reason}")
        self.path = path
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.path, self.reason))


class SnapshotSchemaError(ReproError, ValueError):
    """A metrics snapshot was written under an incompatible schema
    version.  ``repro metrics diff`` refuses the comparison with this
    clear error instead of failing on a missing key deep inside the
    diff."""


class ScenarioDeadlineExceeded(ReproError):
    """A scenario overran its wall-clock deadline and its worker was
    hard-killed by the supervisor's watchdog.

    A deadline kill is a *transient* failure: the scenario is retried
    with backoff on a respawned worker (the hang may have been a stall,
    contention, or injected chaos), and only repeated failures poison
    it.
    """

    def __init__(self, label: str, deadline_seconds: float,
                 elapsed_seconds: float) -> None:
        super().__init__(
            f"scenario {label} exceeded its {deadline_seconds:g}s "
            f"deadline (killed after {elapsed_seconds:.2f}s)"
        )
        self.label = label
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds

    def __reduce__(self):
        return (
            type(self),
            (self.label, self.deadline_seconds, self.elapsed_seconds),
        )


class WorkerCrashed(ReproError):
    """A shard worker process died while running a scenario.

    The supervisor respawns the worker and retries exactly the scenario
    that was in flight — the rest of the sweep is untouched (the old
    ``ProcessPoolExecutor`` path failed every queued scenario instead).
    ``exitcode`` is the dead process's exit code (negative = signal).
    """

    def __init__(self, label: str, exitcode) -> None:
        super().__init__(
            f"worker died while running scenario {label} "
            f"(exitcode={exitcode})"
        )
        self.label = label
        self.exitcode = exitcode

    def __reduce__(self):
        return (type(self), (self.label, self.exitcode))


class PoisonedScenario(ReproError):
    """A scenario failed deterministically past the poison threshold.

    The supervisor quarantines it into a typed
    :class:`~repro.serve.supervise.PoisonRecord` sidecar and completes
    the sweep with a partial-result report instead of dying;
    ``attempts`` is how many times it was tried and ``last_error`` is
    the final failure.
    """

    def __init__(self, label: str, attempts: int, last_error: str) -> None:
        super().__init__(
            f"scenario {label} poisoned after {attempts} failed "
            f"attempt(s): {last_error}"
        )
        self.label = label
        self.attempts = attempts
        self.last_error = last_error

    def __reduce__(self):
        return (type(self), (self.label, self.attempts, self.last_error))


class CircuitBreakerOpen(ReproError):
    """The sweep's failure rate crossed the circuit-breaker threshold.

    The supervisor aborts the sweep early — killing the workers and
    leaving the remaining scenarios unexecuted — instead of grinding
    through a batch that is failing wholesale (a bad config push, a
    full disk).  The message carries the diagnosis; completed
    scenarios were already committed, so a rerun resumes from the
    store.
    """

    def __init__(self, failures: int, completed: int,
                 threshold: float) -> None:
        total = failures + completed
        rate = failures / total if total else 1.0
        super().__init__(
            f"circuit breaker open: {failures}/{total} terminal "
            f"failure(s) ({rate:.0%}) crossed the {threshold:.0%} "
            f"threshold; aborting the sweep early (completed scenarios "
            "are committed — rerun resumes from the store)"
        )
        self.failures = failures
        self.completed = completed
        self.threshold = threshold

    def __reduce__(self):
        return (type(self), (self.failures, self.completed, self.threshold))


class SweepInterrupted(ReproError):
    """A sweep was stopped by SIGINT/SIGTERM and drained gracefully.

    In-flight scenarios were committed to the store, the remaining
    ``pending`` scenarios were never started, and the CLI exits with
    :data:`~repro.serve.supervise.EXIT_INTERRUPTED` — a rerun resumes
    from the store.
    """

    def __init__(self, completed: int, pending: int) -> None:
        super().__init__(
            f"sweep interrupted: {completed} scenario(s) committed, "
            f"{pending} never started; rerun resumes from the store"
        )
        self.completed = completed
        self.pending = pending

    def __reduce__(self):
        return (type(self), (self.completed, self.pending))


class SweepError(ReproError):
    """One or more scenarios of a sweep failed in their shard.

    ``failures`` maps each failed spec's submission index to the
    (picklable) exception its worker raised; every *other* scenario in
    the batch still completed and was committed to the store.
    """

    def __init__(self, failures) -> None:
        detail = "; ".join(
            f"#{index}: {type(exc).__name__}: {exc}"
            for index, exc in sorted(failures.items())
        )
        super().__init__(
            f"{len(failures)} scenario(s) failed in the sweep ({detail})"
        )
        self.failures = dict(failures)

    def __reduce__(self):
        return (type(self), (self.failures,))


class DaemonUnavailable(ReproError):
    """The scenario daemon could not be reached (or refused service).

    Raised by the HTTP sweep transport when the daemon URL does not
    connect, the connection drops before the terminal ``done`` event,
    or the daemon answers 503 because it is draining.  The batch is
    safe to resubmit: the daemon dedupes by fingerprint, so anything
    already committed becomes a store hit.
    """

    def __init__(self, url: str, reason: str) -> None:
        super().__init__(f"scenario daemon at {url} unavailable: {reason}")
        self.url = url
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.url, self.reason))


class DaemonProtocolError(ReproError):
    """The daemon sent something the client cannot interpret.

    A version-skewed daemon, a non-daemon endpoint, or a truncated
    NDJSON stream — the client stops immediately rather than guessing
    at partial results.
    """

    def __init__(self, url: str, detail: str) -> None:
        super().__init__(
            f"unexpected response from scenario daemon at {url}: {detail}"
        )
        self.url = url
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.url, self.detail))
