"""repro.serve — the scenario service (DESIGN.md §12–13).

Five layers, bottom-up:

* :mod:`~repro.serve.fingerprint` — canonical scenario fingerprints,
  the content address of one simulation outcome;
* :mod:`~repro.serve.store` — the content-addressed, CRC-checked
  :class:`ResultStore` of completed runs (corrupt entries quarantined,
  never served; writes fsync'd for crash durability);
* :mod:`~repro.serve.supervise` — the supervised shard pool: deadlines
  with a hard-kill watchdog, retry-with-backoff, poison quarantine,
  circuit breaker, graceful SIGINT/SIGTERM draining;
* :mod:`~repro.serve.chaos` — deterministic service-layer failure
  injection (seeded like :mod:`repro.faults`) and the ``repro chaos
  soak`` bit-identity harness;
* :mod:`~repro.serve.scheduler` / :mod:`~repro.serve.client` — the
  async :class:`SweepScheduler` (asyncio front, supervised workers,
  verified commits, obs-instrumented) and its :class:`SweepClient`
  front door.

``repro serve sweep``, ``repro serve status``, and ``repro chaos
soak`` are the CLI over this package;
:meth:`repro.bench.runner.BenchContext.run_matrix` is its oldest
client.
"""

from .chaos import (
    CHAOS_SITES,
    ChaosConfig,
    ChaosPlan,
    SoakReport,
    default_chaos,
    run_soak,
)
from .client import SweepClient
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_scenario,
    scenario_fingerprint,
)
from .scheduler import (
    SweepScheduler,
    SweepTicket,
    execute_spec,
    spec_fingerprint,
    spec_scale,
)
from .store import (
    STORE_SCHEMA,
    ResultStore,
    StoreRecord,
    atomic_write_bytes,
    default_store_root,
)
from .supervise import (
    EXIT_ABORTED,
    EXIT_INTERRUPTED,
    PoisonRecord,
    ShardSupervisor,
    ShutdownGuard,
    SupervisionPolicy,
    SupervisionReport,
    load_poison_records,
)

__all__ = [
    "CHAOS_SITES",
    "ChaosConfig",
    "ChaosPlan",
    "EXIT_ABORTED",
    "EXIT_INTERRUPTED",
    "FINGERPRINT_VERSION",
    "PoisonRecord",
    "STORE_SCHEMA",
    "ResultStore",
    "ShardSupervisor",
    "ShutdownGuard",
    "SoakReport",
    "StoreRecord",
    "SupervisionPolicy",
    "SupervisionReport",
    "SweepClient",
    "SweepScheduler",
    "SweepTicket",
    "atomic_write_bytes",
    "canonical_scenario",
    "default_chaos",
    "default_store_root",
    "execute_spec",
    "load_poison_records",
    "run_soak",
    "scenario_fingerprint",
    "spec_fingerprint",
    "spec_scale",
]
