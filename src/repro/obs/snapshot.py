"""Standardized metrics snapshots: the ``repro metrics`` file format.

One *snapshot* is a JSON document holding the scalar metrics of one or
more runs, keyed ``<workload>|<config label>``.  The same schema is used
by ``repro metrics dump`` (one run), by the bench runner's
``BENCH_<name>.json`` baselines (a whole figure matrix), and by
``repro metrics diff`` — so any two of those artifacts can be compared.

Schema (``repro-metrics/1``)::

    {
      "schema": "repro-metrics/1",
      "label": "figure3",
      "meta": {...free-form provenance: seed, quick, scales...},
      "runs": {
        "em3d|tlb96": {"metrics": {"total_cycles": 12753686, ...}},
        ...
      }
    }

Metric values are flat name -> number; derived ratios (cpi, hit rates,
TLB time fraction) are materialised at dump time so diffs compare what
the paper's figures actually plot.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Union

if TYPE_CHECKING:  # imported lazily to keep repro.obs sim-independent
    from ..sim.results import ResultMatrix, RunResult
    from ..sim.stats import RunStats

SCHEMA = "repro-metrics/1"

#: Derived RunStats properties included in every snapshot.
DERIVED_METRICS = (
    "tlb_miss_rate",
    "tlb_time_fraction",
    "cache_hit_rate",
    "mtlb_hit_rate",
    "avg_fill_cycles",
    "cpi",
)


def stats_metrics(stats: "RunStats") -> Dict[str, float]:
    """Flatten one RunStats into the snapshot's metric mapping."""
    out: Dict[str, float] = {}
    for fld in dataclasses.fields(stats):
        value = getattr(stats, fld.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[fld.name] = value
    for name in DERIVED_METRICS:
        out[name] = getattr(stats, name)
    for key, value in stats.extra.items():
        out[f"extra.{key}"] = value
    return out


def run_key(workload: str, config_label: str) -> str:
    return f"{workload}|{config_label}"


def run_snapshot(
    result: "RunResult",
    label: str = "run",
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Snapshot one run."""
    return {
        "schema": SCHEMA,
        "label": label,
        "meta": dict(meta or {}),
        "runs": {
            run_key(result.workload, result.config_label): {
                "metrics": stats_metrics(result.stats)
            }
        },
    }


def results_snapshot(
    results,
    label: str,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Snapshot any iterable of :class:`RunResult` (e.g. a figure-4
    sweep that keeps runs in a plain dict rather than a matrix)."""
    runs: Dict[str, object] = {}
    for result in results:
        runs[run_key(result.workload, result.config_label)] = {
            "metrics": stats_metrics(result.stats)
        }
    return {
        "schema": SCHEMA,
        "label": label,
        "meta": dict(meta or {}),
        "runs": runs,
    }


def matrix_snapshot(
    matrix: "ResultMatrix",
    label: str,
    workloads=None,
    config_labels=None,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Snapshot a whole (workload x config) result matrix."""
    runs: Dict[str, object] = {}
    for workload in workloads or matrix.workloads():
        labels = config_labels or list(matrix._results[workload])
        for config_label in labels:
            result = matrix.get(workload, config_label)
            runs[run_key(workload, config_label)] = {
                "metrics": stats_metrics(result.stats)
            }
    return {
        "schema": SCHEMA,
        "label": label,
        "meta": dict(meta or {}),
        "runs": runs,
    }


def write_snapshot(
    snapshot: Mapping[str, object], path: Union[str, Path]
) -> Path:
    """Write one snapshot as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Load and schema-check a snapshot file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} snapshot "
            f"(schema={payload.get('schema')!r})"
            if isinstance(payload, dict)
            else f"{path}: not a metrics snapshot object"
        )
    if not isinstance(payload.get("runs"), dict):
        raise ValueError(f"{path}: snapshot has no 'runs' mapping")
    return payload
