"""Metrics registry: counters, gauges, and histograms by name.

Components stop poking ad-hoc fields into ``RunStats`` and instead
surface their activity through one registry per simulated machine:

* a **Counter** is a monotonically growing event total (TLB misses,
  MTLB fills);
* a **Gauge** is a point-in-time value (cycle-category totals, MTLB
  occupancy);
* a **Histogram** buckets observations against fixed edges (MTLB-miss
  inter-arrival, remap latency, superpage sizes).

The registry collects in two ways.  Hot components keep their existing
cheap stats dataclasses and register a *source* — a callable returning
``{metric_name: value}`` — which the registry drains at collect time, so
the simulator hot path pays nothing for the registry's existence.  Cold
paths (kernel ops, benches, tests) may update instruments directly.

:meth:`MetricsRegistry.collect` runs every source and returns the full
flat ``name -> value`` mapping; :class:`~repro.sim.stats.RunStats` is
rebuilt from that mapping at end of run (see ``RunStats.from_registry``),
making the legacy stats object a *view* over this registry.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

Number = Union[int, float]

#: A source is a callable returning a flat metric mapping.
MetricSource = Callable[[], Dict[str, Number]]


@dataclass
class Counter:
    """Monotonic event total."""

    name: str
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def set(self, value: Number) -> None:
        """Overwrite from an authoritative component total."""
        self.value = value


@dataclass
class Gauge:
    """Point-in-time value."""

    name: str
    value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Fixed-edge histogram: ``len(edges) + 1`` buckets.

    An observation ``x`` lands in bucket ``i`` where
    ``edges[i-1] <= x < edges[i]`` (the last bucket is open-ended).
    Tracks count/sum/min/max so summaries survive bucketing.
    """

    def __init__(self, name: str, edges: Sequence[Number]) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("histogram edges must be strictly increasing")
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.name = name
        self.edges: List[Number] = list(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0
        self.sum: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def observe_many(self, values: Iterable[Number]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def bucket_labels(self) -> List[str]:
        """Human-readable bucket bounds, aligned with :attr:`counts`."""
        labels = [f"<{self.edges[0]}"]
        for lo, hi in zip(self.edges, self.edges[1:]):
            labels.append(f"[{lo},{hi})")
        labels.append(f">={self.edges[-1]}")
        return labels

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": self.edges,
            "counts": self.counts,
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """One namespace of instruments plus deferred component sources."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, MetricSource] = {}

    # ------------------------------------------------------------------ #
    # Instrument registration
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        self._reserve(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the named gauge."""
        self._reserve(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(
        self, name: str, edges: Optional[Sequence[Number]] = None
    ) -> Histogram:
        """Get-or-create the named histogram (edges required first time)."""
        self._reserve(name, self._histograms)
        hist = self._histograms.get(name)
        if hist is None:
            if edges is None:
                raise KeyError(
                    f"histogram {name!r} does not exist and no edges given"
                )
            hist = Histogram(name, edges)
            self._histograms[name] = hist
        return hist

    def _reserve(self, name: str, own: Dict[str, object]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(
                    f"metric {name!r} already registered with a "
                    "different instrument type"
                )

    def add_source(self, prefix: str, source: MetricSource) -> None:
        """Register a component snapshot callable under *prefix*.

        At :meth:`collect` time the source runs once and each returned
        ``key: value`` becomes counter ``<prefix>.<key>``.  Registering
        the same prefix again replaces the source (a rebuilt component
        supersedes its predecessor).
        """
        self._sources[prefix] = source

    # ------------------------------------------------------------------ #
    # Collection / export
    # ------------------------------------------------------------------ #

    def collect(self) -> Dict[str, Number]:
        """Drain sources into counters, then return every scalar metric."""
        for prefix, source in self._sources.items():
            for key, value in source().items():
                self.counter(f"{prefix}.{key}").set(value)
        out: Dict[str, Number] = {}
        for counter in self._counters.values():
            out[counter.name] = counter.value
        for gauge in self._gauges.values():
            out[gauge.name] = gauge.value
        return out

    def value(self, name: str) -> Number:
        """Current value of one counter or gauge (collect() first)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        raise KeyError(name)

    def counters(self) -> Dict[str, Counter]:
        """The registered counters by name (collect() drains sources
        into counters first, so call it before relying on this for
        source-backed metrics)."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        """The registered gauges by name."""
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        """The registered histograms by name."""
        return dict(self._histograms)

    def as_dict(self) -> Dict[str, object]:
        """Full registry content as plain JSON-ready data."""
        return {
            "metrics": self.collect(),
            "histograms": {
                name: hist.as_dict()
                for name, hist in self._histograms.items()
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------- #
# Canonical histogram edge sets (powers of two keep buckets meaningful
# across run scales)
# ---------------------------------------------------------------------- #

#: MTLB-miss inter-arrival gaps, in CPU cycles.
MTLB_INTERARRIVAL_EDGES = (
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
)

#: Remap latency per remap() call, in CPU cycles.
REMAP_LATENCY_EDGES = (
    1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000, 4_000_000,
)

#: Superpage sizes created, in bytes (the paper's power-of-four ladder).
SUPERPAGE_SIZE_EDGES = (
    16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20,
)

#: Chunks materialised per trace-store load (the chunk-hit histogram:
#: how much of the columnar store one scenario actually pulls).
TRACE_CHUNKS_PER_LOAD_EDGES = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024,
)

#: Supervised per-scenario wall time (one attempt), in seconds.
SCENARIO_WALL_EDGES = (
    0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1_800.0,
)

#: Fraction of a scenario's deadline consumed by a successful attempt
#: (values past 1.0 mean the watchdog's grace window saved it).
DEADLINE_FRACTION_EDGES = (
    0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.5,
)
