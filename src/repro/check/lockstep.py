"""Scalar-vs-vector lockstep differential harness (DESIGN.md §11).

DiffTest-style co-simulation: the same trace is run once under each
engine, and at every boundary (each trace segment and each kernel event)
a cheap per-component CRC digest of the architectural state is taken via
the System's ``check_hook``.  Comparing the two digest sequences locates
the *first* boundary where the engines disagree and the components that
disagree there; both engines are then re-run to that boundary to capture
full snapshots, which are diffed field by field for the report.

The two-phase scheme keeps the common (identical) case cheap: full
snapshots are only ever taken at the one divergent boundary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim.system import System
from ..trace.trace import Segment, Trace
from .digest import COMPONENTS, boundary_digest, capture_detail, diff_detail


@dataclass
class Divergence:
    """Where and how the two engines first disagreed."""

    #: 0-based boundary index (each segment / kernel event is one).
    boundary: int
    #: Label of the item the boundary follows (segment label or event
    #: class name; ``"end-of-run"`` for final-accounting divergence).
    label: str
    #: Components whose digests differ at the boundary.
    components: List[str]
    #: Field-level difference lines from the detail snapshots.
    details: List[str] = field(default_factory=list)


@dataclass
class DiffReport:
    """Outcome of one lockstep differential run."""

    workload: str
    config_label: str
    boundaries: int
    divergence: Optional[Divergence]

    @property
    def identical(self) -> bool:
        """True when the engines were bit-identical throughout."""
        return self.divergence is None

    def render(self) -> str:
        """Human-readable report."""
        head = (
            f"lockstep diff: {self.workload} [{self.config_label}], "
            f"{self.boundaries} boundaries"
        )
        if self.divergence is None:
            return f"{head}\nengines identical: every digest matches"
        d = self.divergence
        lines = [
            head,
            f"FIRST DIVERGENCE at boundary {d.boundary} "
            f"({d.label}): components {', '.join(d.components)}",
        ]
        lines.extend(d.details)
        return "\n".join(lines)


def _item_label(item) -> str:
    if isinstance(item, Segment):
        return f"segment {item.label!r}"
    return f"event {type(item).__name__}"


def _run_engine(
    trace: Trace,
    config,
    engine: str,
    plant=None,
    capture_at: Optional[int] = None,
) -> Tuple[List[Tuple[str, dict]], Optional[dict], object]:
    """One engine's run: (boundary digests, optional snapshot, stats)."""
    system = System(dataclasses.replace(config, engine=engine))
    boundaries: List[Tuple[str, dict]] = []
    captured: List[Optional[dict]] = [None]

    def hook(sys_, item) -> None:
        b = len(boundaries)
        if plant is not None and plant.applies_to(engine):
            plant.on_boundary(sys_, b)
        boundaries.append((_item_label(item), boundary_digest(sys_)))
        if capture_at is not None and b == capture_at:
            captured[0] = capture_detail(sys_)

    system.check_hook = hook
    result = system.run(trace)
    return boundaries, captured[0], result.stats


def run_lockstep(
    trace: Trace,
    config,
    plant=None,
    workload: Optional[str] = None,
) -> DiffReport:
    """Run both engines over *trace* and report the first divergence.

    *plant* (a :class:`~repro.check.corpus.PlantedBug` or compatible
    object) is armed inside the check hook before each boundary's
    digest, so a planted divergence is caught at exactly the boundary it
    targets.  The configuration's own ``engine`` setting is ignored —
    one run is forced scalar, the other vector (every expressible
    configuration batches since the PR-8 restriction lift, so set-assoc
    and fault-armed configs lockstep too).
    """
    name = workload if workload is not None else trace.name
    scalar_b, _, scalar_stats = _run_engine(
        trace, config, "scalar", plant
    )
    vector_b, _, vector_stats = _run_engine(
        trace, config, "vector", plant
    )

    divergence = None
    for i, ((label, da), (_, db)) in enumerate(
        zip(scalar_b, vector_b)
    ):
        if da != db:
            components = [c for c in COMPONENTS if da[c] != db[c]]
            divergence = Divergence(i, label, components)
            break
    if divergence is None and len(scalar_b) != len(vector_b):
        # One engine executed more boundaries — diverged structurally.
        i = min(len(scalar_b), len(vector_b))
        divergence = Divergence(
            i, "trace structure", ["stats"],
            [
                f"  scalar ran {len(scalar_b)} boundaries, "
                f"vector ran {len(vector_b)}"
            ],
        )
        return DiffReport(name, config.label, i, divergence)
    if divergence is None:
        # Boundaries all matched; end-of-run accounting can still skew.
        sd = dataclasses.asdict(scalar_stats)
        vd = dataclasses.asdict(vector_stats)
        if sd != vd:
            details = [
                f"  stats.{k}: {sd[k]} (scalar) vs {vd[k]} (vector)"
                for k in sd
                if sd[k] != vd[k]
            ]
            divergence = Divergence(
                len(scalar_b), "end-of-run", ["stats"], details
            )
        return DiffReport(
            name, config.label, len(scalar_b), divergence
        )

    # Phase 2: capture full snapshots at the divergent boundary.
    _, detail_s, _ = _run_engine(
        trace, config, "scalar", plant, capture_at=divergence.boundary
    )
    _, detail_v, _ = _run_engine(
        trace, config, "vector", plant, capture_at=divergence.boundary
    )
    if detail_s is not None and detail_v is not None:
        divergence.details = diff_detail(detail_s, detail_v)
    return DiffReport(
        name, config.label, len(scalar_b), divergence
    )
