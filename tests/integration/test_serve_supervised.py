"""Integration tests: the supervised shard pool under injected chaos.

Every test drives the real multiprocessing pool through the public
SweepClient surface with a deterministic ChaosConfig trigger, and then
asserts the service contract: injected failures cost retries and wall
time, never results — each committed record is bit-identical to an
undisturbed run, and only genuinely-deterministic failures poison.
"""

import dataclasses

import pytest

from repro.api import ScenarioSpec, Session
from repro.errors import CircuitBreakerOpen, PoisonedScenario
from repro.serve import SweepClient
from repro.serve.chaos import ChaosConfig, run_soak
from repro.serve.supervise import (
    ShutdownGuard,
    SupervisionPolicy,
    load_poison_records,
)
from repro.sim.config import paper_mtlb, paper_no_mtlb

TINY = {"em3d": 0.02, "radix": 0.02}

#: Fast-but-real supervision for tests: short backoff, short deadline
#: headroom, no minutes-long defaults.
FAST = SupervisionPolicy(
    deadline_seconds=60.0,
    grace_seconds=2.0,
    backoff_base_seconds=0.05,
    backoff_cap_seconds=0.2,
)


def _specs():
    return [
        ScenarioSpec(w, config)
        for w in ("em3d", "radix")
        for config in (paper_no_mtlb(96), paper_mtlb(96))
    ]


def _client(tmp_path, name, chaos=None, policy=FAST, shutdown=None):
    session = Session(
        quick=True, scales=dict(TINY),
        cache_dir=tmp_path / "cache", store=tmp_path / name, jobs=2,
    )
    return SweepClient(
        session=session, jobs=2, policy=policy, chaos=chaos,
        shutdown=shutdown,
    )


def _record_bytes(store):
    return {
        fp: store.record_path(fp).read_bytes() for fp in store.keys()
    }


@pytest.fixture(scope="module")
def clean_records(tmp_path_factory):
    """One undisturbed supervised sweep; the bit-identity baseline."""
    tmp = tmp_path_factory.mktemp("clean")
    client = _client(tmp, "store")
    reports = client.sweep(_specs())
    assert all(r.ok for r in reports)
    return _record_bytes(client.store)


class TestKillRetry:
    def test_blast_radius_is_one_scenario(
        self, tmp_path, clean_records
    ):
        """A SIGKILLed worker costs exactly one retry of exactly the
        killed scenario; every other scenario runs once and every
        stored record matches the undisturbed baseline."""
        chaos = ChaosConfig(triggers=(("worker_kill", 2),))
        client = _client(tmp_path, "store", chaos=chaos)
        reports = client.sweep(_specs())
        assert all(r.ok for r in reports)
        supervision = client.last_supervision
        assert supervision.worker_crashes == 1
        assert supervision.retries == 1
        assert supervision.worker_respawns == 1
        assert supervision.completed == len(_specs())
        assert not supervision.poison
        assert _record_bytes(client.store) == clean_records


class TestDeadlineWatchdog:
    def test_stalled_worker_killed_within_grace(
        self, tmp_path, clean_records
    ):
        """A stalled worker is hard-killed within deadline + grace and
        the scenario retried; results still match the baseline."""
        policy = dataclasses.replace(
            FAST, deadline_seconds=3.0, grace_seconds=1.0
        )
        chaos = ChaosConfig(triggers=(("worker_stall", 1),))
        client = _client(tmp_path, "store", chaos=chaos, policy=policy)
        reports = client.sweep(_specs())
        assert all(r.ok for r in reports)
        supervision = client.last_supervision
        assert supervision.deadline_kills == 1
        assert supervision.retries >= 1
        assert supervision.kill_overshoots
        # Overshoot = elapsed - deadline; must stay near the grace
        # window (margin covers a loaded CI machine's watchdog lag).
        assert max(supervision.kill_overshoots) <= (
            policy.grace_seconds + 2.0
        )
        assert _record_bytes(client.store) == clean_records

    def test_per_spec_deadline_overrides_policy(self, tmp_path):
        """ScenarioSpec.deadline_seconds wins over the sweep policy:
        a generous per-spec deadline keeps a slow-but-healthy scenario
        alive under a tight policy default."""
        policy = dataclasses.replace(FAST, deadline_seconds=120.0)
        specs = [
            dataclasses.replace(spec, deadline_seconds=90.0)
            for spec in _specs()
        ]
        client = _client(tmp_path, "store", policy=policy)
        reports = client.sweep(specs)
        assert all(r.ok for r in reports)
        assert client.last_supervision.deadline_kills == 0


class TestPoisonQuarantine:
    def test_deterministic_failure_poisons_sweep_completes(
        self, tmp_path
    ):
        """A scenario that fails the same way twice is quarantined as
        poison with a typed sidecar; the rest of the sweep completes."""
        specs = _specs()
        # An impossible reference budget fails deterministically.
        specs[1] = dataclasses.replace(specs[1], max_references=10)
        client = _client(tmp_path, "store")
        reports = client.sweep(specs, raise_errors=False)
        assert [r.ok for r in reports] == [True, False, True, True]
        assert isinstance(reports[1].error, PoisonedScenario)
        supervision = client.last_supervision
        assert len(supervision.poison) == 1
        record = supervision.poison[0]
        assert record.classification == "deterministic"
        assert record.label == specs[1].label
        # The sidecar is durably on disk and loadable.
        loaded = load_poison_records(client.store.poison_dir)
        assert [r.label for r in loaded] == [record.label]
        assert client.store.status()["poisoned"] == 1

    def test_poisoned_raises_under_raise_errors(self, tmp_path):
        specs = _specs()
        specs[0] = dataclasses.replace(specs[0], max_references=10)
        client = _client(tmp_path, "store")
        with pytest.raises(PoisonedScenario):
            client.sweep(specs)


class TestCommitChaos:
    def test_commit_faults_retried_and_verified(
        self, tmp_path, clean_records
    ):
        """ENOSPC/EIO on commit retry with backoff; corruption-on-write
        is caught by read-back verification and rewritten — the store
        still converges bit-identically."""
        chaos = ChaosConfig(
            triggers=(
                ("store_enospc", 1),
                ("store_eio", 2),
                ("store_corrupt", 3),
            )
        )
        client = _client(tmp_path, "store", chaos=chaos)
        reports = client.sweep(_specs())
        assert all(r.ok for r in reports)
        assert client.registry.value("serve.commit_retries") >= 3
        assert _record_bytes(client.store) == clean_records


class TestCircuitBreaker:
    def _failing_specs(self, n=4):
        return [
            dataclasses.replace(spec, max_references=10)
            for spec in (_specs() * 2)[:n]
        ]

    def test_breaker_trips_and_raises(self, tmp_path):
        policy = dataclasses.replace(
            FAST,
            poison_threshold=1,
            max_attempts=1,
            breaker_threshold=0.5,
            breaker_min_samples=2,
        )
        client = _client(tmp_path, "store", policy=policy)
        with pytest.raises(CircuitBreakerOpen):
            client.sweep(self._failing_specs())
        assert client.last_supervision.breaker_open

    def test_breaker_reported_without_raise(self, tmp_path):
        policy = dataclasses.replace(
            FAST,
            poison_threshold=1,
            max_attempts=1,
            breaker_threshold=0.5,
            breaker_min_samples=2,
        )
        client = _client(tmp_path, "store", policy=policy)
        reports = client.sweep(
            self._failing_specs(), raise_errors=False
        )
        assert not any(r.ok for r in reports)
        assert client.last_supervision.breaker_open
        assert client.registry.value("serve.breaker_trips") == 1


class TestGracefulDrain:
    def test_programmatic_drain_commits_in_flight(self, tmp_path):
        """Requesting a drain mid-sweep stops dispatch, commits what
        was in flight, and marks the sweep interrupted; committed
        entries serve a resumed sweep from the store."""
        guard = ShutdownGuard()
        client = _client(tmp_path, "store", shutdown=guard)

        def drain_after_first(index, report):
            guard.request_drain()

        reports = client.sweep(
            _specs(),
            on_result=drain_after_first,
            raise_errors=False,
        )
        finished = [r for r in reports if r.ok]
        unfinished = [r for r in reports if not r.ok]
        assert finished and unfinished  # partial progress, explicit
        supervision = client.last_supervision
        assert supervision.interrupted
        assert supervision.pending == len(unfinished)
        # Resume: a fresh sweep over the same store picks up the
        # committed work as cache hits and finishes the rest.
        resumed = _client(tmp_path, "store")
        reports = resumed.sweep(_specs())
        assert all(r.ok for r in reports)
        assert sum(r.cache_hit for r in reports) >= len(finished)

    def test_serve_drain_counts_unpolled_intake(self, tmp_path):
        """Serve-mode drain: tasks still sitting in the intake queue
        are dropped work, and the report's ``pending`` says so instead
        of silently undercounting."""
        from repro.serve.queue import FairQueue
        from repro.serve.supervise import ScenarioTask, ShardSupervisor

        guard = ShutdownGuard()
        guard.request_drain()
        queue = FairQueue()
        for index, spec in enumerate(_specs()[:3]):
            queue.push(
                "tenant",
                ScenarioTask(index=index, spec=spec, label=spec.label),
            )
        supervisor = ShardSupervisor(
            {
                "quick": True, "scales": dict(TINY),
                "cache_dir": tmp_path / "cache", "seed": 1998,
                "max_references": None, "engine": None,
                "sanitize": False,
            },
            jobs=1, policy=FAST, shutdown=guard,
        )
        report = supervisor.serve(queue, lambda outcome: None)
        assert report.interrupted
        assert report.pending == 3


class TestSoakHarness:
    def test_small_soak_converges(self, tmp_path):
        """run_soak: chaos-seeded sweeps converge bit-identically to
        the clean baseline (the `repro chaos soak` engine)."""
        report = run_soak(
            _specs(),
            tmp_path / "soak",
            seeds=[11],
            jobs=2,
            quick=True,
            scales=dict(TINY),
            cache_dir=tmp_path / "cache",
            policy=FAST,
        )
        assert report.clean_entries == len(_specs())
        assert report.ok, report.render()
        outcome = report.outcomes[0]
        assert outcome.matched == outcome.entries
        assert "serve.submitted" in outcome.counters
