"""E6 — the headline reach-equivalence result.

A 64-entry CPU TLB plus a modest MTLB performs like a 128-entry TLB on a
conventional MMC, and the resident TLB entries map far more than double
the memory — the "more than double the effective reach" claim.
"""

from repro.bench import run_reach_equivalence


def test_reach_equivalence(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_reach_equivalence(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
