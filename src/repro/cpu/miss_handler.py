"""Software TLB miss handling (trap-based refill).

The paper's CPU TLB misses trap to a software routine that probes a 16 K
entry hashed page table (HPT) with 16-byte entries — the hashed translation
table model used by HP PA-RISC.  The handler's cost is therefore partly
fixed (trap entry/exit, hashing, TLB insert) and partly *memory-system
dependent*: each HPT probe is a kernel load that goes through the data
cache and may itself miss, which is exactly why CPU TLB thrashing is so
expensive and why page tables "compete with program data for cache space"
(Section 3.5).

This module models the handler.  It is wired at system-build time with the
kernel's HPT and a ``kernel_access`` callback that performs a timed load
through the simulated memory hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .tlb import TlbEntry


class PageFault(Exception):
    """The faulting virtual address has no mapping at all."""

    def __init__(self, vaddr: int) -> None:
        super().__init__(f"page fault at {vaddr:#010x}")
        self.vaddr = vaddr


@dataclass(frozen=True)
class MissHandlerCosts:
    """Fixed instruction costs of the software refill path (CPU cycles).

    The memory-access portion of each probe is *not* included here; it is
    charged by the memory hierarchy as the probes execute.
    """

    trap_overhead: int = 24
    hash_compute: int = 8
    probe_compare: int = 6
    tlb_insert: int = 8
    segment_walk: int = 180


@dataclass
class MissHandlerStats:
    """Event counters for the software refill path."""

    refills: int = 0
    probes: int = 0
    segment_walks: int = 0
    total_cycles: int = 0


@dataclass
class RefillResult:
    """Outcome of one software refill."""

    entry: TlbEntry
    cycles: int


class SoftwareMissHandler:
    """Trap-based TLB refill through the hashed page table.

    ``hpt`` must provide ``probe(vpn) -> (mapping_or_None, probe_paddrs)``
    and ``install(vpn) -> (mapping, probe_paddrs)`` (the slow segment-table
    walk that repopulates the HPT); both come from
    :class:`repro.os_model.hpt.HashedPageTable`.
    """

    def __init__(
        self,
        hpt,
        costs: Optional[MissHandlerCosts] = None,
    ) -> None:
        self.hpt = hpt
        self.costs = costs or MissHandlerCosts()
        self.stats = MissHandlerStats()

    def handle(
        self,
        vaddr: int,
        kernel_access: Callable[[int, bool], int],
    ) -> RefillResult:
        """Service a TLB miss for *vaddr*.

        *kernel_access(paddr, is_write)* performs one timed kernel memory
        access through the cache hierarchy and returns its cycle cost.
        Raises :class:`PageFault` if no mapping exists.
        """
        costs = self.costs
        cycles = costs.trap_overhead + costs.hash_compute
        vpn = vaddr >> 12

        mapping, probe_paddrs = self.hpt.probe(vpn)
        for paddr in probe_paddrs:
            cycles += costs.probe_compare
            cycles += kernel_access(paddr, False)
        self.stats.probes += len(probe_paddrs)

        if mapping is None:
            # HPT miss: the handler falls back to the OS segment tables,
            # then installs a fresh HPT entry for this base page.
            self.stats.segment_walks += 1
            cycles += costs.segment_walk
            mapping, install_paddrs = self.hpt.install(vpn)
            for paddr in install_paddrs:
                cycles += kernel_access(paddr, True)
            if mapping is None:
                self.stats.refills += 1
                self.stats.total_cycles += cycles
                raise PageFault(vaddr)

        cycles += costs.tlb_insert
        entry = TlbEntry(
            vbase=mapping.vbase,
            pbase=mapping.pbase,
            size=mapping.size,
            writable=mapping.writable,
        )
        self.stats.refills += 1
        self.stats.total_cycles += cycles
        return RefillResult(entry=entry, cycles=cycles)
