"""The scenario daemon: a long-lived async scenario service.

``repro serve daemon`` (DESIGN.md §14) turns the batch scenario
service into a resident process: one supervised worker pool
(:meth:`~repro.serve.supervise.ShardSupervisor.serve`) stays warm while
many concurrent clients POST :class:`~repro.api.ScenarioSpec` batches
over HTTP and stream results back as NDJSON, each scenario the moment
it commits to the content-addressed store.  Between the asyncio front
and the pool sits a :class:`~repro.serve.queue.FairQueue`: priority
bands plus weighted-fair tenant scheduling, so one greedy client cannot
starve everyone else's five-scenario batch.

Deduplication happens at two horizons, both by store fingerprint:

* **across time** — a fingerprint already in the store is answered
  immediately from disk (the batch scheduler's store-hit path);
* **in flight** — a fingerprint currently executing (or queued) is
  *coalesced*: the new request attaches a waiter to the existing
  flight and receives the result when that one execution commits.
  Two clients submitting the same 30-spec matrix cost 30 simulations,
  not 60 — observable as ``serve.daemon.coalesced`` on ``/metrics``.

Execution and commit are byte-identical to ``repro serve sweep``: the
same :func:`~repro.serve.scheduler.execute_spec` funnel in the same
supervised workers, committed through the same
:func:`~repro.serve.scheduler.guarded_commit` discipline, so a store
populated through the daemon is bit-identical to one populated by a
batch sweep of the same specs.

Endpoints (HTTP/1.1, ``Connection: close``):

* ``POST /v1/sweep`` — a JSON batch ``{"tenant", "priority",
  "weight", "specs": [...]}``; responds with an NDJSON stream of
  ``accepted`` / ``result`` / ``error`` events and a terminal ``done``;
* ``GET /metrics`` — Prometheus text format 0.0.4
  (:func:`~repro.obs.render_prometheus`);
* ``GET /healthz`` — 200 while serving, 503 once draining or failed;
* ``GET /queue`` — the fair queue's per-tenant depths and virtual
  clocks plus the in-flight table.

Shutdown reuses the sweep path's :class:`~repro.serve.supervise.
ShutdownGuard`: the first SIGTERM/SIGINT stops accepting work, lets
in-flight scenarios drain to the store, fails queued waiters with a
typed error event, and exits 0; a second signal hard-aborts.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..api import (
    RunReport,
    ScenarioSpec,
    Session,
    spec_from_doc,
    validate_spec,
)
from ..bench.runner import BenchContext
from ..errors import SpecValidationError, SweepInterrupted
from ..obs import MetricsRegistry, render_prometheus
from ..trace.store import trace_metrics_source
from .http import (
    HttpError,
    HttpRequest,
    NdjsonStream,
    json_response,
    read_request,
)
from .queue import FairQueue, QueueClosed
from .scheduler import guarded_commit, resolve_scales, spec_fingerprint
from .store import ResultStore, default_store_root
from .supervise import (
    ScenarioOutcome,
    ScenarioTask,
    ShardSupervisor,
    ShutdownGuard,
    SupervisionPolicy,
    SupervisionReport,
)

__all__ = ["ScenarioDaemon", "daemon_policy"]

#: How often the daemon's run loop checks the shutdown guard.
_DRAIN_POLL_SECONDS = 0.1

#: How long the drain waits for active response streams to flush their
#: terminal events before the process exits anyway.
_DRAIN_STREAM_TIMEOUT = 10.0


def daemon_policy(
    base: Optional[SupervisionPolicy] = None,
) -> SupervisionPolicy:
    """The supervision policy a resident daemon should run under.

    Identical to the batch default except the circuit breaker is
    effectively disabled: the breaker exists so a wholesale-failing
    *batch* aborts early, but a long-lived service must not kill
    itself because one tenant submitted a poisonous matrix — poison
    quarantine already contains that tenant's damage per scenario.
    """
    return dataclasses.replace(
        base or SupervisionPolicy(), breaker_min_samples=1_000_000_000
    )


@dataclass
class _Flight:
    """One unique execution in flight: a task plus everyone waiting."""

    task_id: int
    fingerprint: Optional[str]
    label: str
    tenant: str
    #: Event-loop futures resolved with the outcome payload; a waiter
    #: whose client disconnected is simply never awaited (the flight
    #: itself always runs to commit).
    waiters: List[asyncio.Future] = field(default_factory=list)


class ScenarioDaemon:
    """The resident scenario service (DESIGN.md §14).

    Construct with the same session knobs as
    :class:`~repro.serve.client.SweepClient` — the daemon's own
    :class:`~repro.bench.runner.BenchContext` (``quick``, ``seed``)
    governs fingerprinting and input scales for every client, so
    clients of one daemon share one cache universe.

    ``run()`` blocks until drained; tests run it on a thread and use
    :meth:`wait_ready` / ``.port`` / ``guard.request_drain()``.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        store: Union[None, str, Path, ResultStore] = None,
        jobs: int = 2,
        quick: Optional[bool] = None,
        seed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        policy: Optional[SupervisionPolicy] = None,
        shutdown: Optional[ShutdownGuard] = None,
        progress_cb=None,
        default_weight: float = 1.0,
    ) -> None:
        if session is None:
            kwargs: Dict[str, object] = {
                "store": store if store is not None
                else default_store_root(),
                "jobs": jobs,
            }
            if quick is not None:
                kwargs["quick"] = quick
            if seed is not None:
                kwargs["seed"] = seed
            session = Session(**kwargs)
        self.session = session
        self.context: BenchContext = session.context
        self.store: Optional[ResultStore] = session.store
        self.jobs = max(1, jobs)
        self.policy = policy if policy is not None else daemon_policy()
        self.guard = shutdown if shutdown is not None else ShutdownGuard()
        self.progress_cb = progress_cb
        self.registry = registry or MetricsRegistry()
        reg = self.registry
        self.requests = reg.counter("serve.daemon.requests")
        self.sweeps = reg.counter("serve.daemon.sweeps")
        self.specs = reg.counter("serve.daemon.specs")
        self.store_hits = reg.counter("serve.daemon.store_hits")
        self.coalesced = reg.counter("serve.daemon.coalesced")
        self.executed = reg.counter("serve.daemon.executed")
        self.simulated = reg.counter("serve.daemon.simulated")
        self.failed = reg.counter("serve.daemon.failed")
        self.commit_retries = reg.counter("serve.daemon.commit_retries")
        self.disconnects = reg.counter("serve.daemon.disconnects")
        self.queue_depth = reg.gauge("serve.daemon.queue_depth")
        self.inflight_gauge = reg.gauge("serve.daemon.inflight")
        # Surface trace-store traffic (and worker-reported cache
        # corruption) on /metrics without touching run metrics.
        reg.add_source("trace", trace_metrics_source)

        self.queue: FairQueue = FairQueue(default_weight=default_weight)
        self._task_ids = itertools.count()
        self._flights: Dict[int, _Flight] = {}
        self._by_fp: Dict[str, _Flight] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._warm_lock: Optional[asyncio.Lock] = None
        self._active_streams = 0
        self._draining = False
        self._fatal: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self.supervisor: Optional[ShardSupervisor] = None
        self.supervision: Optional[SupervisionReport] = None
        #: Bound address once serving (``port=0`` requests an ephemeral
        #: port; read the real one here).
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------- #

    def _log(self, message: str) -> None:
        if self.progress_cb is not None:
            self.progress_cb(message)

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until the listening socket is bound (tests/threads)."""
        return self._ready.wait(timeout)

    def run(self, host: str = "127.0.0.1", port: int = 8765) -> int:
        """Serve until drained; returns a process exit code (0 = clean
        drain, non-zero once the pool died fatally)."""
        try:
            asyncio.run(self._serve_async(host, port))
        finally:
            self._ready.set()  # never leave a waiter hanging
            self._stopped.set()
        return 1 if self._fatal is not None else 0

    async def _serve_async(self, host: str, port: int) -> None:
        self._loop = asyncio.get_running_loop()
        self._warm_lock = asyncio.Lock()
        self._thread = threading.Thread(
            target=self._supervise_loop, name="scenario-daemon-pool",
            daemon=True,
        )
        self._thread.start()
        server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        self._log(
            f"scenario daemon listening on http://{self.host}:{self.port} "
            f"({self.jobs} worker(s), store="
            f"{self.store.root if self.store else 'none'})"
        )
        self._ready.set()
        async with server:
            while not (self.guard.drain_requested or self._fatal):
                await asyncio.sleep(_DRAIN_POLL_SECONDS)
            self._draining = True
            self._log("scenario daemon draining...")
            server.close()
            await server.wait_closed()
            # No new pushes; the supervisor finishes in-flight work
            # (its own guard semantics) and exits its serve loop.
            self.queue.close()
            if self._thread is not None:
                await self._loop.run_in_executor(None, self._thread.join)
            self._fail_unresolved()
            # Give active response streams a moment to write their
            # terminal events before the process goes away.
            deadline = (
                self._loop.time() + _DRAIN_STREAM_TIMEOUT
            )
            while self._active_streams and self._loop.time() < deadline:
                await asyncio.sleep(0.05)
        self._log("scenario daemon stopped")

    def _supervise_loop(self) -> None:
        """The pool thread: one persistent supervised serve() call."""
        supervisor = ShardSupervisor(
            self._ctx_kwargs(),
            jobs=self.jobs,
            policy=self.policy,
            registry=self.registry,
            poison_dir=(
                self.store.poison_dir if self.store is not None else None
            ),
            shutdown=self.guard,
            progress_cb=self.progress_cb,
        )
        self.supervisor = supervisor
        try:
            self.supervision = supervisor.serve(self.queue, self._on_outcome)
        except BaseException as exc:  # noqa: BLE001 - pool death is fatal
            self._fatal = exc
            self.supervision = supervisor.report
            self._log(f"scenario daemon pool failed: {exc}")
            if self._loop is not None:
                self._loop.call_soon_threadsafe(self._fail_unresolved)

    def _ctx_kwargs(self) -> dict:
        ctx = self.context
        return {
            "quick": ctx.quick,
            "scales": ctx.scales,
            "cache_dir": ctx.cache_dir,
            "seed": ctx.seed,
            "max_references": ctx.max_references,
            "engine": ctx.engine,
            "sanitize": ctx.sanitize,
        }

    # -- pool-side completion (supervisor thread) ------------------------- #

    def _on_outcome(self, outcome: ScenarioOutcome) -> None:
        """Commit one terminal scenario, then wake its waiters.

        Runs on the supervisor thread: the store commit (blocking disk
        I/O, retries, read-back verification) happens here, off the
        event loop; only the waiter hand-off crosses threads.
        """
        task = outcome.task
        if outcome.error is not None:
            self.failed.inc()
            payload = _error_payload(task.fingerprint, outcome.error)
        else:
            payload = {
                "fingerprint": task.fingerprint,
                "stats": outcome.stats,
                "metrics": outcome.metrics,
                "wall_seconds": outcome.wall_seconds,
            }
            try:
                if (
                    self.store is not None
                    and task.fingerprint is not None
                    and outcome.stats is not None
                ):
                    guarded_commit(
                        self.store,
                        self.context,
                        task.spec,
                        task.fingerprint,
                        _committable(task.spec, outcome),
                        log=self._log,
                        on_retry=self.commit_retries.inc,
                        scales=(
                            dict(task.scales) if task.scales else None
                        ),
                    )
            except OSError as exc:
                # The result is real even if the disk refused it; the
                # waiter gets the stats, the error goes to the log.
                self._log(
                    f"  daemon commit failed on {task.label}: {exc}"
                )
            self.simulated.inc()
            self._log(f"  finished {task.label}")
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                self._resolve, task.index, payload
            )

    # -- event-loop-side flight table ------------------------------------ #

    def _resolve(self, task_id: int, payload: dict) -> None:
        flight = self._flights.pop(task_id, None)
        if flight is None:
            return
        if flight.fingerprint is not None:
            self._by_fp.pop(flight.fingerprint, None)
        for fut in flight.waiters:
            if not fut.done():
                fut.set_result(payload)
        self.inflight_gauge.set(len(self._flights))
        self.queue_depth.set(len(self.queue))

    def _fail_unresolved(self) -> None:
        """Fail every still-open flight (drain or pool death)."""
        if self._fatal is not None:
            error: BaseException = self._fatal
        else:
            error = SweepInterrupted(0, len(self._flights))
        for flight in list(self._flights.values()):
            self._resolve(flight.task_id, _error_payload(
                flight.fingerprint, error
            ))

    # -- HTTP front ------------------------------------------------------- #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.requests.inc()
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._route(request, reader, writer)
            except HttpError as exc:
                writer.write(
                    json_response(exc.status, {"error": exc.message})
                )
                await writer.drain()
            except (SpecValidationError, ValueError) as exc:
                writer.write(json_response(400, {"error": str(exc)}))
                await writer.drain()
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                writer.write(
                    json_response(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                )
                await writer.drain()
        except (ConnectionError, OSError):
            self.disconnects.inc()
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = request.path.rstrip("/") or "/"
        if path == "/v1/sweep":
            if request.method != "POST":
                raise HttpError(405, "POST only")
            await self._handle_sweep(request, reader, writer)
        elif path == "/metrics":
            if request.method != "GET":
                raise HttpError(405, "GET only")
            body = render_prometheus(self.registry).encode("utf-8")
            writer.write(_text_response(body))
            await writer.drain()
        elif path == "/healthz":
            if request.method != "GET":
                raise HttpError(405, "GET only")
            doc = self.health()
            status = 200 if doc["status"] == "ok" else 503
            writer.write(json_response(status, doc))
            await writer.drain()
        elif path == "/queue":
            if request.method != "GET":
                raise HttpError(405, "GET only")
            writer.write(json_response(200, self.queue_status()))
            await writer.drain()
        else:
            raise HttpError(404, f"no route for {request.path}")

    def health(self) -> Dict[str, object]:
        if self._fatal is not None:
            status = "failed"
        elif self._draining or self.guard.drain_requested:
            status = "draining"
        else:
            status = "ok"
        return {
            "status": status,
            "jobs": self.jobs,
            "inflight": len(self._flights),
            "queue_depth": len(self.queue),
            "quick": bool(self.context.quick),
            "store": str(self.store.root) if self.store else None,
        }

    def queue_status(self) -> Dict[str, object]:
        inflight = [
            {
                "label": flight.label,
                "tenant": flight.tenant,
                "fingerprint": flight.fingerprint,
                "waiters": len(flight.waiters),
            }
            for flight in self._flights.values()
        ]
        return {"queue": self.queue.snapshot(), "inflight": inflight}

    # -- the sweep endpoint ----------------------------------------------- #

    async def _handle_sweep(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if self._draining or self.guard.drain_requested:
            raise HttpError(503, "daemon is draining")
        if self._fatal is not None:
            raise HttpError(503, f"daemon pool failed: {self._fatal}")
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "body must be a JSON object")
        tenant = str(doc.get("tenant") or "anon")
        try:
            priority = int(doc.get("priority", 0))
            weight = doc.get("weight")
            weight = float(weight) if weight is not None else None
        except (TypeError, ValueError):
            raise HttpError(400, "bad priority/weight") from None
        raw = doc.get("specs")
        if not isinstance(raw, list) or not raw:
            raise HttpError(400, "specs must be a non-empty list")
        try:
            specs = [spec_from_doc(item) for item in raw]
            for spec in specs:
                validate_spec(spec)
        except SpecValidationError as exc:
            raise HttpError(400, str(exc)) from None
        self.sweeps.inc()
        self.specs.inc(len(specs))

        # Admit first, prewarm after: each spec's effective scales are
        # resolved immutably against the session defaults (the shared
        # context is never written to), store hits and coalesced
        # flights are answered without touching the warm lock, and only
        # the specs that will actually execute pay for trace warm-up.
        ready: List[tuple] = []  # (index, source, payload)
        waiting: List[tuple] = []  # (index, source, future)
        launch: List[tuple] = []  # (index, spec, scales, fingerprint)
        for index, spec in enumerate(specs):
            scales = resolve_scales(spec, self.context)
            fingerprint = spec_fingerprint(spec, self.context, scales)
            source, payload, future = await self._lookup(fingerprint)
            if payload is not None:
                ready.append((index, source, payload))
            elif future is not None:
                waiting.append((index, source, future))
            else:
                launch.append((index, spec, scales, fingerprint))
        if launch:
            await self._prewarm(
                [(spec, scales) for _, spec, scales, _ in launch]
            )
        for index, spec, scales, fingerprint in launch:
            source, payload, future = self._launch(
                spec, scales, fingerprint, tenant, priority, weight
            )
            if future is None:
                ready.append((index, source, payload))
            else:
                waiting.append((index, source, future))
        self.queue_depth.set(len(self.queue))

        stream = NdjsonStream(writer)
        # Connections are one-request (Connection: close), so EOF on the
        # request reader means the client hung up.  Watching it is the
        # only reliable mid-stream disconnect signal: small chunked
        # writes land in the kernel buffer and "succeed" long after the
        # peer reset the connection.  Only a true EOF counts — stray
        # trailing bytes from a sloppy client are drained and ignored.
        client_gone = asyncio.ensure_future(_watch_eof(reader))
        self._active_streams += 1
        results = errors = 0
        try:
            await self._stream_line(stream, client_gone, {
                "event": "accepted",
                "total": len(specs),
                "tenant": tenant,
                "pending": len(waiting),
            })
            for index, source, payload in ready:
                ok = await self._stream_event(
                    stream, client_gone, index, source, payload
                )
                results += ok
                errors += not ok
            tagged = [
                self._tagged(index, source, future)
                for index, source, future in waiting
            ]
            for coro in asyncio.as_completed(tagged):
                index, source, payload = await coro
                ok = await self._stream_event(
                    stream, client_gone, index, source, payload
                )
                results += ok
                errors += not ok
            await self._stream_line(stream, client_gone, {
                "event": "done",
                "results": results,
                "errors": errors,
            })
            await stream.finish()
        except (ConnectionError, OSError):
            # The client went away mid-stream.  Every flight keeps
            # running to commit — the store (and any coalesced waiter)
            # still gets the result; only this response dies.
            self.disconnects.inc()
            self._log(f"  client {tenant} disconnected mid-stream")
        finally:
            client_gone.cancel()
            self._active_streams -= 1

    async def _prewarm(self, pairs: List[tuple]) -> None:
        """Ensure the on-disk trace cache holds every (workload, scale)
        these ``(spec, scales)`` pairs will run at.

        The batch scheduler does the same before dispatch: N workers
        must never race to generate one trace.  Serialized across
        requests, off the event loop, against each request's own
        resolved scales — the shared daemon context is never mutated.

        Store-backed contexts skip this: the trace store's
        single-flight lock already guarantees one generator per trace,
        and letting the shard workers populate it themselves means the
        first flight starts as soon as its own trace exists instead of
        queueing behind the whole batch's warm-up.
        """
        if self.context.trace_store:
            return
        wanted = dict.fromkeys(
            (name, scales[name])
            for spec, scales in pairs
            for name in spec.workloads
        )
        async with self._warm_lock:
            for name, scale in wanted:
                await self._loop.run_in_executor(
                    None, self.context.trace_at, name, scale
                )

    async def _lookup(self, fingerprint: Optional[str]):
        """Answer one spec from the store or an existing flight, without
        committing to an execution.

        Returns ``(source, payload, None)`` for a store hit,
        ``("coalesced", None, future)`` for an in-flight fingerprint,
        or ``(None, None, None)`` when the spec needs its own flight.
        """
        if fingerprint is not None and self.store is not None:
            record = await self._loop.run_in_executor(
                None, self.store.get, fingerprint
            )
            if record is not None:
                self.store_hits.inc()
                stats = record.run_stats()
                return "store", {
                    "fingerprint": fingerprint,
                    "stats": dataclasses.asdict(stats),
                    "metrics": record.metrics,
                    "wall_seconds": 0.0,
                }, None
        future = self._coalesce(fingerprint)
        if future is not None:
            return "coalesced", None, future
        return None, None, None

    def _coalesce(self, fingerprint: Optional[str]):
        """Attach a waiter to an existing flight, or None."""
        if fingerprint is None or fingerprint not in self._by_fp:
            return None
        flight = self._by_fp[fingerprint]
        future = self._loop.create_future()
        flight.waiters.append(future)
        self.coalesced.inc()
        return future

    def _launch(
        self,
        spec: ScenarioSpec,
        scales: Dict[str, float],
        fingerprint: Optional[str],
        tenant: str,
        priority: int,
        weight: Optional[float],
    ):
        """Open a flight for one spec and enqueue it (post-prewarm).

        Another request may have opened the same fingerprint while our
        prewarm awaited, so coalescing is re-checked here — no await
        between the check and the flight registration.
        """
        future = self._coalesce(fingerprint)
        if future is not None:
            return "coalesced", None, future
        task_id = next(self._task_ids)
        flight = _Flight(
            task_id=task_id,
            fingerprint=fingerprint,
            label=spec.label,
            tenant=tenant,
        )
        future = self._loop.create_future()
        flight.waiters.append(future)
        task = ScenarioTask(
            index=task_id,
            spec=spec,
            label=spec.label,
            fingerprint=fingerprint,
            workload="+".join(spec.workloads),
            config_label=spec.config.label,
            scales=tuple(sorted(scales.items())),
        )
        try:
            self.queue.push(
                tenant, task, priority=priority, weight=weight
            )
        except QueueClosed:
            return "failed", _error_payload(
                fingerprint, SweepInterrupted(0, 1)
            ), None
        self._flights[task_id] = flight
        if fingerprint is not None:
            self._by_fp[fingerprint] = flight
        self.executed.inc()
        self.inflight_gauge.set(len(self._flights))
        return "executed", None, future

    async def _tagged(self, index: int, source: str, future) -> tuple:
        payload = await future
        return index, source, payload

    async def _stream_line(
        self, stream: NdjsonStream, client_gone: asyncio.Future, doc: dict
    ) -> None:
        """One NDJSON line, unless the reader already saw the client's
        EOF — then raise the disconnect that the write itself would
        only surface many buffered lines later."""
        if client_gone.done() and not client_gone.cancelled():
            raise ConnectionResetError("client closed the connection")
        await stream.write_line(doc)

    async def _stream_event(
        self,
        stream: NdjsonStream,
        client_gone: asyncio.Future,
        index: int,
        source: str,
        payload: dict,
    ) -> bool:
        """Write one terminal event; True when it was a result."""
        if payload.get("error") is not None:
            await self._stream_line(stream, client_gone, {
                "event": "error",
                "index": index,
                "source": source,
                "fingerprint": payload.get("fingerprint"),
                "error_type": payload.get("error_type"),
                "error": payload.get("error"),
            })
            return False
        await self._stream_line(stream, client_gone, {
            "event": "result",
            "index": index,
            "source": source,
            "fingerprint": payload.get("fingerprint"),
            "stats": payload.get("stats"),
            "metrics": payload.get("metrics"),
            "wall_seconds": payload.get("wall_seconds", 0.0),
        })
        return True


async def _watch_eof(reader: asyncio.StreamReader) -> None:
    """Resolve only when the client truly went away.

    Data on the request reader after the body (a stray trailing byte, a
    pipelined request the daemon will never serve) is drained and
    ignored — a client that *sent* something is still connected.  Only
    an empty read (EOF) or a reset ends the watch.
    """
    try:
        while await reader.read(4096):
            pass
    except (ConnectionError, OSError):
        pass


def _error_payload(
    fingerprint: Optional[str], error: BaseException
) -> dict:
    return {
        "fingerprint": fingerprint,
        "error": str(error),
        "error_type": type(error).__name__,
    }


def _committable(spec: ScenarioSpec, outcome: ScenarioOutcome) -> RunReport:
    """A RunReport view of one outcome, shaped for guarded_commit."""
    from ..sim.stats import RunStats

    return RunReport(
        spec=spec,
        stats=RunStats(**outcome.stats),
        fingerprint=outcome.task.fingerprint,
        cache_hit=False,
        metrics=outcome.metrics,
        wall_seconds=outcome.wall_seconds,
    )


def _text_response(body: bytes) -> bytes:
    from .http import render_response

    return render_response(
        200, body, content_type="text/plain; version=0.0.4; charset=utf-8"
    )
