#!/usr/bin/env python3
"""The paper's Figure 1, step by step.

Reconstructs the worked example: a 16 KB virtual region at 0x00004000 is
mapped by one CPU-TLB superpage entry onto the shadow superpage at
"physical" frame 0x80240, whose four base pages the memory controller
remaps onto four scattered real frames.  An access to virtual 0x00004080
becomes shadow 0x80240080 on the bus and real 0x40138080 at the DRAM.

Run:  python examples/translation_walkthrough.py
"""

from repro.core.addrspace import PhysicalMemoryMap
from repro.core.mtlb import Mtlb
from repro.core.shadow_table import ShadowPageTable
from repro.cpu.tlb import Tlb, TlbEntry

VBASE = 0x0000_4000
SHADOW_BASE = 0x8024_0000
FRAMES = [0x40138, 0x04012, 0x2AAAA, 0x11111]


def main():
    # A 32-bit machine with >1 GB of DRAM below the shadow window, so
    # the figure's frame numbers exist.
    memory_map = PhysicalMemoryMap(dram_size=0x4800_0000)
    table = ShadowPageTable(memory_map, table_base=0)
    mtlb = Mtlb(table, entries=128, associativity=2)
    tlb = Tlb(entries=96)

    print("OS setup")
    print(f"  CPU TLB superpage entry: virtual {VBASE:#010x} "
          f"-> shadow {SHADOW_BASE:#010x} (16 KB)")
    tlb.insert(TlbEntry(vbase=VBASE, pbase=SHADOW_BASE, size=16 << 10))
    first = memory_map.shadow_page_index(SHADOW_BASE)
    for i, pfn in enumerate(FRAMES):
        table.set_mapping(first + i, pfn)
        print(f"  MMC mapping: shadow page {first + i:#07x} "
              f"-> real frame {pfn:#07x}"
              f"  (table entry at paddr {table.entry_paddr(first + i):#07x})")
    print()

    for vaddr in (0x0000_4080, 0x0000_5040, 0x0000_7FF8):
        print(f"access to virtual {vaddr:#010x}")
        entry = tlb.lookup(vaddr)
        shadow = entry.translate(vaddr)
        print(f"  CPU TLB hit ({entry.size >> 10} KB superpage entry) "
              f"-> shadow physical {shadow:#010x}")
        print(f"  address is above installed DRAM "
              f"({memory_map.dram_size:#010x}): the MMC retranslates")
        index = memory_map.shadow_page_index(shadow)
        pfn, filled = mtlb.access(index, is_write=False)
        real = (pfn << 12) | (shadow & 0xFFF)
        how = (
            f"MTLB miss -> hardware fill from table entry at "
            f"{table.entry_paddr(index):#07x}"
            if filled
            else "MTLB hit"
        )
        print(f"  {how}")
        print(f"  real physical address: {real:#010x}\n")

    print("the four base pages behind the one superpage entry:")
    for i, pfn in enumerate(FRAMES):
        print(f"  virtual {VBASE + (i << 12):#010x} lives in real frame "
              f"{pfn:#07x} (discontiguous, unaligned)")
    print(f"\nMTLB stats: {mtlb.stats.hits} hits, "
          f"{mtlb.stats.misses} fills")


if __name__ == "__main__":
    main()
