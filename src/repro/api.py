"""The unified front door: typed scenarios in, typed reports out.

Historically the reproduction grew four divergent entry points —
``simulate(trace, config)``, ``System.run``, ``MultiProgram.run``, and
``BenchContext.run_matrix`` — each with its own calling convention and
none aware of the others' caching.  This module collapses them behind
one typed facade:

* :class:`ScenarioSpec` — one *scenario*: a workload (or a
  multiprogrammed mix of workloads), a :class:`~repro.sim.config.
  SystemConfig`, the trace seed/scale, and optional engine/budget
  overrides;
* :func:`run` / :meth:`Session.run` — simulate one scenario, returning
  a :class:`RunReport`;
* :meth:`Session.sweep` — run a batch through the sharded async
  scheduler (:mod:`repro.serve`), deduplicating against the session's
  content-addressed result store so repeated sweeps are served from
  disk instead of resimulated.

``run(spec)`` is bit-identical to the legacy ``simulate(trace,
config)`` path — it drives the same :class:`~repro.sim.system.System`
through the same trace cache — and the equivalence is pinned by
``tests/integration/test_serve_scheduler.py``.

Public-vs-internal boundary: everything exported from ``repro``
(``__init__.__all__``) is stable API; ``System``, ``MultiProgram``, and
``BenchContext`` remain importable as the engine room but their calling
conventions may change — new code should enter through this module.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .bench.runner import DEFAULT_SEED, BenchContext
from .core.backends import get_backend, list_backends
from .errors import SpecValidationError
from .sim.config import SystemConfig, paper_base
from .sim.engine import vector_config_supported
from .sim.multiprog import (
    DEFAULT_QUANTUM_REFS,
    DEFAULT_SWITCH_COST,
    run_job_mix,
)
from .sim.results import RunResult
from .sim.stats import RunStats
from .workloads import workload_names

__all__ = [
    "RunReport",
    "ScenarioSpec",
    "Session",
    "config_from_tree",
    "get_backend",
    "list_backends",
    "run",
    "spec_from_doc",
    "spec_to_doc",
    "validate_spec",
]

#: Former re-exports of backend internals, now served lazily through
#: ``__getattr__`` with a DeprecationWarning: the facade's stable
#: surface is the registry (``list_backends``/``get_backend``), not the
#: mtlb backend's implementation classes.
_DEPRECATED_REEXPORTS = {
    "Mtlb": "repro.core.mtlb",
    "ShadowPageTable": "repro.core.shadow_table",
}


def __getattr__(name: str):
    module = _DEPRECATED_REEXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib
    import warnings

    warnings.warn(
        f"importing {name} from repro.api is deprecated; the stable "
        "surface is the backend registry (repro.api.list_backends / "
        f"get_backend) — import {name} from {module} if you need the "
        "implementation class",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module), name)

_ENGINES = (None, "auto", "scalar", "vector")


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario: everything needed to name and run a simulation.

    ``workload`` is a registered workload name, or a tuple of names for
    a multiprogrammed mix (time-sliced on one machine).  ``scale``
    defaults to the running session's per-workload scale;  ``engine``
    overrides ``config.engine`` for this scenario only.  Engine and
    budget overrides — including the supervision knobs
    ``deadline_seconds`` / ``max_attempts``, which bound how long and
    how often a supervised worker may try this scenario — never change
    results, so they are excluded from the scenario's store fingerprint
    (the fingerprint hashes only the canonical scenario identity:
    workload, config, scale, seed, and mix scheduling shape).
    """

    workload: Union[str, Tuple[str, ...]]
    config: SystemConfig = field(default_factory=paper_base)
    seed: int = DEFAULT_SEED
    scale: Optional[float] = None
    engine: Optional[str] = None
    max_references: Optional[int] = None
    #: Mix-only scheduling shape (ignored for single-workload specs).
    quantum_refs: int = DEFAULT_QUANTUM_REFS
    switch_cost: int = DEFAULT_SWITCH_COST
    #: Supervision budget overrides (None = the sweep policy's
    #: defaults); result-irrelevant, so fingerprint-excluded.
    deadline_seconds: Optional[float] = None
    max_attempts: Optional[int] = None
    #: Translation backend override (``repro.core.backends`` registry
    #: name).  Folded into ``config.backend`` at construction — unlike
    #: the engine override it *is* result-relevant, so it reaches the
    #: store fingerprint through the config tree.  ``None`` keeps
    #: whatever the config says (default ``"mtlb"``).
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.workload, (list, tuple)):
            object.__setattr__(self, "workload", tuple(self.workload))
        if self.backend is not None:
            get_backend(self.backend)  # typed UnknownBackend fail-fast
            if self.backend != self.config.backend:
                try:
                    object.__setattr__(
                        self,
                        "config",
                        dataclasses.replace(
                            self.config, backend=self.backend
                        ),
                    )
                except SpecValidationError:
                    raise
                except ValueError as exc:
                    raise SpecValidationError(str(exc)) from exc
        if self.engine not in _ENGINES:
            raise SpecValidationError(
                f"engine must be one of {_ENGINES[1:]}, "
                f"got {self.engine!r}"
            )
        if self.scale is not None and self.scale <= 0:
            raise SpecValidationError(
                f"scale must be positive, got {self.scale}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise SpecValidationError(
                f"deadline_seconds must be positive, got "
                f"{self.deadline_seconds}"
            )
        if self.max_attempts is not None and self.max_attempts < 1:
            raise SpecValidationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )

    @property
    def is_mix(self) -> bool:
        return not isinstance(self.workload, str)

    @property
    def workloads(self) -> Tuple[str, ...]:
        """The workload names, mix or not, always as a tuple."""
        return self.workload if self.is_mix else (self.workload,)

    def resolved_config(self) -> SystemConfig:
        """The config with this spec's engine override applied."""
        if self.engine is None or self.engine == self.config.engine:
            return self.config
        return dataclasses.replace(self.config, engine=self.engine)

    @property
    def label(self) -> str:
        """``workload|config`` key, the report/snapshot row name."""
        name = "+".join(self.workloads)
        return f"{name}|{self.config.label}"


def validate_spec(spec: ScenarioSpec) -> None:
    """Reject a spec that cannot run, *before* any worker is spawned.

    This is the fail-fast layer the CLI and the scheduler share: an
    ``engine='vector'`` request on an unbatchable configuration used to
    die inside a shard worker with a bare
    :class:`~repro.errors.SimulationError`; now it raises
    :class:`~repro.errors.SpecValidationError` in the submitting
    process.  Since the PR-8 lift every expressible configuration
    batches, so the probe passes today — it stays wired as the
    pre-spawn gate for future unbatchable backends.
    """
    known = set(workload_names())
    for name in spec.workloads:
        if name not in known:
            raise SpecValidationError(
                f"unknown workload {name!r}; registered workloads: "
                f"{', '.join(sorted(known))}"
            )
    config = spec.resolved_config()
    if config.engine == "vector":
        ok, why = vector_config_supported(config)
        if not ok:
            raise SpecValidationError(
                f"engine='vector' cannot batch this configuration: "
                f"{why}; drop the override (engine='auto' falls back "
                "to the scalar engine) or fix the configuration"
            )
    if spec.is_mix and not spec.workloads:
        raise SpecValidationError("a mix needs at least one workload")
    if spec.is_mix and spec.quantum_refs <= 0:
        raise SpecValidationError("quantum_refs must be positive")


# ---------------------------------------------------------------------- #
# Wire codec (the daemon's JSON protocol, DESIGN.md §14)
# ---------------------------------------------------------------------- #


def _coerce(hint, value):
    """Rebuild one JSON value against its declared dataclass field type.

    JSON flattens tuples to lists and nested dataclasses to dicts; this
    undoes exactly those two lossy steps so a round-tripped config tree
    compares (and fingerprints) identical to the original.
    """
    import typing

    if value is None:
        return None
    if dataclasses.is_dataclass(hint) and isinstance(value, dict):
        return _dataclass_from_tree(hint, value)
    origin = typing.get_origin(hint)
    if origin is Union:
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        return _coerce(args[0], value) if len(args) == 1 else value
    if origin is tuple and isinstance(value, (list, tuple)):
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_coerce(args[0], v) for v in value)
        if args and len(args) == len(value):
            return tuple(_coerce(a, v) for a, v in zip(args, value))
        return tuple(value)
    return value


def _dataclass_from_tree(cls, tree: Dict[str, object]):
    """Instantiate *cls* from a JSON tree, recursing into nested
    dataclass fields; unknown keys are a hard error (a client built
    against a newer schema must fail loudly, not silently drop knobs)."""
    import typing

    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(tree) - names
    if unknown:
        raise SpecValidationError(
            f"unknown {cls.__name__} field(s): "
            f"{', '.join(sorted(map(str, unknown)))}"
        )
    hints = typing.get_type_hints(cls)
    kwargs = {
        name: _coerce(hints.get(name), value)
        for name, value in tree.items()
    }
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(
            f"bad {cls.__name__} document: {exc}"
        ) from exc


def config_from_tree(tree: Dict[str, object]) -> SystemConfig:
    """Rebuild a :class:`~repro.sim.config.SystemConfig` from its
    ``dataclasses.asdict`` JSON tree.

    The round trip is fingerprint-exact: ``config_from_tree(
    json.loads(json.dumps(dataclasses.asdict(cfg))))`` produces a
    config whose canonical scenario document hashes to the same store
    address as ``cfg`` — which is what lets a daemon client submit full
    config trees and still share the store with local batch sweeps.
    """
    if not isinstance(tree, dict):
        raise SpecValidationError(
            f"config must be an object, got {type(tree).__name__}"
        )
    return _dataclass_from_tree(SystemConfig, tree)


def spec_to_doc(spec: ScenarioSpec) -> Dict[str, object]:
    """One spec as a JSON-ready document (the daemon wire format)."""
    doc = dataclasses.asdict(spec)
    doc["workload"] = (
        list(spec.workloads) if spec.is_mix else spec.workload
    )
    return doc


def spec_from_doc(doc: Dict[str, object]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from :func:`spec_to_doc` output.

    Raises :class:`~repro.errors.SpecValidationError` on any malformed
    document — the daemon maps that to HTTP 400 before any queueing.
    """
    if not isinstance(doc, dict):
        raise SpecValidationError(
            f"spec must be an object, got {type(doc).__name__}"
        )
    data = dict(doc)
    workload = data.pop("workload", None)
    if workload is None:
        raise SpecValidationError("spec document needs a 'workload'")
    if isinstance(workload, list):
        workload = tuple(workload)
    tree = data.pop("config", None)
    config = paper_base() if tree is None else config_from_tree(tree)
    names = {
        f.name for f in dataclasses.fields(ScenarioSpec)
    } - {"workload", "config"}
    unknown = set(data) - names
    if unknown:
        raise SpecValidationError(
            f"unknown spec field(s): "
            f"{', '.join(sorted(map(str, unknown)))}"
        )
    try:
        return ScenarioSpec(workload=workload, config=config, **data)
    except (TypeError, ValueError) as exc:
        if isinstance(exc, SpecValidationError):
            raise
        raise SpecValidationError(
            f"bad spec document: {exc}"
        ) from exc


@dataclass
class RunReport:
    """Outcome of one scenario, however it was served.

    ``cache_hit`` says the stats came from the content-addressed store
    rather than a fresh simulation; either way ``stats`` is the same
    bit-identical :class:`~repro.sim.stats.RunStats`.  ``error`` is set
    (and ``stats`` is None) when the scenario failed in a sweep run
    with ``raise_errors=False``.
    """

    spec: ScenarioSpec
    stats: Optional[RunStats]
    fingerprint: Optional[str] = None
    cache_hit: bool = False
    metrics: Optional[Dict[str, float]] = None
    error: Optional[BaseException] = None
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def engine(self) -> str:
        """Engine that produced the stats: ``"vector"``/``"scalar"``,
        or ``""`` when unknown (a failed run, or a store record written
        before the metric existed).  Derived from the
        ``sim.engine_resolved`` registry metric so it survives every
        serving path — fresh serial runs, shard workers, and
        content-addressed store hits — and daemon tenants can see which
        engine served their scenario.
        """
        if self.metrics is None:
            return ""
        flag = self.metrics.get("sim.engine_resolved")
        if flag is None:
            return ""
        return "vector" if flag else "scalar"

    @property
    def total_cycles(self) -> int:
        if self.stats is None:
            raise ValueError(f"scenario failed: {self.error}")
        return self.stats.total_cycles

    def to_result(self) -> RunResult:
        """The legacy :class:`~repro.sim.results.RunResult` view."""
        if self.stats is None:
            raise ValueError(f"scenario failed: {self.error}")
        return RunResult(
            workload="+".join(self.spec.workloads),
            config_label=self.spec.config.label,
            stats=self.stats,
            metrics=self.metrics,
            engine=self.engine,
        )

    def stats_dict(self) -> Dict[str, object]:
        if self.stats is None:
            raise ValueError(f"scenario failed: {self.error}")
        return dataclasses.asdict(self.stats)


class Session:
    """One scenario-service session: trace cache + result store + sweeps.

    A Session owns a :class:`~repro.bench.runner.BenchContext` (input
    scales, on-disk trace cache, seed) and, optionally, a
    :class:`~repro.serve.store.ResultStore`.  ``run`` serves one
    scenario — from the store when possible — and ``sweep`` fans a
    batch out through the sharded async scheduler.
    """

    def __init__(
        self,
        quick: Optional[bool] = None,
        scales: Optional[Dict[str, float]] = None,
        cache_dir: Optional[Path] = None,
        seed: int = DEFAULT_SEED,
        store: Union[None, str, Path, "object"] = None,
        jobs: Optional[int] = None,
        engine: Optional[str] = None,
        sanitize: bool = False,
        max_references: Optional[int] = None,
    ) -> None:
        from .serve.store import ResultStore  # api never cycles serve

        self.context = BenchContext(
            quick=quick,
            scales=scales,
            cache_dir=cache_dir,
            seed=seed,
            max_references=max_references,
            jobs=jobs,
            engine=engine,
            sanitize=sanitize,
        )
        if store is None or isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(Path(store))
        self.jobs = jobs

    # -- single scenario ------------------------------------------------ #

    def run(self, spec: ScenarioSpec) -> RunReport:
        """Simulate (or serve from the store) one scenario."""
        from .serve.scheduler import (
            execute_spec,
            spec_fingerprint,
            spec_scale,
        )

        validate_spec(spec)
        fingerprint = spec_fingerprint(spec, self.context)
        if self.store is not None and fingerprint is not None:
            record = self.store.get(fingerprint)
            if record is not None:
                return RunReport(
                    spec=spec,
                    stats=record.run_stats(),
                    fingerprint=fingerprint,
                    cache_hit=True,
                    metrics=record.metrics,
                )
        start = time.perf_counter()
        result = execute_spec(self.context, spec)
        wall = time.perf_counter() - start
        if self.store is not None and fingerprint is not None:
            from .serve.fingerprint import canonical_scenario

            self.store.put(
                fingerprint,
                workload="+".join(spec.workloads),
                config_label=spec.config.label,
                stats=result.stats,
                metrics=result.metrics,
                meta=self._store_meta(spec),
                scenario=canonical_scenario(
                    spec.workload,
                    spec.config,
                    spec_scale(spec, self.context),
                    spec.seed,
                    quantum_refs=(
                        spec.quantum_refs if spec.is_mix else None
                    ),
                    switch_cost=(
                        spec.switch_cost if spec.is_mix else None
                    ),
                ),
            )
        return RunReport(
            spec=spec,
            stats=result.stats,
            fingerprint=fingerprint,
            cache_hit=False,
            metrics=result.metrics,
            wall_seconds=wall,
        )

    # -- batches --------------------------------------------------------- #

    def sweep(
        self,
        specs: Sequence[ScenarioSpec],
        jobs: Optional[int] = None,
        raise_errors: bool = True,
        progress: bool = False,
    ) -> List[RunReport]:
        """Run a batch through the sharded scheduler; reports in order."""
        scheduler = self.scheduler(jobs=jobs, progress=progress)
        return scheduler.sweep(specs, raise_errors=raise_errors)

    def scheduler(
        self, jobs: Optional[int] = None, progress: bool = False
    ):
        """A :class:`~repro.serve.scheduler.SweepScheduler` over this
        session's context and store (the async submit/gather surface)."""
        from .serve.scheduler import SweepScheduler

        return SweepScheduler(
            context=self.context,
            store=self.store,
            jobs=jobs if jobs is not None else self.jobs,
            progress_cb=print if progress else None,
        )

    # -- helpers --------------------------------------------------------- #

    def scale_of(self, spec: ScenarioSpec):
        """The input scale(s) a spec resolves to under this session:
        one float, or one per mix member."""
        from .serve.scheduler import spec_scale

        return spec_scale(spec, self.context)

    def _store_meta(self, spec: ScenarioSpec) -> Dict[str, object]:
        from ._version import __version__

        return {
            "seed": spec.seed,
            "quick": self.context.quick,
            "scale": self.scale_of(spec),
            "repro_version": __version__,
        }

    def status(self) -> Dict[str, object]:
        """Store inventory (empty mapping when no store is attached)."""
        return self.store.status() if self.store is not None else {}


def run(spec: ScenarioSpec) -> RunReport:
    """Run one scenario with session defaults (no result store).

    The one-line replacement for ``simulate(build_workload(...), cfg)``::

        from repro import ScenarioSpec, paper_mtlb, run
        report = run(ScenarioSpec("em3d", paper_mtlb(96), scale=0.25))
        print(report.stats.total_cycles)
    """
    return Session().run(spec)
