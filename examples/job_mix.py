#!/usr/bin/env python3
"""Superpages under multiprogramming.

Two compress95 instances time-slice one machine.  Every context switch
flushes the (untagged) CPU TLB, so each quantum starts by re-faulting the
working set: hundreds of base-page refills on the conventional system,
a handful of superpage refills on the MTLB system — whose MTLB state,
being physically addressed, survives the switch entirely.

Run:  python examples/job_mix.py
"""

from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.multiprog import run_job_mix
from repro.workloads import build_workload


def main():
    print("generating two compress95 instances...")
    trace_a = build_workload("compress95", scale=0.08, seed=1)
    trace_b = build_workload("compress95", scale=0.08, seed=2)
    trace_b.name = "compress95-b"

    header = (
        f"{'quantum':>9} | {'config':>16} | {'switches':>8} | "
        f"{'TLB miss cycles':>15} | {'total cycles':>13}"
    )
    print(header)
    print("-" * len(header))
    for quantum in (200_000, 50_000, 12_500):
        for config in (paper_no_mtlb(96), paper_mtlb(96)):
            mix = run_job_mix(
                config, [trace_a, trace_b], quantum_refs=quantum
            )
            stats = mix.result.stats
            print(
                f"{quantum:>9,} | {config.label:>16} | "
                f"{mix.context_switches:>8} | "
                f"{stats.tlb_miss_cycles:>15,} | "
                f"{mix.total_cycles:>13,}"
            )
    print(
        "\nshrinking the quantum multiplies the conventional system's "
        "TLB refill work;\nthe superpage system's stays near zero "
        "(one TLB entry re-faults per region)."
    )


if __name__ == "__main__":
    main()
