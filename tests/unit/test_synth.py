"""Unit and property tests for the synthetic reference generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import synth


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestSequential:
    def test_basic(self):
        out = synth.sequential(100, 64, stride=8)
        assert list(out) == [100 + 8 * i for i in range(8)]

    def test_wraps(self):
        out = synth.sequential(0, 16, stride=8, count=5)
        assert list(out) == [0, 8, 0, 8, 0]

    def test_strided(self):
        assert list(synth.strided(10, 3, 100)) == [10, 110, 210]

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            synth.sequential(0, 16, stride=0)


class TestRandom:
    def test_uniform_in_bounds(self, rng):
        out = synth.uniform_random(rng, 0x1000, 0x800, 1000)
        assert out.min() >= 0x1000
        assert out.max() < 0x1800
        assert (out % 8 == 0).all()

    def test_zipf_skewed(self, rng):
        out = synth.zipf_random(rng, 0, 1 << 20, 20_000, s=1.5)
        _vals, counts = np.unique(out, return_counts=True)
        # A genuinely skewed distribution: the busiest address gets far
        # more than the mean.
        assert counts.max() > 20 * counts.mean()

    def test_hot_cold_page_concentration(self, rng):
        out = synth.hot_cold(
            rng, 0, 256 << 12, 50_000, hot_pages=16, hot_fraction=0.9
        )
        pages, counts = np.unique(out >> 12, return_counts=True)
        top16 = np.sort(counts)[-16:].sum()
        assert top16 / counts.sum() > 0.85
        assert len(pages) > 16  # the cold tail exists

    def test_hot_cold_all_cold(self, rng):
        out = synth.hot_cold(
            rng, 0, 64 << 12, 10_000, hot_pages=4, hot_fraction=0.0
        )
        pages = np.unique(out >> 12)
        assert len(pages) > 32

    def test_hot_cold_validation(self, rng):
        with pytest.raises(ValueError):
            synth.hot_cold(rng, 0, 100, 10, hot_pages=1, hot_fraction=0.5)
        with pytest.raises(ValueError):
            synth.hot_cold(rng, 0, 1 << 20, 10, hot_pages=1, hot_fraction=1.5)


class TestStructured:
    def test_pointer_chase_visits_each_once(self, rng):
        out = synth.pointer_chase_order(rng, 0x1000, 64, 32)
        assert len(out) == 64
        assert len(np.unique(out)) == 64
        assert out.min() >= 0x1000 and out.max() < 0x1000 + 64 * 32

    def test_interleave(self):
        a = np.array([1, 3, 5], dtype=np.int64)
        b = np.array([2, 4, 6], dtype=np.int64)
        assert list(synth.interleave(a, b)) == [1, 2, 3, 4, 5, 6]

    def test_interleave_truncates_to_shortest(self):
        a = np.array([1, 3, 5], dtype=np.int64)
        b = np.array([2, 4], dtype=np.int64)
        assert list(synth.interleave(a, b)) == [1, 2, 3, 4]

    def test_interleave_empty_rejected(self):
        with pytest.raises(ValueError):
            synth.interleave()

    def test_expand_records(self):
        starts = np.array([100, 200], dtype=np.int64)
        out = synth.expand_records(starts, fields=3, field_stride=8)
        assert list(out) == [100, 108, 116, 200, 208, 216]

    def test_expand_records_validation(self):
        with pytest.raises(ValueError):
            synth.expand_records(np.array([1]), fields=0)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_hot_cold_stays_in_region(count, hot_pages, hot_fraction):
    rng = np.random.default_rng(0)
    length = 128 << 12
    out = synth.hot_cold(
        rng, 0x40_0000, length, count, hot_pages=hot_pages,
        hot_fraction=hot_fraction,
    )
    assert len(out) == count
    assert out.min() >= 0x40_0000
    assert out.max() < 0x40_0000 + length
    assert (out % 8 == 0).all()
