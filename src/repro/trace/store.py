"""Content-addressed, chunk-compressed columnar trace store.

The legacy cache (:mod:`repro.trace.io`) keeps one monolithic ``.npz``
per (workload, scale, seed): every reader decompresses a private heap
copy, the filename keys scale through ``%g`` (collision-prone), and a
cold sweep has every worker generate the same trace at once.  This
module replaces that with a small content-addressed store:

``<root>/<aa>/<address>/``
    One committed entry per trace, where ``address`` is a SHA-256 over
    the canonical identity ``{schema, workload, scale_hex, seed}`` —
    scale keyed by ``float.hex()``, so 0.3 and the float one ulp above
    it are distinct entries instead of silently sharing a file.

``manifest.json``
    The entry's metadata: item list (kernel events inline, segments by
    index), per-segment raw-column extents, the chunk table, and a CRC32
    self-checksum.

``chunks.bin``
    The durable payload: each segment's columns split into fixed
    *reference*-count chunks, each chunk zlib-compressed and carrying a
    CRC32 of its raw bytes.  Append-only while streaming, so a chunk is
    either fully present or past the committed high-water mark — never
    torn.

``cols.raw``
    A regenerable decompressed materialisation: segment-major,
    column-major, 16-byte aligned, so readers map it with
    ``np.memmap(mode="r")`` and slice zero-copy column views.  Parallel
    sweep shards and daemon workers loading the same trace then share
    one set of page-cache pages instead of N private decompressed
    copies.  If it is missing or the wrong size it is rebuilt from
    ``chunks.bin`` (verifying every chunk CRC on the way).

Chunk lookup goes through :class:`SparseChunkIndex`, a two-level sparse
radix over global reference index — the same L1/L2 split (and cached
last lookup) the paper's ShadowMemory uses for shadow page entries, so
a sparse or partially-streamed chunk table costs memory proportional to
what exists, not to the address range.

Cold-population is **single-flight**: a generator takes an ``O_EXCL``
lockfile keyed by the address, peers block until the manifest appears
(stealing locks whose holder died), and exactly one process pays the
generation cost — the thundering herd where every cold worker generated
the same workload is a regression test now.

Operational counters (hits/misses/generated/...) live in a
module-global registry (:func:`store_registry`), deliberately *outside*
``RunResult.metrics``: run metrics are compared bit-for-bit across
engines and cold/warm caches by CI, and store traffic must never show
up there.  The serve layer re-exports them via ``add_source("trace",
trace_metrics_source)``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import time
import zlib
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import TraceCacheCorrupt, TraceStoreCorrupt, TraceStoreTimeout
from ..ioutil import atomic_write_bytes, fsync_dir, unique_tmp_path
from ..obs.registry import TRACE_CHUNKS_PER_LOAD_EDGES, MetricsRegistry
from .io import event_record, load_trace, record_event
from .trace import Segment, Trace

#: Bump on any change to the on-disk layout; participates in the
#: content address, so a schema bump cold-misses rather than misreads.
STORE_SCHEMA = "repro-trace-store/1"

#: References per chunk.  64 Ki refs keeps the largest column chunk
#: (int64 vaddrs) at 512 KB raw — big enough to compress well, small
#: enough that truncation/bit-rot localises to one CRC.
DEFAULT_CHUNK_REFS = 1 << 16

#: Raw column blocks are aligned so int64 views off the byte memmap are
#: aligned views, not copies.
_ALIGN = 16

#: The columnar layout: (attribute, dtype, itemsize).
COLUMNS: Tuple[Tuple[str, type, int], ...] = (
    ("ops", np.uint8, 1),
    ("vaddrs", np.int64, 8),
    ("gaps", np.int32, 4),
)

#: Legacy cache filename, as written by the pre-store harness.
LEGACY_NAME_RE = re.compile(
    r"^(?P<workload>.+)_s(?P<scale>[0-9.eE+-]+)_seed(?P<seed>\d+)\.npz$"
)


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def trace_address(workload: str, scale: float, seed: int) -> str:
    """Content address for one (workload, scale, seed) identity.

    Scale enters as ``float.hex()`` — the exact bit pattern — fixing the
    legacy cache's ``%g`` keying, under which 0.3 and
    0.30000000000000004 printed identically and shared (clobbered) one
    file while ``resolve_scales`` fingerprinted them as distinct runs.
    """
    key = {
        "schema": STORE_SCHEMA,
        "workload": workload,
        "scale_hex": float(scale).hex(),
        "seed": int(seed),
    }
    digest = hashlib.sha256(_canonical(key).encode("utf-8")).hexdigest()
    return digest[:40]


# ---------------------------------------------------------------------- #
# Operational metrics (kept out of RunResult.metrics — see module doc)
# ---------------------------------------------------------------------- #

_REGISTRY = MetricsRegistry()


def store_registry() -> MetricsRegistry:
    """The process-wide trace-store metrics registry."""
    return _REGISTRY


def trace_metrics_source() -> Dict[str, float]:
    """Snapshot for ``MetricsRegistry.add_source("trace", ...)``.

    Strips the ``trace.`` prefix so the consuming registry's prefix
    restores it instead of doubling it.
    """
    out: Dict[str, float] = {}
    for name, value in _REGISTRY.collect().items():
        key = name[len("trace."):] if name.startswith("trace.") else name
        out[key] = value
    return out


def _count(name: str, amount: float = 1) -> None:
    _REGISTRY.counter(name).inc(amount)


def _chunk_histogram():
    return _REGISTRY.histogram(
        "trace.store.chunks_per_load", TRACE_CHUNKS_PER_LOAD_EDGES
    )


# ---------------------------------------------------------------------- #
# Two-level sparse chunk index (the ShadowMemory L1/L2 idiom)
# ---------------------------------------------------------------------- #


class SparseChunkIndex:
    """Map a global reference index to its chunk id, sparsely.

    Chunk slot ``ref // chunk_refs`` is split into an L1 directory of
    lazily-allocated L2 pages of ``2**l2_bits`` slots — the same shape
    as the paper's two-level shadow page table, including the cached
    last (page, entries) pair that makes sequential lookups O(1)
    without touching the directory.
    """

    def __init__(self, chunk_refs: int, l2_bits: int = 6) -> None:
        if chunk_refs <= 0:
            raise ValueError("chunk_refs must be positive")
        self.chunk_refs = chunk_refs
        self.l2_bits = l2_bits
        self._l2_size = 1 << l2_bits
        self._l1: List[Optional[List[Optional[int]]]] = []
        self._cached_page = -1
        self._cached_entries: Optional[List[Optional[int]]] = None

    def _entries_for(self, page: int, create: bool) -> Optional[list]:
        if page == self._cached_page:
            return self._cached_entries
        l1_slot = page >> self.l2_bits
        if l1_slot >= len(self._l1):
            if not create:
                return None
            self._l1.extend([None] * (l1_slot + 1 - len(self._l1)))
        entries = self._l1[l1_slot]
        if entries is None:
            if not create:
                return None
            entries = [None] * self._l2_size
            self._l1[l1_slot] = entries
        self._cached_page = page
        self._cached_entries = entries
        return entries

    def insert(self, chunk_id: int, first_ref: int) -> None:
        """Record that *chunk_id* starts at global reference *first_ref*."""
        if first_ref % self.chunk_refs:
            raise ValueError(
                f"chunk start {first_ref} is not a multiple of "
                f"chunk_refs={self.chunk_refs}"
            )
        page = first_ref // self.chunk_refs
        entries = self._entries_for(page, create=True)
        entries[page & (self._l2_size - 1)] = chunk_id

    def lookup(self, ref: int) -> Optional[int]:
        """Chunk id covering global reference *ref*, or None."""
        if ref < 0:
            return None
        page = ref // self.chunk_refs
        entries = self._entries_for(page, create=False)
        if entries is None:
            return None
        return entries[page & (self._l2_size - 1)]

    def window(self, start_ref: int, stop_ref: int) -> List[int]:
        """Chunk ids overlapping ``[start_ref, stop_ref)``, in order."""
        out: List[int] = []
        if stop_ref <= start_ref:
            return out
        first = start_ref // self.chunk_refs
        last = (stop_ref - 1) // self.chunk_refs
        for page in range(first, last + 1):
            entries = self._entries_for(page, create=False)
            if entries is None:
                continue
            chunk = entries[page & (self._l2_size - 1)]
            if chunk is not None:
                out.append(chunk)
        return out

    @property
    def l2_pages_allocated(self) -> int:
        return sum(1 for entries in self._l1 if entries is not None)


class TraceChunkIndex:
    """Per-segment chunk lookup for one trace.

    Chunk boundaries are aligned *within* each segment (a new segment
    always opens a new chunk), so each segment gets its own
    :class:`SparseChunkIndex` keyed by in-segment reference offset and
    this wrapper routes ``(segment, ref)`` queries to it.
    """

    def __init__(self, chunk_refs: int) -> None:
        self.chunk_refs = chunk_refs
        self._per_segment: Dict[int, SparseChunkIndex] = {}

    def insert(self, chunk_id: int, seg: int, start: int) -> None:
        index = self._per_segment.get(seg)
        if index is None:
            index = self._per_segment[seg] = SparseChunkIndex(
                self.chunk_refs
            )
        index.insert(chunk_id, start)

    def lookup(self, seg: int, ref: int) -> Optional[int]:
        index = self._per_segment.get(seg)
        return None if index is None else index.lookup(ref)

    def window(self, seg: int, start: int, stop: int) -> List[int]:
        index = self._per_segment.get(seg)
        return [] if index is None else index.window(start, stop)

    @property
    def l2_pages_allocated(self) -> int:
        return sum(
            index.l2_pages_allocated
            for index in self._per_segment.values()
        )


# ---------------------------------------------------------------------- #
# Streaming writer
# ---------------------------------------------------------------------- #


class TraceWriter:
    """Stream one trace into a staging directory, then commit by rename.

    Protocol: ``begin(name, text_base, text_size)`` once, then ``add``
    items (or wrap an item iterator in :meth:`tee` to persist while a
    simulator consumes), then :meth:`close` to commit or :meth:`abort`
    to discard.  Chunks are flushed append-only as segments arrive, so
    :meth:`read_committed` can serve any already-written chunk —
    CRC-verified — while later chunks are still being generated.
    """

    def __init__(
        self,
        store: "TraceStore",
        address: str,
        identity: Dict[str, object],
        chunk_refs: int,
    ) -> None:
        self._store = store
        self.address = address
        self._identity = dict(identity)
        self.chunk_refs = chunk_refs
        self._staging = unique_tmp_path(store.root / "tmp" / address)
        self._staging.mkdir(parents=True, exist_ok=False)
        self._chunks_fh = open(self._staging / "chunks.bin", "wb")
        self._raw_fh = open(self._staging / "cols.raw", "wb")
        self._items: List[dict] = []
        self._segments: List[dict] = []
        self._chunks: List[dict] = []
        self.index = TraceChunkIndex(chunk_refs)
        self._chunk_pos = 0
        self._raw_pos = 0
        self._raw_crc = 0
        self._total_refs = 0
        self._header: Optional[dict] = None
        self._done = False

    # -- item ingestion ------------------------------------------------ #

    def begin(self, name: str, text_base: int, text_size: int) -> None:
        if self._header is not None:
            raise RuntimeError("TraceWriter.begin() called twice")
        self._header = {
            "name": name,
            "text_base": int(text_base),
            "text_size": int(text_size),
        }

    def add(self, item) -> None:
        if self._header is None:
            raise RuntimeError("TraceWriter.add() before begin()")
        if self._done:
            raise RuntimeError("TraceWriter already closed")
        if isinstance(item, Segment):
            self._add_segment(item)
        else:
            self._items.append(event_record(item))

    def tee(self, items: Iterable) -> Iterator:
        """Yield *items* unchanged while persisting each one."""
        for item in items:
            self.add(item)
            yield item

    def _write_raw(self, data: bytes) -> int:
        pad = (-self._raw_pos) % _ALIGN
        if pad:
            zeros = b"\0" * pad
            self._raw_fh.write(zeros)
            self._raw_crc = zlib.crc32(zeros, self._raw_crc)
            self._raw_pos += pad
        offset = self._raw_pos
        self._raw_fh.write(data)
        self._raw_crc = zlib.crc32(data, self._raw_crc)
        self._raw_pos += len(data)
        return offset

    def _add_segment(self, seg: Segment) -> None:
        seg_id = len(self._segments)
        columns = {
            name: np.ascontiguousarray(getattr(seg, name), dtype=dtype)
            for name, dtype, _ in COLUMNS
        }
        raw_extents = {}
        for name, _, _ in COLUMNS:
            data = columns[name].tobytes()
            raw_extents[name] = [self._write_raw(data), len(data)]
        self._segments.append(
            {
                "label": seg.label,
                "text_pages": seg.text_pages,
                "refs": seg.refs,
                "first_ref": self._total_refs,
                "raw": raw_extents,
            }
        )
        self._items.append({"kind": "segment", "index": seg_id})
        refs = seg.refs
        start = 0
        while start < refs:
            n = min(self.chunk_refs, refs - start)
            cols = {}
            for name, _, _ in COLUMNS:
                raw = columns[name][start:start + n].tobytes()
                comp = zlib.compress(raw, 6)
                cols[name] = [
                    self._chunk_pos,
                    len(comp),
                    len(raw),
                    zlib.crc32(raw) & 0xFFFFFFFF,
                ]
                self._chunks_fh.write(comp)
                self._chunk_pos += len(comp)
            record = {
                "seg": seg_id,
                "start": start,
                "refs": n,
                "first_ref": self._total_refs + start,
                "cols": cols,
            }
            self.index.insert(len(self._chunks), seg_id, start)
            self._chunks.append(record)
            _count("trace.store.chunks_written")
            start += n
        # Flush so the committed prefix is readable (coherence: a chunk
        # is either fully on disk or beyond the high-water mark).
        self._chunks_fh.flush()
        self._total_refs += refs

    # -- progressive read-back ----------------------------------------- #

    @property
    def chunks_committed(self) -> int:
        return len(self._chunks)

    def read_committed(self, chunk_id: int) -> Dict[str, np.ndarray]:
        """Decompress and CRC-verify one already-flushed chunk."""
        record = self._chunks[chunk_id]
        out: Dict[str, np.ndarray] = {}
        with open(self._staging / "chunks.bin", "rb") as fh:
            for name, dtype, _ in COLUMNS:
                offset, clen, rlen, crc = record["cols"][name]
                fh.seek(offset)
                comp = fh.read(clen)
                raw = zlib.decompress(comp)
                if len(raw) != rlen or zlib.crc32(raw) & 0xFFFFFFFF != crc:
                    raise TraceStoreCorrupt(
                        self._staging, f"streamed chunk {chunk_id} CRC mismatch"
                    )
                out[name] = np.frombuffer(raw, dtype=dtype)
        return out

    # -- commit / discard ---------------------------------------------- #

    def close(self) -> Path:
        """Seal the entry: fsync payloads, write the manifest, rename
        the staging directory into its committed location."""
        if self._done:
            raise RuntimeError("TraceWriter already closed")
        if self._header is None:
            raise RuntimeError("TraceWriter.close() before begin()")
        self._done = True
        for fh in (self._chunks_fh, self._raw_fh):
            fh.flush()
            os.fsync(fh.fileno())
            fh.close()
        manifest = dict(self._identity)
        manifest.update(self._header)
        manifest.update(
            {
                "schema": STORE_SCHEMA,
                "address": self.address,
                "chunk_refs": self.chunk_refs,
                "total_refs": self._total_refs,
                "items": self._items,
                "segments": self._segments,
                "chunks": self._chunks,
                "raw_bytes": self._raw_pos,
                "raw_crc": self._raw_crc & 0xFFFFFFFF,
            }
        )
        manifest["checksum"] = (
            zlib.crc32(_canonical(manifest).encode("utf-8")) & 0xFFFFFFFF
        )
        atomic_write_bytes(
            self._staging / "manifest.json",
            (json.dumps(manifest, indent=1) + "\n").encode("utf-8"),
        )
        final = self._store.entry_dir(self.address)
        final.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.rename(self._staging, final)
        except OSError:
            if (final / "manifest.json").exists():
                # Lost a commit race (possible on migrate paths that
                # steal a stale lock); the committed entry has the same
                # content address, so ours is redundant.
                shutil.rmtree(self._staging, ignore_errors=True)
            else:
                raise
        fsync_dir(final.parent)
        return final

    def abort(self) -> None:
        """Discard the staging directory; safe to call twice."""
        if self._done:
            return
        self._done = True
        for fh in (self._chunks_fh, self._raw_fh):
            try:
                fh.close()
            except OSError:
                pass
        shutil.rmtree(self._staging, ignore_errors=True)


class StreamedTrace:
    """A trace whose items arrive lazily from a generator.

    Duck-types the four attributes ``System.run`` reads (``name``,
    ``text_base``, ``text_size``, ``items``) so a scenario can start
    simulating the first segment while later ones are still being
    generated (and teed into the store).  Single-use: ``items`` is a
    generator.
    """

    def __init__(
        self, name: str, text_base: int, text_size: int, items: Iterator
    ) -> None:
        self.name = name
        self.text_base = text_base
        self.text_size = text_size
        self.items = items


# ---------------------------------------------------------------------- #
# The store
# ---------------------------------------------------------------------- #


class TraceStore:
    """Content-addressed columnar trace store rooted at one directory."""

    def __init__(
        self,
        root,
        chunk_refs: int = DEFAULT_CHUNK_REFS,
        wait_timeout: float = 600.0,
        stale_after: float = 600.0,
        poll_interval: float = 0.02,
    ) -> None:
        self.root = Path(root)
        self.chunk_refs = int(chunk_refs)
        self.wait_timeout = wait_timeout
        self.stale_after = stale_after
        self.poll_interval = poll_interval

    # -- layout --------------------------------------------------------- #

    def entry_dir(self, address: str) -> Path:
        return self.root / address[:2] / address

    def _lock_path(self, address: str) -> Path:
        return self.root / "locks" / f"{address}.lock"

    def has(self, address: str) -> bool:
        return (self.entry_dir(address) / "manifest.json").exists()

    # -- single-flight lock --------------------------------------------- #

    def _acquire_or_wait(self, address: str) -> bool:
        """Take the generation lock for *address*, or wait it out.

        Returns True when this process holds the lock (it must
        generate, then :meth:`_release`).  Returns False when a peer
        committed the entry while we waited (just load it).  Raises
        :class:`TraceStoreTimeout` if the lock neither clears nor
        commits within ``wait_timeout``.
        """
        lock = self._lock_path(address)
        lock.parent.mkdir(parents=True, exist_ok=True)
        waited = 0.0
        waiting_counted = False
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                try:
                    os.write(fd, f"{os.getpid()}\n".encode("ascii"))
                finally:
                    os.close(fd)
                return True
            if not waiting_counted:
                _count("trace.store.single_flight_waits")
                waiting_counted = True
            if self.has(address):
                return False
            try:
                age = time.time() - os.stat(lock).st_mtime
            except OSError:
                continue  # holder released between open and stat
            if age > self.stale_after:
                try:
                    os.unlink(lock)
                    _count("trace.store.stale_locks")
                except OSError:
                    pass
                continue
            if waited >= self.wait_timeout:
                raise TraceStoreTimeout(address, waited)
            time.sleep(self.poll_interval)
            waited += self.poll_interval

    def _release(self, address: str) -> None:
        try:
            os.unlink(self._lock_path(address))
        except OSError:
            pass

    # -- reading -------------------------------------------------------- #

    def _read_manifest(self, entry: Path) -> dict:
        path = entry / "manifest.json"
        try:
            manifest = json.loads(path.read_text("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            raise TraceStoreCorrupt(entry, f"unreadable manifest ({exc})")
        if not isinstance(manifest, dict):
            raise TraceStoreCorrupt(entry, "manifest is not an object")
        if manifest.get("schema") != STORE_SCHEMA:
            raise TraceStoreCorrupt(
                entry, f"schema {manifest.get('schema')!r} != {STORE_SCHEMA!r}"
            )
        stored = manifest.pop("checksum", None)
        actual = zlib.crc32(_canonical(manifest).encode("utf-8")) & 0xFFFFFFFF
        if stored != actual:
            raise TraceStoreCorrupt(entry, "manifest checksum mismatch")
        return manifest

    def _materialize(self, entry: Path, manifest: dict) -> None:
        """Rebuild ``cols.raw`` from the CRC-verified chunks."""
        buf = bytearray(manifest["raw_bytes"])
        segments = manifest["segments"]
        try:
            with open(entry / "chunks.bin", "rb") as fh:
                for chunk_id, record in enumerate(manifest["chunks"]):
                    seg = segments[record["seg"]]
                    for name, _, itemsize in COLUMNS:
                        offset, clen, rlen, crc = record["cols"][name]
                        fh.seek(offset)
                        comp = fh.read(clen)
                        if len(comp) != clen:
                            raise TraceStoreCorrupt(
                                entry,
                                f"chunk {chunk_id} column {name} truncated",
                            )
                        try:
                            raw = zlib.decompress(comp)
                        except zlib.error as exc:
                            raise TraceStoreCorrupt(
                                entry,
                                f"chunk {chunk_id} column {name} "
                                f"undecompressable ({exc})",
                            )
                        if (
                            len(raw) != rlen
                            or zlib.crc32(raw) & 0xFFFFFFFF != crc
                        ):
                            raise TraceStoreCorrupt(
                                entry,
                                f"chunk {chunk_id} column {name} CRC mismatch",
                            )
                        dest = (
                            seg["raw"][name][0]
                            + record["start"] * itemsize
                        )
                        buf[dest:dest + len(raw)] = raw
                    _count("trace.store.chunks_read")
        except OSError as exc:
            raise TraceStoreCorrupt(entry, f"unreadable chunks.bin ({exc})")
        if zlib.crc32(bytes(buf)) & 0xFFFFFFFF != manifest["raw_crc"]:
            raise TraceStoreCorrupt(entry, "materialised raw CRC mismatch")
        atomic_write_bytes(entry / "cols.raw", bytes(buf))

    def _raw_view(
        self, entry: Path, manifest: dict, verify: bool
    ) -> np.ndarray:
        expected = manifest["raw_bytes"]
        path = entry / "cols.raw"
        try:
            size = path.stat().st_size
        except OSError:
            size = -1
        if size != expected:
            self._materialize(entry, manifest)
        if expected == 0:
            return np.zeros(0, dtype=np.uint8)
        raw = np.memmap(path, dtype=np.uint8, mode="r")
        if len(raw) != expected:
            raise TraceStoreCorrupt(entry, "cols.raw resized underfoot")
        if verify:
            if zlib.crc32(raw.tobytes()) & 0xFFFFFFFF != manifest["raw_crc"]:
                raise TraceStoreCorrupt(entry, "cols.raw CRC mismatch")
        return raw

    def load(self, address: str, verify: bool = False) -> Trace:
        """Load a committed entry as a Trace of zero-copy memmap views.

        On corruption the entry is quarantined (moved under
        ``<root>/quarantine/``), counters are bumped, and
        :class:`TraceStoreCorrupt` propagates — callers treat it as a
        miss and regenerate, exactly like the legacy cache's checksum
        path.
        """
        entry = self.entry_dir(address)
        try:
            manifest = self._read_manifest(entry)
            raw = self._raw_view(entry, manifest, verify=verify)
        except TraceStoreCorrupt:
            _count("trace.cache_corrupt")
            _count("trace.store.quarantined")
            self._quarantine(entry)
            raise
        trace = Trace(
            manifest["name"],
            text_base=manifest["text_base"],
            text_size=manifest["text_size"],
        )
        segments = manifest["segments"]
        for item in manifest["items"]:
            if item.get("kind") == "segment":
                seg = segments[item["index"]]
                views = {}
                for name, dtype, _ in COLUMNS:
                    offset, nbytes = seg["raw"][name]
                    views[name] = raw[offset:offset + nbytes].view(dtype)
                trace.add(
                    Segment.trusted(
                        seg["label"],
                        views["ops"],
                        views["vaddrs"],
                        views["gaps"],
                        text_pages=seg["text_pages"],
                    )
                )
            else:
                trace.add(record_event(dict(item)))
        _chunk_histogram().observe(len(manifest["chunks"]))
        return trace

    def chunk_index(self, address: str) -> TraceChunkIndex:
        """Rebuild the two-level chunk index for a committed entry."""
        manifest = self._read_manifest(self.entry_dir(address))
        index = TraceChunkIndex(manifest["chunk_refs"])
        for chunk_id, record in enumerate(manifest["chunks"]):
            index.insert(chunk_id, record["seg"], record["start"])
        return index

    def _quarantine(self, entry: Path) -> None:
        if not entry.exists():
            return
        dest_dir = self.root / "quarantine"
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = unique_tmp_path(dest_dir / entry.name)
        try:
            os.rename(entry, dest)
        except OSError:
            shutil.rmtree(entry, ignore_errors=True)

    # -- writing -------------------------------------------------------- #

    def writer(
        self, workload: str, scale: float, seed: int
    ) -> TraceWriter:
        address = trace_address(workload, scale, seed)
        identity = {
            "workload": workload,
            "scale": float(scale),
            "scale_hex": float(scale).hex(),
            "seed": int(seed),
        }
        return TraceWriter(self, address, identity, self.chunk_refs)

    def put(
        self, trace: Trace, workload: str, scale: float, seed: int
    ) -> str:
        """Import a fully-built trace; no-op if already committed."""
        address = trace_address(workload, scale, seed)
        if self.has(address):
            return address
        if not self._acquire_or_wait(address):
            return address
        try:
            if self.has(address):
                return address
            writer = self.writer(workload, scale, seed)
            try:
                writer.begin(trace.name, trace.text_base, trace.text_size)
                for item in trace.items:
                    writer.add(item)
                writer.close()
            except BaseException:
                writer.abort()
                raise
        finally:
            self._release(address)
        return address

    # -- cache protocol ------------------------------------------------- #

    def get_or_create(
        self,
        workload: str,
        scale: float,
        seed: int,
        produce: Callable[[TraceWriter], None],
        legacy_path: Optional[Path] = None,
        on_corrupt: Optional[Callable[[TraceCacheCorrupt], None]] = None,
    ) -> Trace:
        """Load the trace, generating it exactly once across processes.

        *produce* receives an opened :class:`TraceWriter` (it must call
        ``begin`` and ``add``/``tee``; the store commits).  When
        *legacy_path* names an existing legacy ``.npz`` **and** the
        scale survives the legacy ``%g`` round-trip exactly, the file
        is migrated instead of regenerated — the round-trip guard keeps
        a collision victim (a scale that *prints* like another) from
        inheriting the other scale's trace.
        """
        address = trace_address(workload, scale, seed)
        produced = False
        for _ in range(8):
            if self.has(address):
                try:
                    trace = self.load(address)
                except TraceStoreCorrupt as exc:
                    if on_corrupt is not None:
                        on_corrupt(exc)
                    continue  # quarantined; regenerate below
                if not produced:
                    _count("trace.store.hits")
                return trace
            if not self._acquire_or_wait(address):
                continue  # a peer committed while we waited
            try:
                if self.has(address):
                    continue
                _count("trace.store.misses")
                if legacy_path is not None and self._migrate_one(
                    address, workload, scale, seed, legacy_path, on_corrupt
                ):
                    produced = True
                    continue
                writer = self.writer(workload, scale, seed)
                try:
                    produce(writer)
                    writer.close()
                except BaseException:
                    writer.abort()
                    raise
                _count("trace.store.generated")
                produced = True
                continue
            finally:
                self._release(address)
        raise TraceStoreCorrupt(
            self.entry_dir(address),
            "entry kept failing verification across regeneration attempts",
        )

    def stream_or_load(
        self,
        workload: str,
        scale: float,
        seed: int,
        open_stream: Callable[[], Tuple[Trace, Iterable]],
        on_corrupt: Optional[Callable[[TraceCacheCorrupt], None]] = None,
    ):
        """Like :meth:`get_or_create`, but a cold miss returns a
        :class:`StreamedTrace` that simulates while it persists.

        *open_stream* returns ``(shell, items)``; the shell carries
        name/text_base/text_size, the iterable yields trace items.  The
        consumer drives generation: each consumed item is teed into the
        writer, and exhausting the iterator commits the entry (and
        releases the single-flight lock).  An abandoned iterator aborts
        the staging entry on finalisation.
        """
        address = trace_address(workload, scale, seed)
        if self.has(address):
            try:
                trace = self.load(address)
                _count("trace.store.hits")
                return trace
            except TraceStoreCorrupt as exc:
                if on_corrupt is not None:
                    on_corrupt(exc)
        if not self._acquire_or_wait(address):
            _count("trace.store.hits")
            return self.load(address)
        if self.has(address):  # committed between check and lock
            self._release(address)
            _count("trace.store.hits")
            return self.load(address)
        _count("trace.store.misses")
        try:
            shell, items = open_stream()
            writer = self.writer(workload, scale, seed)
            writer.begin(shell.name, shell.text_base, shell.text_size)
        except BaseException:
            self._release(address)
            raise

        def run() -> Iterator:
            committed = False
            try:
                for item in writer.tee(items):
                    yield item
                writer.close()
                committed = True
                _count("trace.store.generated")
            finally:
                if not committed:
                    writer.abort()
                self._release(address)

        return StreamedTrace(
            shell.name, shell.text_base, shell.text_size, run()
        )

    # -- legacy migration ----------------------------------------------- #

    def _migrate_one(
        self,
        address: str,
        workload: str,
        scale: float,
        seed: int,
        legacy_path: Path,
        on_corrupt: Optional[Callable[[TraceCacheCorrupt], None]],
    ) -> bool:
        """Import one legacy ``.npz`` under the caller-held lock.

        Returns True when the entry was committed from the legacy file.
        Only migrates when the scale survives the ``%g`` round-trip
        exactly — a scale that merely *prints* like the filename's may
        be a collision victim and must regenerate instead.
        """
        legacy_path = Path(legacy_path)
        if not legacy_path.exists():
            return False
        if float(f"{scale:g}") != float(scale):
            return False
        try:
            trace = load_trace(legacy_path)
        except TraceCacheCorrupt as exc:
            _count("trace.cache_corrupt")
            if on_corrupt is not None:
                on_corrupt(exc)
            try:
                legacy_path.unlink()
            except OSError:
                pass
            return False
        writer = self.writer(workload, scale, seed)
        try:
            writer.begin(trace.name, trace.text_base, trace.text_size)
            for item in trace.items:
                writer.add(item)
            writer.close()
        except BaseException:
            writer.abort()
            raise
        _count("trace.store.migrated")
        return True

    def migrate_legacy_dir(
        self, cache_dir, remove: bool = False
    ) -> Dict[str, List[str]]:
        """One-shot migration of a legacy cache directory.

        Parses ``<workload>_s<scale>_seed<seed>.npz`` names, keys each
        entry by the filename's own float (the only identity the legacy
        scheme preserved), and imports it.  Returns name lists under
        ``migrated`` / ``skipped`` / ``corrupt``.
        """
        cache_dir = Path(cache_dir)
        report: Dict[str, List[str]] = {
            "migrated": [], "skipped": [], "corrupt": []
        }
        for path in sorted(cache_dir.glob("*.npz")):
            match = LEGACY_NAME_RE.match(path.name)
            if not match:
                report["skipped"].append(path.name)
                continue
            workload = match["workload"]
            try:
                scale = float(match["scale"])
            except ValueError:
                report["skipped"].append(path.name)
                continue
            seed = int(match["seed"])
            address = trace_address(workload, scale, seed)
            if self.has(address):
                report["skipped"].append(path.name)
            else:
                try:
                    trace = load_trace(path)
                except TraceCacheCorrupt:
                    _count("trace.cache_corrupt")
                    report["corrupt"].append(path.name)
                    continue
                self.put(trace, workload, scale, seed)
                _count("trace.store.migrated")
                report["migrated"].append(path.name)
            if remove:
                try:
                    path.unlink()
                except OSError:
                    pass
        return report

    # -- maintenance ---------------------------------------------------- #

    def ls(self) -> List[dict]:
        """Inventory of committed entries (tolerant of corrupt ones)."""
        rows: List[dict] = []
        if not self.root.exists():
            return rows
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and re.fullmatch(r"[0-9a-f]{2}", shard.name)):
                continue
            for entry in sorted(shard.iterdir()):
                if not entry.is_dir():
                    continue
                try:
                    manifest = self._read_manifest(entry)
                except TraceStoreCorrupt as exc:
                    rows.append(
                        {"address": entry.name, "error": exc.reason}
                    )
                    continue
                rows.append(
                    {
                        "address": entry.name,
                        "workload": manifest.get("workload"),
                        "scale": manifest.get("scale"),
                        "seed": manifest.get("seed"),
                        "refs": manifest.get("total_refs"),
                        "chunks": len(manifest.get("chunks", [])),
                        "raw_bytes": manifest.get("raw_bytes"),
                        "raw_cached": (entry / "cols.raw").exists(),
                    }
                )
        return rows

    def gc(
        self,
        drop_raw: bool = False,
        tmp_grace_seconds: float = 3600.0,
    ) -> Dict[str, int]:
        """Collect abandoned staging dirs, stale locks, and quarantine.

        With ``drop_raw`` the regenerable ``cols.raw`` materialisations
        are deleted too (entries stay loadable; the next reader rebuilds
        from the chunk payload).
        """
        summary = {
            "tmp_dirs": 0, "stale_locks": 0,
            "raw_dropped": 0, "quarantined": 0,
        }
        now = time.time()
        tmp_root = self.root / "tmp"
        if tmp_root.exists():
            for staged in tmp_root.iterdir():
                try:
                    age = now - staged.stat().st_mtime
                except OSError:
                    continue
                if age > tmp_grace_seconds:
                    shutil.rmtree(staged, ignore_errors=True)
                    summary["tmp_dirs"] += 1
        lock_root = self.root / "locks"
        if lock_root.exists():
            for lock in lock_root.glob("*.lock"):
                try:
                    age = now - lock.stat().st_mtime
                except OSError:
                    continue
                if age > self.stale_after:
                    try:
                        lock.unlink()
                        summary["stale_locks"] += 1
                    except OSError:
                        pass
        quarantine = self.root / "quarantine"
        if quarantine.exists():
            summary["quarantined"] = sum(1 for _ in quarantine.iterdir())
        if drop_raw:
            for row in self.ls():
                if row.get("raw_cached"):
                    raw = self.entry_dir(row["address"]) / "cols.raw"
                    try:
                        raw.unlink()
                        summary["raw_dropped"] += 1
                    except OSError:
                        pass
        return summary
