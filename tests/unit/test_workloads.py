"""Unit tests for the workload models: paper layouts and generation
invariants."""

import numpy as np
import pytest

from repro.core.remap import plan_superpages
from repro.trace.events import MapRegion, Remap
from repro.trace.trace import Segment
from repro.workloads import PAPER_SUITE, build_workload, workload_names
from repro.workloads import compress95, em3d, radix


QUICK = 0.03


class TestRegistry:
    def test_paper_suite_registered(self):
        assert set(PAPER_SUITE) <= set(workload_names())

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_workload("nope")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            build_workload("em3d", scale=0)


class TestPaperLayouts:
    """The paper's exact superpage counts (Section 3.1)."""

    def test_compress_region_tilings(self):
        cases = [
            (compress95.TABLES_BASE, compress95.TABLES_BYTES, 10),
            (compress95.ORIG_BASE, compress95.BUFFER_BYTES, 13),
            (compress95.COMP_BASE, compress95.BUFFER_BYTES, 7),
            (compress95.UNCOMP_BASE, compress95.BUFFER_BYTES, 13),
        ]
        for base, length, expected in cases:
            assert len(plan_superpages(base, length)) == expected

    def test_compress_region_sizes_match_paper(self):
        assert compress95.TABLES_BYTES == 557_056
        assert compress95.BUFFER_BYTES == 999_424

    def test_radix_region_tiling(self):
        # 8,437,760 bytes in 14 superpages at the paper's key count.
        assert len(
            plan_superpages(radix.HEAP_BASE, radix.PAPER_REGION_BYTES)
        ) == 14

    def test_radix_full_scale_region_bytes(self):
        trace = build_workload("radix", scale=1.0)
        maps = [e for e in trace.events() if isinstance(e, MapRegion)]
        assert maps[0].length == radix.PAPER_REGION_BYTES

    def test_em3d_region_tiling(self):
        # 1120 pages in 16 superpages.
        assert em3d.REGION_BYTES == 1120 * 4096
        assert len(
            plan_superpages(em3d.HEAP_BASE, em3d.REGION_BYTES)
        ) == 16

    def test_em3d_remaps_after_init(self):
        trace = build_workload("em3d", scale=QUICK)
        kinds = [
            type(item).__name__
            for item in trace.items
            if not isinstance(item, Segment)
        ]
        # Map first, remap only after the init segment ran.
        assert kinds.index("MapRegion") < kinds.index("Remap")
        items = trace.items
        remap_pos = next(
            i for i, it in enumerate(items) if isinstance(it, Remap)
        )
        seg_pos = next(
            i for i, it in enumerate(items) if isinstance(it, Segment)
        )
        assert seg_pos < remap_pos


class TestGenerationInvariants:
    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_deterministic(self, name):
        a = build_workload(name, scale=QUICK, seed=7)
        b = build_workload(name, scale=QUICK, seed=7)
        segs_a = list(a.segments())
        segs_b = list(b.segments())
        assert len(segs_a) == len(segs_b)
        for sa, sb in zip(segs_a, segs_b):
            assert np.array_equal(sa.vaddrs, sb.vaddrs)
            assert np.array_equal(sa.ops, sb.ops)

    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_seed_changes_stream(self, name):
        a = build_workload(name, scale=QUICK, seed=7)
        b = build_workload(name, scale=QUICK, seed=8)
        va = np.concatenate([s.vaddrs for s in a.segments()])
        vb = np.concatenate([s.vaddrs for s in b.segments()])
        assert not np.array_equal(va, vb)

    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_every_reference_is_premapped(self, name):
        """No reference may precede the MapRegion/HeapGrow covering it —
        the invariant the simulator enforces with SimulationError."""
        trace = build_workload(name, scale=QUICK)
        mapped = []

        def covered(page):
            return any(lo <= page < hi for lo, hi in mapped)

        for item in trace.items:
            if isinstance(item, Segment):
                pages = np.unique(item.vaddrs >> 12)
                for page in pages.tolist():
                    assert covered(page), (
                        f"{name}: page {page:#x} referenced before mapping"
                    )
            elif hasattr(item, "length") and not isinstance(item, Remap):
                lo = item.vaddr >> 12
                mapped.append((lo, lo + (item.length >> 12)))

    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_remaps_target_mapped_regions(self, name):
        trace = build_workload(name, scale=QUICK)
        mapped = []
        for item in trace.items:
            if isinstance(item, Remap):
                lo, hi = item.vaddr >> 12, (item.vaddr + item.length) >> 12
                assert any(
                    mlo <= lo and hi <= mhi for mlo, mhi in mapped
                ), f"{name}: remap of unmapped range"
            elif hasattr(item, "length"):
                lo = item.vaddr >> 12
                mapped.append((lo, lo + (item.length >> 12)))

    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_scale_scales_work(self, name):
        small = build_workload(name, scale=QUICK)
        large = build_workload(name, scale=0.5)
        assert large.total_refs > small.total_refs

    def test_vortex_heap_growth_pattern(self):
        """Vortex grows 8 MB first, then 2 MB increments (Section 3.1)."""
        trace = build_workload("vortex", scale=0.2)
        grows = [
            e.length
            for e in trace.events()
            if isinstance(e, MapRegion) and e.vaddr >= 0x1000_0000
        ]
        assert grows[0] == 8 << 20
        assert all(g == 2 << 20 for g in grows[1:])
        assert len(grows) >= 3

    def test_compress_stores_exist(self):
        trace = build_workload("compress95", scale=QUICK)
        assert any(seg.stores for seg in trace.segments())
