"""repro — Superpages backed by shadow memory (ISCA 1998), reproduced.

A library-quality reproduction of Swanson, Stoller & Carter, *Increasing
TLB Reach Using Superpages Backed by Shadow Memory*: a memory-controller
TLB (MTLB) that remaps shadow physical addresses onto discontiguous real
page frames, letting an unmodified CPU TLB map large superpages — plus the
full simulation substrate the paper evaluated it on (CPU TLB, VIPT cache,
Runway-style bus, MMC, a small OS, and models of the five benchmark
programs).

Quickstart::

    from repro import paper_base, paper_mtlb, simulate
    from repro.workloads import build_workload

    trace = build_workload("em3d", scale=0.25)
    base = simulate(trace, paper_base())
    fast = simulate(trace, paper_mtlb(tlb_entries=96))
    print(fast.total_cycles / base.total_cycles)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .core import (
    BASE_PAGE_SIZE,
    SUPERPAGE_SIZES,
    BucketShadowAllocator,
    BuddyShadowAllocator,
    Mtlb,
    MtlbFault,
    PhysicalMemoryMap,
    ShadowPageTable,
    ShadowRegion,
    ShadowSpaceExhausted,
    plan_superpages,
)
from .obs import (
    EventTracer,
    MetricsRegistry,
    ObsCollector,
    ObsConfig,
    diff_snapshots,
    load_snapshot,
    matrix_snapshot,
    run_snapshot,
    write_snapshot,
)
from .sim import (
    RunResult,
    RunStats,
    System,
    SystemConfig,
    figure3_configs,
    figure4_configs,
    paper_base,
    paper_mtlb,
    paper_no_mtlb,
    simulate,
)
from .trace import Trace

__version__ = "1.0.0"

__all__ = [
    "BASE_PAGE_SIZE",
    "SUPERPAGE_SIZES",
    "BucketShadowAllocator",
    "BuddyShadowAllocator",
    "Mtlb",
    "MtlbFault",
    "PhysicalMemoryMap",
    "ShadowPageTable",
    "ShadowRegion",
    "ShadowSpaceExhausted",
    "plan_superpages",
    "EventTracer",
    "MetricsRegistry",
    "ObsCollector",
    "ObsConfig",
    "diff_snapshots",
    "load_snapshot",
    "matrix_snapshot",
    "run_snapshot",
    "write_snapshot",
    "RunResult",
    "RunStats",
    "System",
    "SystemConfig",
    "figure3_configs",
    "figure4_configs",
    "paper_base",
    "paper_mtlb",
    "paper_no_mtlb",
    "simulate",
    "Trace",
    "__version__",
]
