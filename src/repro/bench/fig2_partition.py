"""Experiment E1 — Figure 2: the shadow-space bucket partition.

Figure 2 of the paper tabulates one static partitioning of a 512 MB
pseudo-physical (shadow) address space into superpage buckets.  This
bench reconstructs the table from the live allocator and checks its
arithmetic: the counts and extents match the paper row for row and sum
to exactly 512 MB.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.addrspace import PhysicalMemoryMap
from ..core.shadow_space import (
    FIGURE2_PARTITION,
    BucketShadowAllocator,
    partition_extent,
)
from ..sim.results import render_table

#: The rows exactly as printed in the paper's Figure 2.
PAPER_ROWS: Tuple[Tuple[str, int, str], ...] = (
    ("16KB", 1024, "16MB"),
    ("64KB", 256, "16MB"),
    ("256KB", 128, "32MB"),
    ("1024KB", 64, "64MB"),
    ("4096KB", 32, "128MB"),
    ("16384KB", 16, "256MB"),
)


def run_fig2() -> Tuple[str, List[str]]:
    """Build the allocator, render the Figure 2 table, verify it."""
    allocator = BucketShadowAllocator(PhysicalMemoryMap())
    rows = []
    for size, count, extent in allocator.describe():
        rows.append([f"{size >> 10}KB", count, f"{extent >> 20}MB"])
    report = render_table(
        ["superpage size", "count", "address space extent"],
        rows,
        title="Figure 2: partitioning of a 512 MB shadow address space",
    )
    errors = check_fig2(allocator)
    return report, errors


def check_fig2(allocator: BucketShadowAllocator) -> List[str]:
    """Check the table against the paper's numbers."""
    errors: List[str] = []
    for (size, count, extent), (psize, pcount, pextent) in zip(
        allocator.describe(), PAPER_ROWS
    ):
        if f"{size >> 10}KB" != psize or count != pcount:
            errors.append(
                f"row mismatch: {size >> 10}KB x{count} vs paper "
                f"{psize} x{pcount}"
            )
        if f"{extent >> 20}MB" != pextent:
            errors.append(
                f"extent mismatch for {psize}: {extent >> 20}MB vs "
                f"{pextent}"
            )
    total = partition_extent(FIGURE2_PARTITION)
    if total != 512 << 20:
        errors.append(f"partition extent {total:#x} is not 512 MB")
    # Every region must be allocatable: drain and refill one bucket.
    regions = [allocator.allocate(16 << 10) for _ in range(1024)]
    if allocator.available(16 << 10) != 0:
        errors.append("16KB bucket did not drain at its stated count")
    for region in regions:
        allocator.free(region)
    if allocator.available(16 << 10) != 1024:
        errors.append("16KB bucket did not refill")
    return errors
