"""Unit tests for address-space constants and bit math."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import addrspace as a


class TestConstants:
    def test_base_page_is_4k(self):
        assert a.BASE_PAGE_SIZE == 4096
        assert 1 << a.BASE_PAGE_SHIFT == a.BASE_PAGE_SIZE

    def test_superpage_sizes_are_powers_of_four_times_base(self):
        expected = [16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20]
        assert list(a.SUPERPAGE_SIZES) == expected

    def test_page_sizes_include_base_page(self):
        assert a.PAGE_SIZES[0] == a.BASE_PAGE_SIZE
        assert a.PAGE_SIZES[1:] == a.SUPERPAGE_SIZES

    def test_cache_line_constants(self):
        assert 1 << a.CACHE_LINE_SHIFT == a.CACHE_LINE_SIZE == 32


class TestBitMath:
    def test_page_number_and_offset(self):
        assert a.page_number(0x12345) == 0x12
        assert a.page_offset(0x12345) == 0x345
        assert a.page_base(0x12345) == 0x12000

    def test_align_up_down(self):
        assert a.align_up(0x1001, 0x1000) == 0x2000
        assert a.align_up(0x1000, 0x1000) == 0x1000
        assert a.align_down(0x1FFF, 0x1000) == 0x1000

    def test_align_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            a.align_up(0, 3)
        with pytest.raises(ValueError):
            a.is_aligned(0, 0)

    def test_largest_superpage_not_exceeding(self):
        assert a.largest_superpage_not_exceeding(16 << 10) == 16 << 10
        assert a.largest_superpage_not_exceeding((64 << 10) - 1) == 16 << 10
        assert a.largest_superpage_not_exceeding(100 << 20) == 16 << 20

    def test_largest_superpage_rejects_tiny(self):
        with pytest.raises(ValueError):
            a.largest_superpage_not_exceeding(8 << 10)

    def test_base_pages_in(self):
        assert a.base_pages_in(16 << 10) == 4
        with pytest.raises(ValueError):
            a.base_pages_in(100)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.sampled_from([1 << k for k in range(1, 25)]))
    def test_align_up_properties(self, addr, alignment):
        up = a.align_up(addr, alignment)
        assert up >= addr
        assert up % alignment == 0
        assert up - addr < alignment

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_page_decomposition_roundtrip(self, addr):
        assert (
            a.page_base(addr) + a.page_offset(addr) == addr
        )


class TestPhysicalMemoryMap:
    def test_default_layout(self, memory_map):
        assert memory_map.dram_size == 256 << 20
        assert memory_map.shadow_base == 0x8000_0000
        assert memory_map.shadow_size == 512 << 20
        assert memory_map.shadow_end == 0xA000_0000

    def test_classification(self, memory_map):
        assert memory_map.is_dram(0)
        assert memory_map.is_dram(memory_map.dram_size - 1)
        assert not memory_map.is_dram(memory_map.dram_size)
        assert memory_map.is_shadow(0x8000_0000)
        assert memory_map.is_shadow(0x9FFF_FFFF)
        assert not memory_map.is_shadow(0xA000_0000)
        assert memory_map.is_io(0xF000_0000)
        assert not memory_map.is_io(0x8000_0000)

    def test_shadow_page_index_roundtrip(self, memory_map):
        paddr = memory_map.shadow_base + 5 * 4096 + 123
        idx = memory_map.shadow_page_index(paddr)
        assert idx == 5
        assert memory_map.shadow_addr_of_index(5) == paddr - 123

    def test_shadow_page_index_rejects_non_shadow(self, memory_map):
        with pytest.raises(ValueError):
            memory_map.shadow_page_index(0x1000)

    def test_counts(self, memory_map):
        assert memory_map.dram_frames == (256 << 20) // 4096
        assert memory_map.shadow_pages == (512 << 20) // 4096

    def test_overlap_validation(self):
        from repro.core.addrspace import PhysicalMemoryMap
        with pytest.raises(ValueError):
            PhysicalMemoryMap(dram_size=0x9000_0000)  # overlaps shadow
        with pytest.raises(ValueError):
            PhysicalMemoryMap(shadow_base=0x8000_0000 + 4096)  # misaligned

    def test_shadow_cannot_reach_io(self):
        from repro.core.addrspace import PhysicalMemoryMap
        with pytest.raises(ValueError):
            PhysicalMemoryMap(shadow_size=(0xF000_0000 - 0x8000_0000) + 4096)
