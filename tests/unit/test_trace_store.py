"""Unit tests for the columnar chunked trace store (DESIGN.md §15).

Covers the PR 9 tentpole and its satellite bugfixes:

* round-trip bit-identity through chunk compression and the
  memory-mapped raw materialisation;
* per-chunk CRC detection of bit-rot and truncation, with quarantine
  and registry counters instead of worker-swallowed warnings;
* the ``float.hex()`` keying fix — scales that *print* alike under
  ``%g`` no longer collide;
* the single-flight lock protocol (stale-lock stealing included);
* legacy ``.npz`` migration with the round-trip guard;
* the two-level sparse chunk index;
* streaming generation (tee/commit/abort, progressive read-back);
* hypothesis-sampled chunk geometry.
"""

import os
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceStoreCorrupt
from repro.trace.events import MapRegion, Remap
from repro.trace.io import save_trace
from repro.trace.store import (
    SparseChunkIndex,
    TraceChunkIndex,
    TraceStore,
    store_registry,
    trace_address,
    trace_metrics_source,
)
from repro.trace.trace import Segment, Trace, make_segment


def tiny_trace(name="t", refs=1000, seed=3, base=0x4000_0000):
    rng = np.random.default_rng(seed)
    vaddrs = base + rng.integers(0, 1 << 20, refs, dtype=np.int64)
    writes = rng.random(refs) < 0.25
    return Trace(
        name=name,
        items=[
            MapRegion(base, 1 << 21, label="heap"),
            make_segment("warm", vaddrs[: refs // 2], gap=2),
            Remap(base, 1 << 21, label="heap"),
            make_segment(
                "body", vaddrs[refs // 2 :],
                write_mask=writes[refs // 2 :], gap=3, text_pages=2,
            ),
        ],
    )


def assert_traces_identical(a, b):
    assert a.name == b.name
    assert a.text_base == b.text_base
    assert a.text_size == b.text_size
    assert len(a.items) == len(b.items)
    for x, y in zip(a.items, b.items):
        assert isinstance(x, Segment) == isinstance(y, Segment)
        if isinstance(x, Segment):
            assert x.label == y.label
            assert x.text_pages == y.text_pages
            np.testing.assert_array_equal(x.ops, np.asarray(y.ops))
            np.testing.assert_array_equal(x.vaddrs, np.asarray(y.vaddrs))
            np.testing.assert_array_equal(x.gaps, np.asarray(y.gaps))
        else:
            assert x == y


@pytest.fixture
def store(tmp_path):
    # Small chunks so even tiny traces span several.
    return TraceStore(tmp_path / "store", chunk_refs=256)


def _hammer_save_trace(path, rounds, seed):
    import numpy as np

    from repro.trace.io import save_trace
    from repro.trace.trace import Trace, make_segment

    vaddrs = 0x1000 + np.arange(2000, dtype=np.int64) * 64
    trace = Trace(
        name="hammer", items=[make_segment("body", vaddrs, gap=2)]
    )
    for _ in range(rounds):
        save_trace(trace, path)


class TestAtomicSaveTrace:
    """Satellite (a): ``save_trace`` stages privately and renames.

    Before PR 9 it wrote ``np.savez_compressed`` straight to the live
    path: a crash mid-write, or two workers writing the same identity,
    left a torn file at the name every later reader trusts.
    """

    def test_parallel_same_path_writers_never_tear(self, tmp_path):
        import multiprocessing

        from repro.trace.io import load_trace

        path = tmp_path / "hammer_s1_seed0.npz"
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(
                target=_hammer_save_trace, args=(str(path), 20, i)
            )
            for i in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(120)
            assert proc.exitcode == 0
        # The live name holds one complete, loadable trace and no
        # staging litter survives.
        assert load_trace(path).total_refs == 2000
        assert list(tmp_path.glob("*.tmp")) == []

    def test_stage_names_are_private(self, tmp_path):
        from repro.ioutil import unique_tmp_path

        target = tmp_path / "x.npz"
        assert unique_tmp_path(target) != unique_tmp_path(target)

    def test_interrupted_write_leaves_no_live_file(
        self, tmp_path, monkeypatch
    ):
        import repro.ioutil as ioutil_mod

        def boom(src, dst):
            raise OSError("disk says no")

        monkeypatch.setattr(ioutil_mod.os, "replace", boom)
        path = tmp_path / "t.npz"
        with pytest.raises(OSError):
            save_trace(tiny_trace(), path)
        assert not path.exists()


class TestAddressing:
    def test_scale_hex_keying_distinguishes_g_collisions(self):
        # Satellite (b): "%g" prints both of these as 0.3.
        a, b = 0.3, 0.30000000000000004
        assert f"{a:g}" == f"{b:g}"
        assert trace_address("em3d", a, 1) != trace_address("em3d", b, 1)

    def test_address_is_stable_and_sharded(self, store):
        addr = trace_address("em3d", 0.3, 1998)
        assert addr == trace_address("em3d", 0.3, 1998)
        assert store.entry_dir(addr).parent.name == addr[:2]

    def test_collision_pair_round_trips_independently(self, store):
        a, b = 0.3, 0.30000000000000004
        ta = tiny_trace("a", seed=1)
        tb = tiny_trace("b", seed=2)
        store.put(ta, "w", a, 0)
        store.put(tb, "w", b, 0)
        assert_traces_identical(store.load(trace_address("w", a, 0)), ta)
        assert_traces_identical(store.load(trace_address("w", b, 0)), tb)


class TestRoundTrip:
    def test_put_load_bit_identical(self, store):
        trace = tiny_trace()
        addr = store.put(trace, "w", 1.0, 7)
        assert_traces_identical(store.load(addr), trace)

    def test_load_verify_checks_crcs(self, store):
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        assert_traces_identical(
            store.load(addr, verify=True), store.load(addr)
        )

    def test_loaded_columns_are_memory_mapped(self, store):
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        seg = next(store.load(addr).segments())
        base = seg.vaddrs
        while base is not None and not isinstance(base, np.memmap):
            base = getattr(base, "base", None)
        assert isinstance(base, np.memmap)

    def test_put_is_idempotent(self, store):
        trace = tiny_trace()
        assert store.put(trace, "w", 1.0, 7) == store.put(trace, "w", 1.0, 7)

    def test_raw_materialisation_is_regenerable(self, store):
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        raw = store.entry_dir(addr) / "cols.raw"
        assert raw.exists()
        raw.unlink()
        assert_traces_identical(
            store.load(addr), store.load(addr)
        )
        assert raw.exists()  # rebuilt from chunks


class TestCorruption:
    def corrupt_counters(self):
        c = store_registry().collect()
        return (
            c.get("trace.cache_corrupt", 0),
            c.get("trace.store.quarantined", 0),
        )

    def test_chunk_bit_rot_detected_and_quarantined(self, store):
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        entry = store.entry_dir(addr)
        (entry / "cols.raw").unlink()  # force a rebuild from chunks
        blob = bytearray((entry / "chunks.bin").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (entry / "chunks.bin").write_bytes(bytes(blob))
        before = self.corrupt_counters()
        with pytest.raises(TraceStoreCorrupt):
            store.load(addr)
        after = self.corrupt_counters()
        assert after[0] == before[0] + 1
        assert after[1] == before[1] + 1
        assert not entry.exists()  # moved aside, not deleted
        assert list((store.root / "quarantine").iterdir())

    def test_chunk_truncation_detected(self, store):
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        entry = store.entry_dir(addr)
        (entry / "cols.raw").unlink()
        blob = (entry / "chunks.bin").read_bytes()
        (entry / "chunks.bin").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceStoreCorrupt):
            store.load(addr)

    def test_raw_bit_rot_detected_under_verify(self, store):
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        raw_path = store.entry_dir(addr) / "cols.raw"
        blob = bytearray(raw_path.read_bytes())
        blob[len(blob) // 3] ^= 0x01
        raw_path.write_bytes(bytes(blob))
        with pytest.raises(TraceStoreCorrupt):
            store.load(addr, verify=True)

    def test_manifest_tamper_detected(self, store):
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        manifest = store.entry_dir(addr) / "manifest.json"
        manifest.write_text(manifest.read_text().replace("w", "x", 1))
        with pytest.raises(TraceStoreCorrupt):
            store.load(addr)

    def test_get_or_create_regenerates_after_corruption(self, store):
        trace = tiny_trace()
        addr = store.put(trace, "w", 1.0, 7)
        entry = store.entry_dir(addr)
        (entry / "cols.raw").unlink()
        (entry / "chunks.bin").write_bytes(b"garbage")
        seen = []

        def produce(writer):
            writer.begin(trace.name, trace.text_base, trace.text_size)
            for item in trace.items:
                writer.add(item)

        fresh = store.get_or_create(
            "w", 1.0, 7, produce, on_corrupt=seen.append
        )
        assert_traces_identical(fresh, trace)
        assert len(seen) == 1


class TestSingleFlight:
    def test_lock_released_after_generate(self, store):
        trace = tiny_trace()

        def produce(writer):
            writer.begin(trace.name, trace.text_base, trace.text_size)
            for item in trace.items:
                writer.add(item)

        store.get_or_create("w", 1.0, 7, produce)
        assert not list((store.root / "locks").glob("*.lock"))

    def test_stale_lock_stolen(self, tmp_path):
        store = TraceStore(
            tmp_path / "store", chunk_refs=256, stale_after=0.0
        )
        trace = tiny_trace()
        addr = trace_address("w", 1.0, 7)
        lock = store.root / "locks" / f"{addr}.lock"
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("999999999\n")  # holder long dead
        counters_before = store_registry().collect().get(
            "trace.store.stale_locks", 0
        )

        def produce(writer):
            writer.begin(trace.name, trace.text_base, trace.text_size)
            for item in trace.items:
                writer.add(item)

        got = store.get_or_create("w", 1.0, 7, produce)
        assert_traces_identical(got, trace)
        assert store_registry().collect().get(
            "trace.store.stale_locks", 0
        ) == counters_before + 1

    def test_second_get_is_a_hit(self, store):
        trace = tiny_trace()
        calls = []

        def produce(writer):
            calls.append(1)
            writer.begin(trace.name, trace.text_base, trace.text_size)
            for item in trace.items:
                writer.add(item)

        store.get_or_create("w", 1.0, 7, produce)
        hits_before = store_registry().collect().get(
            "trace.store.hits", 0
        )
        store.get_or_create("w", 1.0, 7, produce)
        assert calls == [1]
        assert store_registry().collect().get(
            "trace.store.hits", 0
        ) == hits_before + 1


class TestStreaming:
    def test_stream_commits_on_exhaustion(self, store):
        trace = tiny_trace()

        def open_stream():
            shell = Trace(
                name=trace.name, items=[],
                text_base=trace.text_base, text_size=trace.text_size,
            )
            return shell, iter(trace.items)

        streamed = store.stream_or_load("w", 1.0, 7, open_stream)
        consumed = list(streamed.items)
        assert len(consumed) == len(trace.items)
        addr = trace_address("w", 1.0, 7)
        assert store.has(addr)
        assert not list((store.root / "locks").glob("*.lock"))
        assert_traces_identical(store.load(addr), trace)

    def test_abandoned_stream_aborts_and_unlocks(self, store):
        trace = tiny_trace()

        def open_stream():
            shell = Trace(
                name=trace.name, items=[],
                text_base=trace.text_base, text_size=trace.text_size,
            )
            return shell, iter(trace.items)

        streamed = store.stream_or_load("w", 1.0, 7, open_stream)
        next(streamed.items)  # consume one item, then walk away
        streamed.items.close()
        assert not store.has(trace_address("w", 1.0, 7))
        assert not list((store.root / "locks").glob("*.lock"))
        # The identity is generatable again afterwards.
        again = store.stream_or_load("w", 1.0, 7, open_stream)
        list(again.items)
        assert store.has(trace_address("w", 1.0, 7))

    def test_read_committed_serves_chunks_mid_write(self, store):
        refs = 700  # 2+ chunks at chunk_refs=256
        rng = np.random.default_rng(0)
        vaddrs = 0x1000 + rng.integers(0, 1 << 16, refs, dtype=np.int64)
        seg = make_segment("body", vaddrs, gap=2)
        writer = store.writer("w", 1.0, 7)
        try:
            writer.begin("t", 0x100_0000, 64 << 10)
            writer.add(seg)
            assert writer.chunks_committed >= 2
            first = writer.read_committed(0)
            np.testing.assert_array_equal(
                first["vaddrs"], vaddrs[:256]
            )
            np.testing.assert_array_equal(
                writer.read_committed(1)["vaddrs"], vaddrs[256:512]
            )
        finally:
            writer.abort()


class TestMigration:
    def test_legacy_round_trip(self, store, tmp_path):
        trace = tiny_trace("em3d")
        legacy = tmp_path / "em3d_s0.25_seed7.npz"
        save_trace(trace, legacy)
        report = store.migrate_legacy_dir(tmp_path)
        assert report["migrated"] == [legacy.name]
        assert_traces_identical(
            store.load(trace_address("em3d", 0.25, 7)), trace
        )

    def test_migrate_remove_deletes_source(self, store, tmp_path):
        legacy = tmp_path / "em3d_s0.25_seed7.npz"
        save_trace(tiny_trace("em3d"), legacy)
        store.migrate_legacy_dir(tmp_path, remove=True)
        assert not legacy.exists()

    def test_corrupt_legacy_counted_and_skipped(self, store, tmp_path):
        bogus = tmp_path / "em3d_s0.25_seed7.npz"
        bogus.write_bytes(b"not an npz")
        report = store.migrate_legacy_dir(tmp_path)
        assert report["migrated"] == []
        assert report["corrupt"] == [bogus.name]

    def test_get_or_create_migrates_instead_of_regenerating(
        self, store, tmp_path
    ):
        trace = tiny_trace("em3d")
        legacy = tmp_path / "em3d_s0.25_seed7.npz"
        save_trace(trace, legacy)
        calls = []

        def produce(writer):  # pragma: no cover - must not run
            calls.append(1)
            raise AssertionError("migration should have won")

        got = store.get_or_create(
            "em3d", 0.25, 7, produce, legacy_path=legacy
        )
        assert calls == []
        assert_traces_identical(got, trace)

    def test_round_trip_guard_refuses_unprintable_scale(
        self, store, tmp_path
    ):
        # 0.30000000000000004 prints as 0.3 under %g: a legacy file
        # named _s0.3_ may belong to the OTHER scale, so the guard
        # forces regeneration rather than migrating a lookalike.
        victim = 0.30000000000000004
        trace = tiny_trace("em3d")
        legacy = tmp_path / f"em3d_s{victim:g}_seed7.npz"
        save_trace(tiny_trace("imposter", seed=99), legacy)
        produced = []

        def produce(writer):
            produced.append(1)
            writer.begin(trace.name, trace.text_base, trace.text_size)
            for item in trace.items:
                writer.add(item)

        got = store.get_or_create(
            "em3d", victim, 7, produce, legacy_path=legacy
        )
        assert produced == [1]
        assert_traces_identical(got, trace)


class TestSparseChunkIndex:
    def test_lookup_and_lazy_pages(self):
        idx = SparseChunkIndex(chunk_refs=256, l2_bits=2)  # 4 slots/page
        idx.insert(0, 0)
        idx.insert(1, 256)
        assert idx.l2_pages_allocated == 1
        # A far-away chunk allocates its own L2 page, nothing between.
        idx.insert(9, 9 * 256)
        assert idx.l2_pages_allocated == 2
        assert idx.lookup(0) == 0
        assert idx.lookup(255) == 0
        assert idx.lookup(256) == 1
        assert idx.lookup(9 * 256 + 7) == 9
        assert idx.lookup(5 * 256) is None  # unpopulated hole

    def test_unaligned_insert_rejected(self):
        idx = SparseChunkIndex(chunk_refs=256)
        with pytest.raises(ValueError):
            idx.insert(0, 100)

    def test_window(self):
        idx = SparseChunkIndex(chunk_refs=100)
        for i in range(5):
            idx.insert(i, i * 100)
        assert idx.window(150, 360) == [1, 2, 3]
        assert idx.window(0, 1000) == [0, 1, 2, 3, 4]
        assert idx.window(410, 420) == [4]

    def test_per_segment_offsets(self):
        idx = TraceChunkIndex(chunk_refs=100)
        # Segment 0 has 150 refs (chunks 0,1); segment 1 restarts at 0.
        idx.insert(0, 0, 0)
        idx.insert(1, 0, 100)
        idx.insert(2, 1, 0)
        assert idx.lookup(0, 99) == 0
        assert idx.lookup(0, 100) == 1
        assert idx.lookup(1, 0) == 2
        assert idx.window(0, 0, 150) == [0, 1]
        assert idx.window(1, 0, 50) == [2]


class TestInventory:
    def test_ls_reports_identity_and_shape(self, store):
        store.put(tiny_trace(refs=600), "em3d", 0.25, 7)
        (row,) = store.ls()
        assert row["workload"] == "em3d"
        assert row["scale"] == 0.25
        assert row["seed"] == 7
        assert row["refs"] == 600
        assert row["chunks"] >= 2
        assert row["raw_cached"]

    def test_gc_drops_raw_and_stale_locks(self, store):
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        stale = store.root / "locks" / "deadbeef.lock"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text("999999999\n")
        os.utime(stale, (0, 0))  # held far past stale_after
        tmp_dir = store.root / "tmp" / "abandoned.1.2.tmp"
        tmp_dir.mkdir(parents=True)
        os.utime(tmp_dir, (0, 0))  # ancient
        summary = store.gc(drop_raw=True)
        assert summary["raw_dropped"] == 1
        assert summary["stale_locks"] == 1
        assert summary["tmp_dirs"] == 1
        assert not (store.entry_dir(addr) / "cols.raw").exists()
        # Entries survive gc and remain loadable.
        assert store.load(addr).total_refs == 1000


class TestMetricsSurface:
    def test_source_strips_prefix(self, store):
        store.put(tiny_trace(), "w", 1.0, 7)
        store.load(trace_address("w", 1.0, 7))
        source = trace_metrics_source()
        assert all(not k.startswith("trace.") for k in source)
        assert source.get("store.chunks_read", 0) >= 1

    def test_chunk_histogram_observed_on_load(self, store):
        hist_before = (
            store_registry().as_dict()["histograms"]
            .get("trace.store.chunks_per_load", {})
            .get("total", 0)
        )
        addr = store.put(tiny_trace(), "w", 1.0, 7)
        store.load(addr)
        hist = store_registry().as_dict()["histograms"][
            "trace.store.chunks_per_load"
        ]
        assert hist["total"] == hist_before + 1
        assert hist["min"] >= 1


class TestChunkGeometry:
    @settings(max_examples=15, deadline=None)
    @given(
        refs=st.lists(
            st.integers(min_value=1, max_value=700),
            min_size=1, max_size=4,
        ),
        chunk_refs=st.sampled_from([64, 128, 256, 512]),
    )
    def test_any_geometry_round_trips(self, tmp_path_factory, refs,
                                      chunk_refs):
        root = tmp_path_factory.mktemp("geom")
        store = TraceStore(root / "store", chunk_refs=chunk_refs)
        rng = np.random.default_rng(sum(refs))
        items = []
        for i, n in enumerate(refs):
            vaddrs = 0x1000 + rng.integers(
                0, 1 << 16, n, dtype=np.int64
            )
            items.append(make_segment(f"s{i}", vaddrs, gap=2))
        trace = Trace(name="geom", items=items)
        addr = store.put(trace, "geom", 1.0, sum(refs))
        assert_traces_identical(store.load(addr, verify=True), trace)
        index = store.chunk_index(addr)
        expected_chunks = sum(-(-n // chunk_refs) for n in refs)
        assert sum(
            len(index.window(i, 0, n)) for i, n in enumerate(refs)
        ) == expected_chunks
