"""Integration tests: the resident scenario daemon over real HTTP.

One module-scoped daemon (real asyncio server, real supervised worker
pool, real sockets on an ephemeral loopback port) serves every test;
the assertions are the service contract from DESIGN.md §14: results
bit-identical to the batch path, one execution per unique fingerprint
no matter how many clients ask, commits that survive a client
disconnect, honest /healthz //queue //metrics, and a clean drain.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.api import ScenarioSpec, Session
from repro.errors import DaemonUnavailable
from repro.serve import SweepClient
from repro.serve.daemon import ScenarioDaemon, daemon_policy
from repro.serve.scheduler import spec_fingerprint
from repro.serve.supervise import SupervisionPolicy, load_poison_records
from repro.sim.config import paper_mtlb, paper_no_mtlb

TINY = {"em3d": 0.02, "radix": 0.02}

FAST = SupervisionPolicy(
    deadline_seconds=60.0,
    grace_seconds=2.0,
    backoff_base_seconds=0.05,
    backoff_cap_seconds=0.2,
)


def _session(tmp, name):
    return Session(
        quick=True, scales=dict(TINY),
        cache_dir=tmp / "cache", store=tmp / name, jobs=2,
    )


def _specs(seed=1998):
    return [
        ScenarioSpec(w, config, seed=seed)
        for w in ("em3d", "radix")
        for config in (paper_no_mtlb(96), paper_mtlb(96))
    ]


def _record_bytes(store):
    return {
        fp: store.record_path(fp).read_bytes() for fp in store.keys()
    }


def _get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _start(tmp):
    daemon = ScenarioDaemon(
        session=_session(tmp, "daemon_store"),
        jobs=2, policy=daemon_policy(FAST),
    )
    thread = threading.Thread(
        target=lambda: daemon.run(port=0), daemon=True
    )
    thread.start()
    assert daemon.wait_ready(60.0)
    assert daemon.port, "daemon failed to bind"
    return daemon, thread


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    daemon, thread = _start(tmp_path_factory.mktemp("daemon"))
    yield daemon, f"http://127.0.0.1:{daemon.port}"
    daemon.guard.request_drain()
    thread.join(60.0)
    assert not thread.is_alive()


def _client(tmp, name, url, tenant):
    return SweepClient(
        session=_session(tmp, name), daemon=url, tenant=tenant
    )


class TestBitIdentity:
    def test_daemon_sweep_matches_batch_sweep(
        self, served, tmp_path
    ):
        """The acceptance pillar: fig3-shaped specs through the daemon
        commit records byte-for-byte identical to a local batch sweep
        of the same specs into a fresh store."""
        daemon, url = served
        batch = SweepClient(
            session=_session(tmp_path, "batch_store"),
            jobs=2, policy=FAST,
        )
        specs = _specs(seed=1998)
        batch_reports = batch.sweep(specs)
        assert all(r.ok for r in batch_reports)

        client = _client(tmp_path, "client_store", url, "identity")
        daemon_reports = client.sweep(specs)
        assert all(r.ok for r in daemon_reports)
        for local, remote in zip(batch_reports, daemon_reports):
            assert remote.stats == local.stats
            assert remote.fingerprint == local.fingerprint

        batch_records = _record_bytes(batch.store)
        assert batch_records
        for fp, payload in batch_records.items():
            assert daemon.store.record_path(fp).read_bytes() == payload

    def test_resweep_is_served_from_the_store(self, served, tmp_path):
        daemon, url = served
        client = _client(tmp_path, "client_store", url, "identity")
        before = daemon.simulated.value
        reports = client.sweep(_specs(seed=1998))
        assert all(r.cache_hit for r in reports)
        assert daemon.simulated.value == before


class TestDedupe:
    def test_concurrent_clients_one_execution_per_fingerprint(
        self, served, tmp_path
    ):
        """Two clients, same batch, at the same time: the daemon runs
        each unique fingerprint exactly once; every duplicate answer is
        a coalesced waiter or (if one batch commits first) a store hit
        — and /metrics says so."""
        daemon, url = served
        specs = _specs(seed=77)
        unique = {
            spec_fingerprint(spec, daemon.context) for spec in specs
        }
        assert len(unique) == len(specs)
        executed0 = daemon.executed.value
        simulated0 = daemon.simulated.value
        answered0 = (
            daemon.coalesced.value + daemon.store_hits.value
        )

        outcomes = {}

        def sweep(tenant):
            client = _client(tmp_path, f"{tenant}_store", url, tenant)
            outcomes[tenant] = client.sweep(_specs(seed=77))

        threads = [
            threading.Thread(target=sweep, args=(t,))
            for t in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300.0)
        assert set(outcomes) == {"alice", "bob"}
        for reports in outcomes.values():
            assert all(r.ok for r in reports)

        assert daemon.executed.value - executed0 == len(unique)
        assert daemon.simulated.value - simulated0 == len(unique)
        dupes = 2 * len(specs) - len(unique)
        answered = (
            daemon.coalesced.value + daemon.store_hits.value - answered0
        )
        assert answered == dupes

        status, body = _get(daemon.port, "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert (
            f"serve_daemon_executed_total {daemon.executed.value}"
            in text
        )
        assert "serve_daemon_coalesced_total" in text


class TestDisconnect:
    def test_midstream_disconnect_still_commits(self, served, tmp_path):
        """A client that dies after the accepted line costs nothing but
        its own answer: the scenario still runs to a committed store
        record, the worker slot stays healthy, and the daemon counts
        one disconnect."""
        daemon, url = served
        spec = ScenarioSpec("em3d", paper_mtlb(96), seed=4242)
        fingerprint = spec_fingerprint(spec, daemon.context)
        assert daemon.store.get(fingerprint) is None
        disconnects0 = daemon.disconnects.value

        from repro.api import spec_to_doc

        body = json.dumps(
            {"tenant": "flaky", "specs": [spec_to_doc(spec)]}
        ).encode("utf-8")
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=60
        )
        conn.request(
            "POST", "/v1/sweep", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 200
        accepted = json.loads(response.readline())
        assert accepted["event"] == "accepted"
        # Walk away mid-stream.  The response holds its own dup of the
        # socket fd, so it must be closed too or no FIN ever goes out.
        response.close()
        conn.close()

        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if daemon.store.get(fingerprint) is not None:
                break
            time.sleep(0.2)
        record = daemon.store.get(fingerprint)
        assert record is not None, "abandoned scenario never committed"
        assert not load_poison_records(daemon.store.poison_dir)

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if daemon.disconnects.value > disconnects0:
                break
            time.sleep(0.2)
        assert daemon.disconnects.value > disconnects0

        # The pool is still healthy: the same spec is now a store hit.
        client = _client(tmp_path, "after_store", url, "after")
        (report,) = client.sweep([spec])
        assert report.ok and report.cache_hit

    def test_stray_trailing_byte_is_not_a_disconnect(self, served):
        """A client that sends junk after its body is still connected:
        only a true EOF aborts the stream, so the sweep must run to a
        "done" event on the same socket."""
        daemon, _ = served
        from repro.api import spec_to_doc

        spec = ScenarioSpec("radix", paper_mtlb(96), seed=616)
        body = json.dumps(
            {"tenant": "stray", "specs": [spec_to_doc(spec)]}
        ).encode("utf-8")
        head = (
            "POST /v1/sweep HTTP/1.1\r\n"
            "Host: daemon\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        disconnects0 = daemon.disconnects.value
        with socket.create_connection(
            ("127.0.0.1", daemon.port), timeout=180
        ) as sock:
            sock.sendall(head + body + b"\n")  # stray byte after body
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        text = b"".join(chunks).decode("utf-8")
        assert '"event": "result"' in text
        assert '"event": "done"' in text
        assert daemon.disconnects.value == disconnects0


class TestScaleIsolation:
    def test_explicit_scale_never_contaminates_later_requests(
        self, served, tmp_path
    ):
        """One tenant's explicit scale override must be pinned to that
        request alone: a later default-scale request for the same
        workload still fingerprints, simulates, and commits at the
        session default, and the daemon's own scale table is untouched
        (the high-severity contamination from the review)."""
        daemon, url = served
        baseline = dict(daemon.context.scales)
        config = paper_mtlb(96)
        override = ScenarioSpec("em3d", config, seed=808, scale=0.01)
        default = ScenarioSpec("em3d", config, seed=909)
        # Expected identity of the default spec, from a pristine
        # context the daemon never saw.
        pristine = _session(tmp_path, "pristine_store").context
        expected = spec_fingerprint(default, pristine)

        scaler = _client(tmp_path, "scaler_store", url, "scaler")
        (first,) = scaler.sweep([override])
        assert first.ok
        assert daemon.store.get(first.fingerprint).meta["scale"] == 0.01

        other = _client(tmp_path, "other_store", url, "other")
        (second,) = other.sweep([default])
        assert second.ok
        assert second.fingerprint == expected
        record = daemon.store.get(expected)
        assert record.meta["scale"] == baseline["em3d"]
        assert daemon.context.scales == baseline

        # Full bit-identity with the batch path for the default spec.
        batch = SweepClient(
            session=_session(tmp_path, "scale_batch_store"),
            jobs=2, policy=FAST,
        )
        (local,) = batch.sweep([default])
        assert local.fingerprint == expected
        assert (
            daemon.store.record_path(expected).read_bytes()
            == batch.store.record_path(expected).read_bytes()
        )

    def test_fully_cached_batch_skips_trace_warmup(
        self, served, tmp_path, monkeypatch
    ):
        """A batch answerable entirely from the store is admitted
        before any trace warm-up: it must never generate or load
        traces under the global warm lock."""
        daemon, url = served
        spec = ScenarioSpec("radix", paper_no_mtlb(96), seed=515)
        client = _client(tmp_path, "warm_store", url, "warm")
        (first,) = client.sweep([spec])
        assert first.ok

        def boom(name, scale):
            raise AssertionError(
                f"cached batch warmed trace {name} at {scale}"
            )

        monkeypatch.setattr(daemon.context, "trace_at", boom)
        (again,) = client.sweep([spec])
        assert again.ok and again.cache_hit


class TestEndpoints:
    def test_healthz_reports_ok(self, served):
        daemon, _ = served
        status, body = _get(daemon.port, "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["jobs"] == 2

    def test_queue_endpoint_shape(self, served):
        daemon, _ = served
        status, body = _get(daemon.port, "/queue")
        assert status == 200
        doc = json.loads(body)
        assert "queue" in doc and "inflight" in doc
        assert "depth" in doc["queue"]

    def test_unknown_route_404_and_wrong_method_405(self, served):
        daemon, _ = served
        status, _ = _get(daemon.port, "/nope")
        assert status == 404
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=30
        )
        try:
            conn.request("POST", "/metrics")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_malformed_sweep_is_400(self, served):
        daemon, _ = served
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=30
        )
        try:
            conn.request(
                "POST", "/v1/sweep",
                body=json.dumps({"specs": [{"workload": "nope"}]}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert b"unknown workload" in response.read()
        finally:
            conn.close()

    def test_unknown_backend_is_400_echoing_the_name(self, served):
        """A spec naming an unregistered translation backend must be
        rejected at admission (typed UnknownBackend -> HTTP 400), not
        die inside a worker."""
        daemon, _ = served
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=30
        )
        try:
            conn.request(
                "POST", "/v1/sweep",
                body=json.dumps({
                    "specs": [
                        {"workload": "em3d", "backend": "nonesuch"}
                    ]
                }),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = response.read()
            assert response.status == 400
            assert b"nonesuch" in body
            assert b"registered backends" in body
        finally:
            conn.close()


class TestDrain:
    def test_drain_finishes_inflight_then_exits_clean(self, tmp_path):
        """Its own daemon (the module one must stay up): submit work,
        request a drain mid-flight, and require a 0 exit with every
        admitted scenario committed."""
        daemon, thread = _start(tmp_path)
        url = f"http://127.0.0.1:{daemon.port}"
        spec = ScenarioSpec("radix", paper_no_mtlb(96), seed=31)
        fingerprint = spec_fingerprint(spec, daemon.context)
        outcomes = []

        def sweep():
            client = SweepClient(
                session=_session(tmp_path, "drain_client"),
                daemon=url, tenant="drainer",
            )
            outcomes.append(client.sweep([spec]))

        sweeper = threading.Thread(target=sweep)
        sweeper.start()
        # Drain only once the scenario is *dispatched* (flight open,
        # queue drained): the drain contract finishes busy workers but
        # drops still-queued work with a typed error.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and not (
            daemon._flights and not len(daemon.queue)
        ):
            time.sleep(0.05)
        daemon.guard.request_drain()
        sweeper.join(120.0)
        thread.join(120.0)
        assert not thread.is_alive()
        assert daemon._stopped.is_set()
        assert daemon._fatal is None
        assert daemon.store.get(fingerprint) is not None
        (reports,) = outcomes
        assert reports[0].ok

        with pytest.raises(DaemonUnavailable):
            SweepClient(
                session=_session(tmp_path, "late_client"),
                daemon=url, tenant="late",
            ).sweep([spec])
