"""User-visible allocation interfaces: ``remap()`` and the modified ``sbrk()``.

Section 2.3 of the paper: applications opt into superpages either with an
explicit ``remap()`` system call over a region they already mapped, or
transparently through a modified ``sbrk()`` that pre-allocates a large
heap region, remaps it onto shadow superpages once, and then satisfies
small allocations from the pool.  Vortex and gcc create all their
superpages this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.addrspace import BASE_PAGE_SIZE, align_up
from .process import Process
from .vm import RemapReport, VmSubsystem


@dataclass
class SbrkStats:
    """Counters for the modified sbrk allocator."""

    calls: int = 0
    pool_hits: int = 0
    growths: int = 0
    bytes_allocated: int = 0
    bytes_mapped: int = 0
    grow_cycles: int = 0


@dataclass
class _Pool:
    """The current pre-allocated region small requests are served from."""

    base: int
    limit: int
    cursor: int


class SbrkAllocator:
    """The paper's modified ``sbrk()``.

    *initial_prealloc* is the size of the first pre-allocated region
    (vortex uses 8 MB so its basic datasets land in one mapping group);
    *increment* is the growth size afterwards (vortex drops to 2 MB).
    With ``use_superpages=False`` this degrades to a plain page-at-a-time
    sbrk — the baseline configuration.
    """

    def __init__(
        self,
        vm: VmSubsystem,
        process: Process,
        initial_prealloc: int = 8 << 20,
        increment: int = 2 << 20,
        use_superpages: bool = True,
    ) -> None:
        if initial_prealloc <= 0 or increment <= 0:
            raise ValueError("prealloc sizes must be positive")
        self.vm = vm
        self.process = process
        self.initial_prealloc = align_up(initial_prealloc, BASE_PAGE_SIZE)
        self.increment = align_up(increment, BASE_PAGE_SIZE)
        self.use_superpages = use_superpages
        self._pool: Optional[_Pool] = None
        self._first_growth_done = False
        self.stats = SbrkStats()
        self.remap_reports: List[RemapReport] = []

    def set_increment(self, increment: int) -> None:
        """Change the growth size for subsequent pool refills."""
        if increment <= 0:
            raise ValueError("increment must be positive")
        self.increment = align_up(increment, BASE_PAGE_SIZE)

    def sbrk(self, nbytes: int) -> int:
        """Allocate *nbytes*; returns the virtual address.

        Small requests are bump-pointer allocations from the pool; when
        the pool runs dry a new region is mapped (and, in superpage mode,
        remapped onto shadow superpages immediately).
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        self.stats.calls += 1
        nbytes = (nbytes + 7) & ~7  # 8-byte alignment, like malloc
        pool = self._pool
        if pool is not None and pool.cursor + nbytes <= pool.limit:
            addr = pool.cursor
            pool.cursor += nbytes
            self.stats.pool_hits += 1
            self.stats.bytes_allocated += nbytes
            return addr
        self._grow(nbytes)
        return self.sbrk(nbytes)

    def _grow(self, nbytes: int) -> None:
        """Map (and remap) a new pool region at the top of the heap."""
        base_size = (
            self.initial_prealloc
            if not self._first_growth_done
            else self.increment
        )
        region_size = max(base_size, align_up(nbytes, BASE_PAGE_SIZE))
        vbase = align_up(self.process.brk, BASE_PAGE_SIZE)
        cycles = self.vm.map_region(self.process, vbase, region_size)
        if self.use_superpages:
            report = self.vm.remap_to_shadow(self.process, vbase, region_size)
            self.remap_reports.append(report)
            cycles += report.total_cycles
        self.process.grow_brk(vbase + region_size)
        self._pool = _Pool(
            base=vbase, limit=vbase + region_size, cursor=vbase
        )
        self._first_growth_done = True
        self.stats.growths += 1
        self.stats.bytes_mapped += region_size
        self.stats.grow_cycles += cycles

    @property
    def pool_remaining(self) -> int:
        """Bytes left in the current pool."""
        if self._pool is None:
            return 0
        return self._pool.limit - self._pool.cursor
