"""PA-RISC-style hashed page table (HPT).

The software TLB miss handler probes a hashed translation table of 16 K
16-byte entries (paper Section 3.2).  Collisions chain into an overflow
area.  Probes and installs report the *physical addresses* they touch so
the simulator can run those kernel accesses through the data cache —
making the handler's cost depend on cache behaviour, exactly as in the
paper.

Entries are keyed by (space, virtual page number) — *space* is the
PA-RISC-style address-space identifier (we use the owning process's pid)
so multiprogrammed workloads with overlapping virtual layouts share one
global table, as on real PA-RISC.

Superpage mappings are stored **once**, keyed by the VPN of the
superpage's base, and the miss handler *re-hashes by page size*: when the
exact-VPN probe misses, it retries with the VPN rounded down to each
legal superpage size before falling back to the slow segment-table walk.
This is the variable-page-size hashed-table discipline of large-address-
space architectures; it keeps the table small and makes re-faulting a
flushed superpage translation (e.g. after a context switch) a few probes
instead of a segment walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.addrspace import SUPERPAGE_SIZES
from .page_table import Mapping

#: Size of one HPT entry in bytes (paper: 16-byte entries).
HPT_ENTRY_BYTES = 16

#: (size, VPN alignment mask) for the size re-hash, smallest first.
_SIZE_VPN_MASKS = tuple(
    (size, ~((size >> 12) - 1)) for size in SUPERPAGE_SIZES
)


@dataclass
class HptStats:
    """Event counters for the hashed page table."""

    probes: int = 0
    probe_entries_walked: int = 0
    installs: int = 0
    purged_entries: int = 0

    @property
    def avg_chain_walk(self) -> float:
        """Average entries touched per probe."""
        return (
            self.probe_entries_walked / self.probes if self.probes else 0.0
        )


class HashedPageTable:
    """16 K-bucket hashed translation table with chained overflow.

    *resolver* maps a VPN to the authoritative :class:`Mapping` (or None)
    — in practice the current process's page table, installed by the
    kernel at process switch.
    """

    def __init__(
        self,
        base_paddr: int,
        buckets: int = 16 * 1024,
        overflow_entries: int = 16 * 1024,
        resolver: Optional[Callable[[int], Optional[Mapping]]] = None,
    ) -> None:
        if buckets <= 0 or buckets & (buckets - 1):
            raise ValueError("bucket count must be a power of two")
        self.base_paddr = base_paddr
        self.buckets = buckets
        self.overflow_entries = overflow_entries
        self.resolver = resolver
        #: The current address-space id (the running process); probes
        #: and installs are performed against this space.
        self.current_space = 0
        self._mask = buckets - 1
        # bucket index -> list of (space, vpn, mapping, entry_paddr)
        self._chains: Dict[int, List[Tuple[int, int, Mapping, int]]] = {}
        self._where: Dict[Tuple[int, int], int] = {}
        #: resident entry count per mapping size; the handler re-hashes
        #: only sizes that actually have entries (the hardware keeps an
        #: equivalent page-size mask register).
        self._size_counts: Dict[int, int] = {}
        self._overflow_next = 0
        self.stats = HptStats()

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @property
    def table_bytes(self) -> int:
        """Size of the primary table (16 K x 16 B = 256 KB by default)."""
        return self.buckets * HPT_ENTRY_BYTES

    @property
    def total_bytes(self) -> int:
        """Primary table plus overflow area."""
        return (self.buckets + self.overflow_entries) * HPT_ENTRY_BYTES

    def _hash(self, vpn: int, space: int = 0) -> int:
        """XOR-folded hash of space id and VPN (PA-RISC style)."""
        return (vpn ^ (vpn >> 14) ^ (space * 0x9E37)) & self._mask

    def _bucket_head_paddr(self, bucket: int) -> int:
        return self.base_paddr + bucket * HPT_ENTRY_BYTES

    def _alloc_overflow_paddr(self) -> int:
        paddr = (
            self.base_paddr
            + self.table_bytes
            + (self._overflow_next % self.overflow_entries) * HPT_ENTRY_BYTES
        )
        self._overflow_next += 1
        return paddr

    # ------------------------------------------------------------------ #
    # Handler-facing operations
    # ------------------------------------------------------------------ #

    def probe(self, vpn: int) -> Tuple[Optional[Mapping], List[int]]:
        """Find the translation for *vpn*, re-hashing by page size.

        First walks the exact-VPN chain; on a miss, retries with the VPN
        aligned down to each legal superpage size (entries for
        superpages are keyed by their base VPN).  Returns
        ``(mapping_or_None, paddrs_touched)`` — every chain entry loaded
        along the way is in *touched*, so the handler's memory cost
        scales with the real walk length.
        """
        self.stats.probes += 1
        space = self.current_space
        touched: List[int] = []
        mapping = self._walk(vpn, space, touched)
        if mapping is not None:
            return mapping, touched
        seen = {vpn}
        for size, mask in _SIZE_VPN_MASKS:
            if not self._size_counts.get(size):
                continue
            candidate = vpn & mask
            if candidate in seen:
                continue
            seen.add(candidate)
            mapping = self._walk(candidate, space, touched)
            if mapping is not None and mapping.vbase <= (vpn << 12) < (
                mapping.vend
            ):
                return mapping, touched
        return None, touched

    def _walk(
        self, vpn: int, space: int, touched: List[int]
    ) -> Optional[Mapping]:
        """Walk one chain; appends loaded entry addresses to *touched*."""
        bucket = self._hash(vpn, space)
        chain = self._chains.get(bucket)
        if not chain:
            touched.append(self._bucket_head_paddr(bucket))
            self.stats.probe_entries_walked += 1
            return None
        for entry_space, entry_vpn, mapping, entry_paddr in chain:
            touched.append(entry_paddr)
            self.stats.probe_entries_walked += 1
            if entry_vpn == vpn and entry_space == space:
                return mapping
        return None

    def install(self, vpn: int) -> Tuple[Optional[Mapping], List[int]]:
        """Repopulate the HPT entry for *vpn* from the OS page tables.

        Returns ``(mapping_or_None, paddrs_written)``.  Returns None when
        the address is genuinely unmapped (a real page fault).
        """
        if self.resolver is None:
            raise RuntimeError("HPT has no resolver installed")
        mapping = self.resolver(vpn)
        if mapping is None:
            return None, []
        paddr = self._insert(vpn, mapping, self.current_space)
        self.stats.installs += 1
        return mapping, [paddr]

    @staticmethod
    def _key_vpn(vpn: int, mapping: Mapping) -> int:
        """Superpage entries are keyed by their base VPN."""
        if mapping.is_superpage:
            return mapping.vbase >> 12
        return vpn

    def _insert(self, vpn: int, mapping: Mapping, space: int) -> int:
        vpn = self._key_vpn(vpn, mapping)
        bucket = self._hash(vpn, space)
        chain = self._chains.setdefault(bucket, [])
        for i, (entry_space, entry_vpn, old, entry_paddr) in enumerate(
            chain
        ):
            if entry_vpn == vpn and entry_space == space:
                self._count_size(old.size, -1)
                self._count_size(mapping.size, +1)
                chain[i] = (space, vpn, mapping, entry_paddr)
                return entry_paddr
        if not chain:
            paddr = self._bucket_head_paddr(bucket)
        else:
            paddr = self._alloc_overflow_paddr()
        chain.append((space, vpn, mapping, paddr))
        self._where[(space, vpn)] = bucket
        self._count_size(mapping.size, +1)
        return paddr

    def _count_size(self, size: int, delta: int) -> None:
        self._size_counts[size] = self._size_counts.get(size, 0) + delta

    # ------------------------------------------------------------------ #
    # OS-facing maintenance
    # ------------------------------------------------------------------ #

    def preload(
        self, vpn: int, mapping: Mapping, space: Optional[int] = None
    ) -> int:
        """Eagerly install an entry (used when the OS maps a region).

        Returns the entry's physical address.
        """
        if space is None:
            space = self.current_space
        return self._insert(vpn, mapping, space)

    def purge_vpn(self, vpn: int, space: Optional[int] = None) -> bool:
        """Drop the entry for *vpn* in *space*, if present."""
        if space is None:
            space = self.current_space
        bucket = self._where.pop((space, vpn), None)
        if bucket is None:
            return False
        chain = self._chains.get(bucket, [])
        for i, (entry_space, entry_vpn, mapping, _p) in enumerate(chain):
            if entry_vpn == vpn and entry_space == space:
                chain.pop(i)
                self._count_size(mapping.size, -1)
                self.stats.purged_entries += 1
                return True
        return False

    def purge_range(
        self, vstart: int, length: int, space: Optional[int] = None
    ) -> int:
        """Drop every entry in *space* whose mapping overlaps the range.

        Returns the number of entries removed.  Called on remap/unmap so
        stale translations can never be refetched by the handler.
        """
        if space is None:
            space = self.current_space
        end = vstart + length
        doomed = [
            vpn
            for (entry_space, vpn), bucket in self._where.items()
            if entry_space == space
            and self._entry_overlaps(vpn, space, bucket, vstart, end)
        ]
        for vpn in doomed:
            self.purge_vpn(vpn, space)
        return len(doomed)

    def _entry_overlaps(
        self, vpn: int, space: int, bucket: int, vstart: int, end: int
    ) -> bool:
        for entry_space, entry_vpn, mapping, _paddr in self._chains.get(
            bucket, []
        ):
            if entry_vpn == vpn and entry_space == space:
                return mapping.vbase < end and mapping.vend > vstart
        return False

    @property
    def resident_entries(self) -> int:
        """Number of installed entries."""
        return len(self._where)
