"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.attribution import PhaseAttributor, attribution_csv
from repro.obs.collector import ObsCollector, ObsConfig
from repro.obs.diff import (
    diff_snapshots,
    metric_regressed,
    parse_threshold,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.tracer import (
    CACHE_MISS,
    NULL_TRACER,
    REMAP,
    SITES,
    TLB_MISS,
    EventTracer,
    inter_arrival,
)
from repro.sim.stats import REGISTRY_FIELDS, RunStats


# ====================================================================== #
# Event tracer / ring buffer
# ====================================================================== #


class TestEventTracer:
    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=3)
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_emit_stamps_clock_and_payloads(self):
        tracer = EventTracer(capacity=8)
        tracer.clock = 42
        tracer.emit(TLB_MISS, 0x1000, 55)
        (event,) = tracer.events()
        assert (event.cycle, event.site, event.a, event.b) == (
            42, "tlb_miss", 0x1000, 55,
        )

    def test_wraparound_keeps_newest_in_order(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.clock = i
            tracer.emit(CACHE_MISS, i, 0)
        assert len(tracer) == 4
        assert tracer.total == 10
        assert tracer.dropped == 6
        assert [e.a for e in tracer.events()] == [6, 7, 8, 9]
        assert [e.cycle for e in tracer.events()] == [6, 7, 8, 9]

    def test_wraparound_exact_boundary(self):
        tracer = EventTracer(capacity=4)
        for i in range(4):
            tracer.emit(CACHE_MISS, i, 0)
        assert tracer.dropped == 0
        assert [e.a for e in tracer.events()] == [0, 1, 2, 3]
        tracer.emit(CACHE_MISS, 4, 0)
        assert tracer.dropped == 1
        assert [e.a for e in tracer.events()] == [1, 2, 3, 4]

    def test_site_filter_and_counts(self):
        tracer = EventTracer(capacity=8)
        tracer.emit(TLB_MISS, 1, 0)
        tracer.emit(CACHE_MISS, 2, 0)
        tracer.emit(TLB_MISS, 3, 0)
        assert [e.a for e in tracer.events("tlb_miss")] == [1, 3]
        assert tracer.site_counts() == {"tlb_miss": 2, "cache_miss": 1}

    def test_cycles_and_payloads_of(self):
        tracer = EventTracer(capacity=8)
        for cycle, pages, cost in ((10, 4, 100), (20, 8, 200)):
            tracer.clock = cycle
            tracer.emit(REMAP, pages, cost)
        assert list(tracer.cycles_of("remap")) == [10, 20]
        a, b = tracer.payloads_of("remap")
        assert list(a) == [4, 8]
        assert list(b) == [100, 200]

    def test_null_tracer_is_inert(self):
        NULL_TRACER.emit(TLB_MISS, 1, 2)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.site_counts() == {}

    def test_inter_arrival(self):
        assert list(inter_arrival([10, 25, 100])) == [15, 75]
        assert list(inter_arrival([10])) == []
        assert list(inter_arrival([])) == []

    @given(
        capacity=st.sampled_from([2, 4, 8, 16]),
        n=st.integers(min_value=0, max_value=64),
    )
    def test_ring_retains_newest_suffix(self, capacity, n):
        tracer = EventTracer(capacity=capacity)
        for i in range(n):
            tracer.emit(CACHE_MISS, i, 0)
        kept = [e.a for e in tracer.events()]
        assert kept == list(range(max(0, n - capacity), n))
        assert tracer.dropped == max(0, n - capacity)


# ====================================================================== #
# Histograms / registry
# ====================================================================== #


class TestHistogram:
    def test_bucketing_edges(self):
        hist = Histogram("h", edges=(10, 100))
        for value in (0, 9, 10, 99, 100, 5000):
            hist.observe(value)
        # [<10, [10,100), >=100]
        assert hist.counts == [2, 2, 2]
        assert hist.total == 6
        assert hist.min == 0 and hist.max == 5000
        assert hist.mean == pytest.approx(5218 / 6)
        assert hist.bucket_labels() == ["<10", "[10,100)", ">=100"]

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(10, 10))
        with pytest.raises(ValueError):
            Histogram("h", edges=(100, 10))
        with pytest.raises(ValueError):
            Histogram("h", edges=())

    @given(st.lists(st.integers(min_value=0, max_value=10_000)))
    def test_counts_sum_to_total(self, values):
        hist = Histogram("h", edges=(16, 256, 1024))
        hist.observe_many(values)
        assert sum(hist.counts) == hist.total == len(values)


class TestMetricsRegistry:
    def test_counter_gauge_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("a.hits").inc(3)
        reg.gauge("a.depth").set(7)
        assert reg.collect() == {"a.hits": 3, "a.depth": 7}
        assert reg.value("a.hits") == 3

    def test_counter_rejects_negative_inc(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_cross_type_name_collision(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x", edges=(1,))

    def test_sources_drained_at_collect(self):
        reg = MetricsRegistry()
        state = {"misses": 0}
        reg.add_source("tlb", lambda: dict(state))
        state["misses"] = 11
        assert reg.collect()["tlb.misses"] == 11
        state["misses"] = 12
        assert reg.collect()["tlb.misses"] == 12

    def test_source_replacement(self):
        reg = MetricsRegistry()
        reg.add_source("c", lambda: {"v": 1})
        reg.add_source("c", lambda: {"v": 2})
        assert reg.collect()["c.v"] == 2

    def test_as_dict_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.histogram("h", edges=(10,)).observe(3)
        payload = json.loads(reg.to_json())
        assert payload["metrics"]["n"] == 1
        assert payload["histograms"]["h"]["counts"] == [1, 0]


# ====================================================================== #
# RunStats as a registry view
# ====================================================================== #


class TestRunStatsRegistryView:
    def test_publish_apply_roundtrip(self):
        stats = RunStats()
        stats.instruction_cycles = 100
        stats.memory_stall_cycles = 50
        stats.tlb_miss_cycles = 25
        stats.kernel_cycles = 10
        stats.total_cycles = 185
        stats.tlb_misses = 7
        reg = MetricsRegistry()
        stats.publish_to(reg)
        rebuilt = RunStats.from_registry(reg)
        assert rebuilt == stats

    def test_component_source_overrides_published_value(self):
        stats = RunStats()
        stats.tlb_misses = 1  # stale run-loop view
        reg = MetricsRegistry()
        stats.publish_to(reg)
        reg.add_source("tlb", lambda: {"misses": 9, "lookups": 40})
        stats.apply_registry(reg)
        assert stats.tlb_misses == 9
        assert stats.tlb_lookups == 40

    def test_every_registry_field_exists_on_runstats(self):
        fields = set(RunStats.__dataclass_fields__)
        for metric, fld in REGISTRY_FIELDS.items():
            assert fld in fields, (metric, fld)

    @given(
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=10**12),
    )
    def test_registry_backed_categories_sum_to_total(
        self, instruction, memory, tlb, kernel
    ):
        stats = RunStats()
        stats.instruction_cycles = instruction
        stats.memory_stall_cycles = memory
        stats.tlb_miss_cycles = tlb
        stats.kernel_cycles = kernel
        stats.total_cycles = instruction + memory + tlb + kernel
        reg = MetricsRegistry()
        stats.publish_to(reg)
        rebuilt = RunStats.from_registry(reg)
        assert rebuilt.total_cycles == (
            rebuilt.instruction_cycles
            + rebuilt.memory_stall_cycles
            + rebuilt.tlb_miss_cycles
            + rebuilt.kernel_cycles
        )
        rebuilt.check_consistency()


# ====================================================================== #
# Phase attribution
# ====================================================================== #


class TestPhaseAttribution:
    def test_needs_two_samples(self):
        att = PhaseAttributor()
        assert att.buckets(8) == []
        att.sample(0, 0, 0, 0)
        assert att.buckets(8) == []

    def test_bucket_totals_telescope_exactly(self):
        att = PhaseAttributor()
        att.sample(0, 0, 0, 0)
        att.sample(100, 0, 0, 33)
        att.sample(170, 500, 9, 33)
        att.sample(171, 500, 9, 1000)
        buckets = att.buckets(7)
        assert sum(b.instruction for b in buckets) == 171
        assert sum(b.memory_stall for b in buckets) == 500
        assert sum(b.tlb_miss for b in buckets) == 9
        assert sum(b.kernel for b in buckets) == 1000
        assert sum(b.total for b in buckets) == 1680

    def test_long_interval_spreads_over_buckets(self):
        att = PhaseAttributor()
        att.sample(0, 0, 0, 0)
        att.sample(1000, 0, 0, 0)  # one long all-instruction interval
        buckets = att.buckets(4)
        assert [b.instruction for b in buckets] == [250, 250, 250, 250]

    def test_csv_shape(self):
        att = PhaseAttributor()
        att.sample(0, 0, 0, 0)
        att.sample(10, 20, 30, 40)
        csv = attribution_csv(att.buckets(2))
        lines = csv.strip().splitlines()
        assert lines[0] == (
            "start_cycle,end_cycle,instruction,memory_stall,"
            "tlb_miss,kernel"
        )
        assert len(lines) == 3

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=2,
            max_size=12,
        ),
        st.integers(min_value=1, max_value=32),
    )
    def test_bucket_sums_equal_deltas(self, increments, count):
        att = PhaseAttributor()
        cum = [0, 0, 0, 0]
        att.sample(*cum)
        for inc in increments:
            cum = [c + d for c, d in zip(cum, inc)]
            att.sample(*cum)
        buckets = att.buckets(count)
        if not buckets:  # zero-span stream
            assert sum(cum) == 0
            return
        assert sum(b.instruction for b in buckets) == cum[0]
        assert sum(b.memory_stall for b in buckets) == cum[1]
        assert sum(b.tlb_miss for b in buckets) == cum[2]
        assert sum(b.kernel for b in buckets) == cum[3]


# ====================================================================== #
# ObsConfig / collector
# ====================================================================== #


class TestObsConfig:
    def test_defaults_disabled(self):
        assert ObsConfig().enabled is False

    def test_ring_capacity_validated(self):
        with pytest.raises(ValueError):
            ObsConfig(ring_capacity=1000)
        with pytest.raises(ValueError):
            ObsConfig(attribution_buckets=0)

    def test_finalize_builds_derived_histograms(self):
        collector = ObsCollector(ObsConfig(enabled=True, ring_capacity=64))
        tracer = collector.tracer
        from repro.obs.tracer import MTLB_FILL

        for cycle in (100, 228, 1000):
            tracer.clock = cycle
            tracer.emit(MTLB_FILL, 1, 2)
        tracer.emit(REMAP, 16, 50_000)
        reg = MetricsRegistry()
        collector.finalize(reg)
        hists = reg.histograms()
        assert hists["obs.mtlb_miss_interarrival_cycles"].total == 2
        assert hists["obs.remap_latency_cycles"].total == 1
        collected = reg.collect()
        assert collected["obs.events_emitted"] == 4
        assert collected["obs.events.remap"] == 1


# ====================================================================== #
# Regression diffing
# ====================================================================== #


def _snapshot(metrics):
    return {
        "schema": "repro-metrics/1",
        "label": "t",
        "meta": {},
        "runs": {"em3d|tlb96": {"metrics": dict(metrics)}},
    }


class TestMetricRegressed:
    def test_lower_is_better_direction(self):
        assert metric_regressed("total_cycles", 100, 103, 0.02)
        assert not metric_regressed("total_cycles", 100, 102, 0.02)
        assert not metric_regressed("total_cycles", 100, 90, 0.02)

    def test_higher_is_better_direction(self):
        assert metric_regressed("cache_hit_rate", 0.9, 0.85, 0.02)
        assert not metric_regressed("cache_hit_rate", 0.9, 0.89, 0.02)
        assert not metric_regressed("cache_hit_rate", 0.9, 0.95, 0.02)

    def test_zero_baseline_lower_is_better(self):
        assert metric_regressed("mtlb_faults", 0, 5, 0.02)
        assert not metric_regressed("mtlb_faults", 0, 0, 0.02)

    def test_unknown_direction_never_regresses(self):
        assert not metric_regressed("references", 100, 1000, 0.02)

    def test_min_abs_delta_floor(self):
        assert not metric_regressed(
            "tlb_time_fraction", 1e-15, 5e-13, 0.02
        )


class TestDiffSnapshots:
    def test_identical_snapshots_zero_regressions(self):
        snap = _snapshot({"total_cycles": 1000, "tlb_misses": 5})
        report = diff_snapshots(snap, snap, threshold=0.02)
        assert report.ok
        assert report.regressions == []
        assert report.changed == []

    def test_threshold_trips(self):
        base = _snapshot({"total_cycles": 1000})
        worse = _snapshot({"total_cycles": 1021})
        report = diff_snapshots(base, worse, threshold=0.02)
        assert [d.metric for d in report.regressions] == ["total_cycles"]
        at_threshold = _snapshot({"total_cycles": 1020})
        assert diff_snapshots(base, at_threshold, threshold=0.02).ok

    def test_improvement_never_regresses(self):
        base = _snapshot({"total_cycles": 1000, "cache_hit_rate": 0.8})
        better = _snapshot({"total_cycles": 500, "cache_hit_rate": 0.99})
        assert diff_snapshots(base, better, threshold=0.02).ok

    def test_disjoint_runs_are_skipped_not_compared(self):
        base = _snapshot({"total_cycles": 1000})
        other = {
            "schema": "repro-metrics/1",
            "label": "t",
            "meta": {},
            "runs": {"gcc|tlb96": {"metrics": {"total_cycles": 1}}},
        }
        report = diff_snapshots(base, other, threshold=0.02)
        assert report.ok
        assert report.only_in_baseline == ["em3d|tlb96"]
        assert report.only_in_candidate == ["gcc|tlb96"]
        assert report.deltas == []

    def test_render_mentions_regression_count(self):
        base = _snapshot({"total_cycles": 1000})
        worse = _snapshot({"total_cycles": 2000})
        text = diff_snapshots(base, worse, threshold=0.02).render()
        assert "1 regression(s)" in text
        assert "REGRESSION" in text


class TestParseThreshold:
    def test_percent_and_fraction(self):
        assert parse_threshold("2%") == pytest.approx(0.02)
        assert parse_threshold("0.02") == pytest.approx(0.02)
        assert parse_threshold(" 10 % ".replace(" ", "")) == pytest.approx(
            0.10
        )

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_threshold("fast")


def test_all_sites_have_ids():
    assert len(SITES) == 8
    assert len(set(SITES)) == 8
