"""Per-process OS page tables.

The authoritative virtual-to-physical mapping store.  Base pages and
superpages coexist: a base-page mapping points at one real frame; a
superpage mapping points at a (shadow) physical base covering many base
pages.  The software TLB miss handler consults these tables (through the
hashed page table) and the VM subsystem rewrites them on remap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..core.addrspace import (
    BASE_PAGE_SHIFT,
    BASE_PAGE_SIZE,
    is_mapping_size,
)


class MappingError(Exception):
    """An invalid mapping operation (overlap, misalignment, absent)."""


@dataclass(frozen=True)
class Mapping:
    """One virtual mapping: [vbase, vbase+size) -> [pbase, pbase+size)."""

    vbase: int
    pbase: int
    size: int
    writable: bool = True

    def __post_init__(self) -> None:
        if not is_mapping_size(self.size):
            raise MappingError(f"{self.size:#x} is not a legal mapping size")
        if self.vbase % self.size:
            raise MappingError(
                f"vbase {self.vbase:#010x} not aligned to {self.size:#x}"
            )

    @property
    def vend(self) -> int:
        """One past the last mapped virtual address."""
        return self.vbase + self.size

    @property
    def is_superpage(self) -> bool:
        """True if this mapping covers more than one base page."""
        return self.size > BASE_PAGE_SIZE

    def translate(self, vaddr: int) -> int:
        """Translate *vaddr* (must lie inside this mapping)."""
        return self.pbase + (vaddr - self.vbase)


class PageTable:
    """Mappings for one process's address space.

    Base-page mappings live in a dict keyed by virtual page number; each
    superpage mapping is entered under *every* constituent base VPN so a
    single dict probe resolves any address (this is an OS data structure,
    not hardware — the dense representation just keeps lookups O(1); the
    entry count is bounded by the process footprint).
    """

    def __init__(self) -> None:
        self._by_vpn: Dict[int, Mapping] = {}
        self._superpages: Dict[int, Mapping] = {}

    # ------------------------------------------------------------------ #
    # Installation / removal
    # ------------------------------------------------------------------ #

    def map_base_page(
        self, vaddr: int, pfn: int, writable: bool = True
    ) -> Mapping:
        """Map one base page at *vaddr* to frame *pfn*."""
        if vaddr % BASE_PAGE_SIZE:
            raise MappingError(f"{vaddr:#010x} is not page aligned")
        vpn = vaddr >> BASE_PAGE_SHIFT
        if vpn in self._by_vpn:
            raise MappingError(f"{vaddr:#010x} is already mapped")
        mapping = Mapping(
            vbase=vaddr,
            pbase=pfn << BASE_PAGE_SHIFT,
            size=BASE_PAGE_SIZE,
            writable=writable,
        )
        self._by_vpn[vpn] = mapping
        return mapping

    def map_superpage(
        self, vbase: int, pbase: int, size: int, writable: bool = True
    ) -> Mapping:
        """Map a superpage; every covered base page must be unmapped."""
        mapping = Mapping(vbase=vbase, pbase=pbase, size=size,
                          writable=writable)
        if not mapping.is_superpage:
            raise MappingError("use map_base_page for base-page mappings")
        first_vpn = vbase >> BASE_PAGE_SHIFT
        count = size >> BASE_PAGE_SHIFT
        for vpn in range(first_vpn, first_vpn + count):
            if vpn in self._by_vpn:
                raise MappingError(
                    f"superpage overlaps existing mapping at vpn {vpn:#x}"
                )
        for vpn in range(first_vpn, first_vpn + count):
            self._by_vpn[vpn] = mapping
        self._superpages[vbase] = mapping
        return mapping

    def unmap_range(self, vstart: int, length: int) -> List[Mapping]:
        """Remove every mapping wholly inside ``[vstart, vstart+length)``.

        Returns the distinct mappings removed.  A superpage straddling the
        range boundary is an error — the OS never partially unmaps one.
        """
        if vstart % BASE_PAGE_SIZE or length % BASE_PAGE_SIZE:
            raise MappingError("unmap range must be page aligned")
        end = vstart + length
        removed: List[Mapping] = []
        seen = set()
        first_vpn = vstart >> BASE_PAGE_SHIFT
        last_vpn = (end - 1) >> BASE_PAGE_SHIFT
        for vpn in range(first_vpn, last_vpn + 1):
            mapping = self._by_vpn.get(vpn)
            if mapping is None or mapping.vbase in seen:
                continue
            if mapping.vbase < vstart or mapping.vend > end:
                raise MappingError(
                    f"mapping {mapping.vbase:#010x}+{mapping.size:#x} "
                    "straddles the unmap range"
                )
            seen.add(mapping.vbase)
            removed.append(mapping)
            self._drop(mapping)
        return removed

    def _drop(self, mapping: Mapping) -> None:
        first_vpn = mapping.vbase >> BASE_PAGE_SHIFT
        count = mapping.size >> BASE_PAGE_SHIFT
        for vpn in range(first_vpn, first_vpn + count):
            del self._by_vpn[vpn]
        if mapping.is_superpage:
            del self._superpages[mapping.vbase]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, vaddr: int) -> Optional[Mapping]:
        """Return the mapping covering *vaddr*, or None."""
        return self._by_vpn.get(vaddr >> BASE_PAGE_SHIFT)

    def translate(self, vaddr: int) -> int:
        """Translate *vaddr*; raises :class:`MappingError` if unmapped."""
        mapping = self._by_vpn.get(vaddr >> BASE_PAGE_SHIFT)
        if mapping is None:
            raise MappingError(f"{vaddr:#010x} is not mapped")
        return mapping.translate(vaddr)

    def mappings(self) -> Iterator[Mapping]:
        """Yield each distinct mapping once, in ascending vbase order."""
        seen = set()
        for vpn in sorted(self._by_vpn):
            mapping = self._by_vpn[vpn]
            if mapping.vbase not in seen:
                seen.add(mapping.vbase)
                yield mapping

    def superpages(self) -> List[Mapping]:
        """Return the resident superpage mappings."""
        return [self._superpages[k] for k in sorted(self._superpages)]

    @property
    def mapped_bytes(self) -> int:
        """Total bytes of mapped virtual address space."""
        return len(self._by_vpn) * BASE_PAGE_SIZE
