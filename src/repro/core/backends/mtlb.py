"""The paper's translation backend: MTLB + shadow table + promotion.

This is the pre-refactor translation path extracted behind the
:class:`~repro.core.backends.base.TranslationBackend` protocol,
**bit-identical** to the inline code it replaced: the same structures
are built under the same conditions, the refill path is the same
statement sequence, and the ``mtlb`` metrics source registers under the
same name — pinned by the backend-equivalence suite
(``tests/integration/test_backend_equivalence.py``) and the store
fingerprints of every pre-existing scenario.

The backend covers the whole MTLB *family*: ``MtlbConfig.enabled``
selects between the conventional baseline (no shadow window decoded)
and the shadow-superpage machine, exactly as before — which is why
``backend="mtlb"`` is the default for every config ever written.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import BackendParts, TranslationBackend
from ..addrspace import BASE_PAGE_SIZE
from ..mtlb import Mtlb
from ..shadow_space import BucketShadowAllocator
from ..shadow_table import ShadowPageTable
from ...cpu.miss_handler import PageFault
from ...errors import SimulationError
from ...obs.tracer import TLB_MISS

if TYPE_CHECKING:
    from ...sim.system import System


class MtlbBackend(TranslationBackend):
    """Shadow superpages through a memory-controller TLB (ISCA 1998)."""

    name = "mtlb"

    @classmethod
    def validate(cls, config) -> None:
        if config.use_superpages and not config.mtlb.enabled:
            raise ValueError(
                "use_superpages requires an enabled MTLB "
                "(conventional superpages go through "
                "VmSubsystem.map_region_conventional_superpages)"
            )
        if config.promotion.enabled and not config.mtlb.enabled:
            raise ValueError("online promotion requires an enabled MTLB")
        if config.all_shadow and not config.mtlb.enabled:
            raise ValueError("all-shadow mode requires an enabled MTLB")
        if config.all_shadow and config.use_superpages:
            raise ValueError(
                "all-shadow base mappings cannot be promoted in place; "
                "run all-shadow with use_superpages=False"
            )

    def build_parts(self, system: "System") -> BackendParts:
        config = self.config
        if not config.mtlb.enabled:
            return BackendParts()
        shadow_table = ShadowPageTable(config.memory_map, table_base=0)
        return BackendParts(
            shadow_table=shadow_table,
            mtlb=Mtlb(
                shadow_table,
                entries=config.mtlb.entries,
                associativity=config.mtlb.associativity,
                fault_plan=system.fault_plan,
            ),
            shadow_allocator=BucketShadowAllocator(config.memory_map),
        )

    def refill_tlb(self, system: "System", vaddr: int):
        """Software TLB refill; returns (entry, handler cycles).

        With online promotion enabled, a miss on a base-page mapping may
        trigger the kernel to remap the whole region onto a shadow
        superpage inside the trap; the refill is then retried against
        the new mapping (both passes are charged).
        """
        try:
            result = system.miss_handler.handle(
                vaddr, system._kernel_access
            )
        except PageFault as exc:
            raise SimulationError(
                f"unexpected page fault at {exc.vaddr:#010x}: workload "
                "traces must map every region they touch"
            ) from exc
        cycles = result.cycles
        if (
            system.config.promotion.enabled
            and result.entry.size == BASE_PAGE_SIZE
        ):
            promoted = system.kernel.promotion.note_miss(vaddr)
            if promoted:
                system.stats.kernel_cycles += promoted
                result = system.miss_handler.handle(
                    vaddr, system._kernel_access
                )
                cycles += result.cycles
        system.tlb.insert(result.entry)
        if system._tracer is not None:
            system._tracer.emit(TLB_MISS, vaddr, cycles)
        return result.entry, cycles

    def register_metrics(self, system: "System") -> None:
        if system.mtlb is not None:
            system.metrics.add_source(
                "mtlb", lambda: system.mtlb.metrics_snapshot()
            )
