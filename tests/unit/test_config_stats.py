"""Unit tests for configuration presets, stats and result rendering."""

import pytest

from repro.sim.config import (
    SystemConfig,
    figure3_configs,
    figure4_configs,
    paper_base,
    paper_mtlb,
    paper_no_mtlb,
    with_check_penalty,
)
from repro.sim.results import (
    ResultMatrix,
    RunResult,
    render_series,
    render_table,
)
from repro.sim.stats import RunStats


class TestConfig:
    def test_paper_base(self):
        config = paper_base()
        assert config.tlb.entries == 96
        assert not config.mtlb.enabled
        assert config.label == "tlb96"

    def test_paper_mtlb_label(self):
        assert paper_mtlb(64).label == "tlb64+mtlb1282w"
        assert paper_mtlb(128, 256, 0).label == "tlb128+mtlb256full"

    def test_superpages_require_mtlb(self):
        with pytest.raises(ValueError):
            SystemConfig(use_superpages=True)

    def test_figure3_matrix(self):
        configs = figure3_configs()
        assert len(configs) == 6
        assert "tlb96" in configs and "tlb96+mtlb1282w" in configs

    def test_figure4_matrix(self):
        configs = figure4_configs()
        assert len(configs) == 10  # baseline + 3 sizes x 3 assocs
        assert "tlb128" in configs
        assert all(
            c.tlb.entries == 128 for c in configs.values()
        )

    def test_with_check_penalty(self):
        config = with_check_penalty(paper_mtlb(96), 0)
        assert config.mmc.shadow_check == 0
        assert paper_mtlb(96).mmc.shadow_check == 1  # original untouched

    def test_paper_defaults_match_section_3_2(self):
        config = paper_no_mtlb(96)
        assert config.cache.size_bytes == 512 << 10
        assert config.cache.associativity == 1
        assert config.bus.cpu_cycles_per_bus_cycle == 2
        assert config.mtlb.entries == 128
        assert config.mtlb.associativity == 2


def _stats(total=100, inst=50, mem=20, tlb=20, kernel=10):
    stats = RunStats(
        total_cycles=total,
        instruction_cycles=inst,
        memory_stall_cycles=mem,
        tlb_miss_cycles=tlb,
        kernel_cycles=kernel,
    )
    return stats


class TestStats:
    def test_consistency_check(self):
        _stats().check_consistency()
        with pytest.raises(AssertionError):
            _stats(total=99).check_consistency()

    def test_fractions(self):
        stats = _stats()
        assert stats.tlb_time_fraction == 0.2
        stats.tlb_lookups = 10
        stats.tlb_misses = 1
        assert stats.tlb_miss_rate == 0.1

    def test_zero_safe(self):
        stats = RunStats()
        assert stats.tlb_time_fraction == 0.0
        assert stats.cache_hit_rate == 0.0
        assert stats.mtlb_hit_rate == 0.0
        assert stats.avg_fill_cycles == 0.0
        assert stats.cpi == 0.0


class TestResults:
    def test_normalisation(self):
        matrix = ResultMatrix("base")
        matrix.add(RunResult("w", "base", _stats(total=200)))
        matrix.add(RunResult("w", "fast", _stats(total=100)))
        assert matrix.normalised("w", "fast") == 0.5
        assert matrix.row("w", ["base", "fast"]) == [1.0, 0.5]

    def test_zero_base_rejected(self):
        base = RunResult("w", "b", RunStats())
        other = RunResult("w", "o", _stats())
        with pytest.raises(ValueError):
            other.normalised_to(base)

    def test_render_table(self):
        out = render_table(
            ["a", "bee"], [[1, 2.5], ["x", "yy"]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert "2.500" in out

    def test_render_series(self):
        out = render_series("s", {"one": 1.0}, unit="cyc")
        assert "one" in out and "1.0000 cyc" in out
