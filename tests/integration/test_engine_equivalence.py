"""Golden scalar-vs-vector engine equivalence (DESIGN.md §10).

The vector fast-forward engine's contract is *bit-identity*: every
``RunStats`` field and every derived metric must equal the scalar
engine's on every workload and every batchable configuration — the
engines may only differ in wall-clock time.  These tests are the
contract's enforcement:

* a golden run of all five paper workloads at the quick (CI) scales,
  mixing no-MTLB, MTLB, and online-promotion configurations;
* hypothesis-sampled machine geometries at tiny scales, so geometry
  corners (tiny TLBs, fully associative MTLBs) are exercised too;
* the policy surface: ``engine="vector"`` on an unbatchable machine
  must refuse at build time, and ``engine="auto"`` must fall back to
  scalar instead.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import BenchContext
from repro.errors import SimulationError
from repro.faults import FaultConfig
from repro.obs import stats_metrics
from repro.sim.config import (
    CacheConfig,
    SystemConfig,
    paper_mtlb,
    paper_no_mtlb,
    paper_promotion,
)
from repro.sim.engine import resolve_engine, vector_supported
from repro.sim.system import System
from repro.workloads import PAPER_SUITE

#: One configuration per workload, covering both sides of the Figure 3
#: matrix and all three CPU TLB sizes.
GOLDEN_CONFIGS = {
    "compress95": paper_no_mtlb(64),
    "vortex": paper_mtlb(96),
    "radix": paper_no_mtlb(128),
    "em3d": paper_mtlb(64),
    "gcc": paper_mtlb(128),
}

TINY_SCALES = {name: 0.02 for name in PAPER_SUITE}


@pytest.fixture(scope="module")
def quick_ctx(tmp_path_factory):
    return BenchContext(
        quick=True, cache_dir=tmp_path_factory.mktemp("traces")
    )


@pytest.fixture(scope="module")
def tiny_ctx(tmp_path_factory):
    return BenchContext(
        quick=True,
        scales=TINY_SCALES,
        cache_dir=tmp_path_factory.mktemp("tiny_traces"),
    )


def assert_bit_identical(ctx, workload, config):
    scalar = ctx.run(
        workload, dataclasses.replace(config, engine="scalar")
    )
    vector = ctx.run(
        workload, dataclasses.replace(config, engine="vector")
    )
    assert dataclasses.asdict(scalar.stats) == dataclasses.asdict(
        vector.stats
    )
    assert stats_metrics(scalar.stats) == stats_metrics(vector.stats)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("workload", PAPER_SUITE)
    def test_workload_bit_identical_at_quick_scale(
        self, quick_ctx, workload
    ):
        assert_bit_identical(
            quick_ctx, workload, GOLDEN_CONFIGS[workload]
        )

    def test_promotion_config_bit_identical(self, tiny_ctx):
        assert_bit_identical(tiny_ctx, "em3d", paper_promotion())


class TestSampledGeometries:
    @settings(max_examples=10, deadline=None)
    @given(
        tlb_entries=st.sampled_from([16, 48, 96]),
        mtlb_entries=st.sampled_from([32, 128]),
        mtlb_assoc=st.sampled_from([0, 2]),
        use_mtlb=st.booleans(),
        workload=st.sampled_from(["em3d", "gcc"]),
    )
    def test_sampled_config_bit_identical(
        self,
        tiny_ctx,
        tlb_entries,
        mtlb_entries,
        mtlb_assoc,
        use_mtlb,
        workload,
    ):
        if use_mtlb:
            config = paper_mtlb(tlb_entries, mtlb_entries, mtlb_assoc)
        else:
            config = paper_no_mtlb(tlb_entries)
        assert_bit_identical(tiny_ctx, workload, config)


class TestEnginePolicy:
    def test_vector_accepted_on_set_associative_cache(self):
        """PR-8 lift: set-assoc caches batch via the residency mirror."""
        config = SystemConfig(
            cache=CacheConfig(associativity=2), engine="vector"
        )
        ok, why = vector_supported(System(dataclasses.replace(
            config, engine="auto"
        )))
        assert ok and why == ""
        assert System(config).engine == "vector"

    def test_vector_accepted_under_fault_injection(self):
        """PR-8 lift: fault consultations all live on miss paths the
        vector engine executes in program order, so plans batch."""
        config = SystemConfig(
            faults=FaultConfig(mtlb_parity_rate=0.5), engine="vector"
        )
        assert System(config).engine == "vector"

    def test_vector_refused_on_unknown_cache_model(self):
        """The one refusal left: a cache the engine has no mirror for."""

        class AlienCache:
            pass

        system = System(SystemConfig(engine="auto"))
        system.cache = AlienCache()
        ok, why = vector_supported(system)
        assert not ok and "AlienCache" in why
        system.config = dataclasses.replace(system.config, engine="vector")
        with pytest.raises(SimulationError, match="AlienCache"):
            resolve_engine(system)

    def test_auto_resolves_vector_everywhere(self):
        for config in (
            SystemConfig(),
            SystemConfig(cache=CacheConfig(associativity=2)),
            SystemConfig(faults=FaultConfig(mtlb_parity_rate=0.5)),
        ):
            system = System(config)
            assert system.engine == "vector"
            assert resolve_engine(system) == "vector"
            assert system.engine_reason == "auto: configuration batches"

    def test_invalid_engine_string_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SystemConfig(engine="turbo")

    def test_context_engine_override(self, tiny_ctx):
        override = BenchContext(
            quick=True,
            scales=TINY_SCALES,
            cache_dir=tiny_ctx.cache_dir,
            engine="scalar",
        )
        result = override.run("em3d", paper_no_mtlb(96))
        assert result.stats.references > 0
