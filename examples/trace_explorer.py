#!/usr/bin/env python3
"""Explore one observed run: slowest remaps and the Figure-3 timeline.

Runs em3d on the paper's MTLB machine with the observability subsystem
enabled (DESIGN.md §9), then prints:

* the top-5 remap events by latency (when the remaps happened, how many
  pages each moved, and what the flush-dominated cost was);
* the phase-resolved Figure-3 cycle breakdown — how the split between
  instruction / memory-stall / TLB-miss / kernel cycles evolves over
  simulated time (remap storms show up as kernel-heavy slices).

It also writes ``em3d_trace.json``: load it at https://ui.perfetto.dev
to scrub through the same run interactively.

Run:  python examples/trace_explorer.py
"""

import dataclasses

from repro.obs import CATEGORIES, ObsConfig
from repro.sim.config import CPU_HZ, paper_mtlb
from repro.sim.system import System
from repro.workloads import build_workload

SCALE = 0.08
BAR_WIDTH = 44
GLYPHS = dict(zip(CATEGORIES, "im.K"))


def main() -> None:
    config = dataclasses.replace(
        paper_mtlb(96),
        # A 1M-event ring retains every event of a run this size, so
        # rare events (remaps) survive the cache-miss firehose.
        obs=ObsConfig(enabled=True, ring_capacity=1 << 20,
                      attribution_buckets=24),
    )
    print("simulating em3d on", config.label, "with tracing on...")
    result = System(config).run(build_workload("em3d", scale=SCALE))
    obs = result.obs

    tracer = obs.tracer
    print(
        f"\ncaptured {tracer.total:,} events "
        f"({tracer.dropped:,} dropped); by site: "
        + ", ".join(
            f"{site}={count:,}"
            for site, count in sorted(tracer.site_counts().items())
        )
    )

    print("\ntop remap events by latency:")
    remaps = obs.top_events("remap", count=5)
    if not remaps:
        print("  (none — this run never called remap)")
    for event in remaps:
        ms = 1e3 * event.cycle / CPU_HZ
        print(
            f"  t={event.cycle:>11,} cycles ({ms:7.2f} ms)  "
            f"{event.a:>5,} pages  {event.b:>9,} cycles"
        )

    print(
        "\nphase-resolved Figure-3 breakdown "
        "(i=instruction m=memory-stall .=tlb-miss K=kernel):"
    )
    for bucket in obs.buckets():
        bar = ""
        for category in CATEGORIES:
            bar += GLYPHS[category] * round(
                BAR_WIDTH * bucket.fraction(category)
            )
        tlb_pct = 100 * bucket.fraction("tlb_miss")
        print(
            f"  [{bucket.start_cycle:>11,}] |{bar:<{BAR_WIDTH + 4}s}| "
            f"tlb={tlb_pct:4.1f}%"
        )

    path = obs.write_chrome_trace("em3d_trace.json", label="em3d")
    print(f"\nwrote {path} — open it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
