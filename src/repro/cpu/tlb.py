"""The processor-resident TLB model.

The paper's simulated CPU TLBs are unified instruction/data, single-cycle,
fully associative, support variable page sizes (base pages plus the
power-of-four superpages), and use a not-recently-used replacement policy.
Shadow superpages need *no change* to this TLB — a superpage entry simply
translates to a shadow physical base instead of a real one.

The lookup fast path matters for simulator throughput: entries are kept in
per-page-size dictionaries keyed by the virtual base of the mapping, so a
lookup does one masked dictionary probe per *distinct page size currently
resident* (almost always one or two) instead of scanning every entry.  The
size whose entry hit last is probed first (an MRU hint), and when entries
of several sizes cover the same address the *most specific* (smallest)
mapping always wins, independent of probe or insertion order.

For the vectorized fast-forward engine (DESIGN.md §10) the TLB also
exposes a numpy mirror of its contents: :meth:`coverage_arrays` returns
per-size sorted ``(vbase, pbase - vbase)`` arrays, cached against a
``generation`` counter that every content mutation bumps, and
:meth:`touch_pages` bulk-sets NRU referenced bits for a retired hit run.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.addrspace import BASE_PAGE_SIZE, is_mapping_size


@dataclass
class TlbEntry:
    """One TLB entry mapping a virtual range to a physical (or shadow) base."""

    vbase: int
    pbase: int
    size: int
    writable: bool = True
    supervisor: bool = False
    nru_referenced: bool = True

    def translate(self, vaddr: int) -> int:
        """Translate *vaddr* (must lie inside this entry's range)."""
        return self.pbase + (vaddr - self.vbase)

    @property
    def vend(self) -> int:
        """One past the last virtual address mapped by this entry."""
        return self.vbase + self.size


@dataclass
class TlbStats:
    """Event counters for one TLB instance."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    shootdowns: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0.0 if there were none)."""
        return self.misses / self.lookups if self.lookups else 0.0

    def metrics_snapshot(self) -> Dict[str, int]:
        """Flat counter mapping for the machine's metrics registry."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "shootdowns": self.shootdowns,
        }


class Tlb:
    """Fully associative, variable-page-size TLB with NRU replacement."""

    def __init__(self, entries: int = 96) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.capacity = entries
        self._by_size: Dict[int, Dict[int, TlbEntry]] = {}
        #: Resident page sizes in ascending order; probing this way makes
        #: the first covering entry the most specific one.
        self._sizes: List[int] = []
        #: Page size of the last lookup hit, probed first.
        self._mru_size: Optional[int] = None
        self._count = 0
        #: Bumped on every content mutation (insert/replace/remove); the
        #: vector engine uses it to invalidate its coverage mirror.
        self.generation = 0
        self._coverage_cache: Optional[
            Tuple[int, List[Tuple[int, np.ndarray, np.ndarray]]]
        ] = None
        self.stats = TlbStats()
        #: Observability event sink (None = null sink; the simulator
        #: emits ``tlb_miss`` events on the refill path, where the
        #: handler cost is known).
        self.tracer = None

    def metrics_snapshot(self) -> Dict[str, int]:
        """Counters this TLB registers into the metrics registry."""
        return self.stats.metrics_snapshot()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def lookup(self, vaddr: int) -> Optional[TlbEntry]:
        """Return the most specific entry mapping *vaddr*, or None.

        A hit marks the entry recently-used for NRU and makes its page
        size the MRU probe hint.
        """
        self.stats.lookups += 1
        entry = self._find(vaddr)
        if entry is not None:
            self.stats.hits += 1
            entry.nru_referenced = True
            self._mru_size = entry.size
            return entry
        self.stats.misses += 1
        return None

    def probe(self, vaddr: int) -> Optional[TlbEntry]:
        """Like :meth:`lookup` but with no side effects (for tests/tools)."""
        return self._find(vaddr)

    def _find(self, vaddr: int) -> Optional[TlbEntry]:
        """Most-specific covering entry: the MRU size is probed first,
        but a hit there still checks the smaller resident sizes so that
        when mappings of several sizes overlap the smallest wins."""
        by_size = self._by_size
        hint = self._mru_size
        if hint is not None:
            table = by_size.get(hint)
            if table is not None:
                entry = table.get(vaddr & ~(hint - 1))
                if entry is not None:
                    for size in self._sizes:
                        if size >= hint:
                            break
                        small = by_size[size].get(vaddr & ~(size - 1))
                        if small is not None:
                            return small
                    return entry
        for size in self._sizes:
            if size == hint:
                continue
            entry = by_size[size].get(vaddr & ~(size - 1))
            if entry is not None:
                return entry
        return None

    # ------------------------------------------------------------------ #
    # Insert / replace
    # ------------------------------------------------------------------ #

    def insert(self, entry: TlbEntry) -> Optional[TlbEntry]:
        """Insert *entry*, evicting an NRU victim if the TLB is full.

        Any pre-existing mapping for the same virtual base and size is
        replaced in place (as the paper notes some TLBs do automatically).
        Returns the evicted entry, if any.
        """
        if not is_mapping_size(entry.size):
            raise ValueError(f"{entry.size:#x} is not a legal mapping size")
        if entry.vbase & (entry.size - 1):
            raise ValueError(
                f"vbase {entry.vbase:#010x} not aligned to size {entry.size:#x}"
            )
        self.generation += 1
        table = self._by_size.get(entry.size)
        if table is not None and entry.vbase in table:
            table[entry.vbase] = entry
            self.stats.inserts += 1
            return None
        victim = None
        if self._count >= self.capacity:
            # Eviction may remove this size's (possibly just-created)
            # table from _by_size entirely, so re-fetch it afterwards.
            victim = self._evict_nru()
        table = self._by_size.get(entry.size)
        if table is None:
            table = self._by_size[entry.size] = {}
            insort(self._sizes, entry.size)
        table[entry.vbase] = entry
        self._count += 1
        self.stats.inserts += 1
        return victim

    def _evict_nru(self) -> TlbEntry:
        """Evict a not-recently-used entry (epoch reset if all are used)."""
        victim = self._find_unreferenced()
        if victim is None:
            for table in self._by_size.values():
                for entry in table.values():
                    entry.nru_referenced = False
            victim = self._find_unreferenced()
        assert victim is not None
        self._remove(victim)
        self.stats.evictions += 1
        return victim

    def _find_unreferenced(self) -> Optional[TlbEntry]:
        for table in self._by_size.values():
            for entry in table.values():
                if not entry.nru_referenced:
                    return entry
        return None

    def _remove(self, entry: TlbEntry) -> None:
        table = self._by_size[entry.size]
        del table[entry.vbase]
        if not table:
            del self._by_size[entry.size]
            self._sizes.remove(entry.size)
        self._count -= 1
        self.generation += 1

    # ------------------------------------------------------------------ #
    # Shootdown
    # ------------------------------------------------------------------ #

    def shootdown(self, vaddr: int) -> bool:
        """Remove the entry (if any) covering *vaddr*.  True if one was."""
        for size, table in list(self._by_size.items()):
            entry = table.get(vaddr & ~(size - 1))
            if entry is not None:
                self._remove(entry)
                self.stats.shootdowns += 1
                return True
        return False

    def shootdown_range(self, start: int, length: int) -> int:
        """Remove every entry overlapping ``[start, start+length)``.

        Returns the number of entries removed.  Used when the OS remaps a
        region from base pages to a shadow superpage (or back).
        """
        end = start + length
        removed = 0
        for size, table in list(self._by_size.items()):
            doomed = [
                vbase
                for vbase in table
                if vbase < end and vbase + size > start
            ]
            for vbase in doomed:
                self._remove(table[vbase])
                self.stats.shootdowns += 1
                removed += 1
        return removed

    def flush_all(self) -> int:
        """Remove every entry (context switch / full purge)."""
        removed = self._count
        self._by_size.clear()
        self._sizes.clear()
        self._count = 0
        self.generation += 1
        self.stats.shootdowns += removed
        return removed

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def occupancy(self) -> int:
        """Number of resident entries."""
        return self._count

    @property
    def reach(self) -> int:
        """Total bytes mapped by the resident entries."""
        return sum(
            size * len(table) for size, table in self._by_size.items()
        )

    @property
    def max_reach_base_pages(self) -> int:
        """Reach in bytes if every entry mapped one base page."""
        return self.capacity * BASE_PAGE_SIZE

    def entries(self) -> List[TlbEntry]:
        """Return all resident entries (unspecified order)."""
        out: List[TlbEntry] = []
        for table in self._by_size.values():
            out.extend(table.values())
        return out

    def resident_sizes(self) -> Tuple[int, ...]:
        """Page sizes currently resident, ascending (drives fast-path
        probe count and the vector engine's coverage scan order)."""
        return tuple(self._sizes)

    # ------------------------------------------------------------------ #
    # Vector-engine mirror (DESIGN.md §10)
    # ------------------------------------------------------------------ #

    def coverage_arrays(self) -> List[Tuple[int, np.ndarray, np.ndarray]]:
        """Numpy mirror of the resident entries, for bulk coverage tests.

        Returns ``[(size, vbases, deltas), ...]`` in ascending size
        order, where ``vbases`` is sorted and ``deltas[i]`` is
        ``pbase - vbase`` of the entry at ``vbases[i]`` (so
        ``paddr = vaddr + delta``).  The mirror is rebuilt only when
        :attr:`generation` has moved since the last call; hit runs
        (which never mutate content) reuse it for free.
        """
        cached = self._coverage_cache
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        views: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for size in self._sizes:
            table = self._by_size[size]
            count = len(table)
            vbases = np.fromiter(table.keys(), dtype=np.int64, count=count)
            deltas = np.fromiter(
                (e.pbase - e.vbase for e in table.values()),
                dtype=np.int64,
                count=count,
            )
            order = np.argsort(vbases)
            views.append((size, vbases[order], deltas[order]))
        self._coverage_cache = (self.generation, views)
        return views

    def touch_pages(self, size: int, vbases: Iterable[int]) -> None:
        """Bulk-set NRU referenced bits for entries of one page size.

        Used by the vector engine when it retires a hit run: every entry
        the run hit is marked exactly as the scalar loop would have,
        before the run-ending miss consults NRU state for eviction.
        Unknown vbases are ignored (the caller works from a mirror that
        is never stale within a run, but tests may be sloppier).
        """
        table = self._by_size.get(size)
        if table is None:
            return
        for vbase in vbases:
            entry = table.get(vbase)
            if entry is not None:
                entry.nru_referenced = True
