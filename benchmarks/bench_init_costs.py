"""E5 — Section 3.3 initialisation costs.

Measures cache-flush cost per 4 KB page (paper: ~1400 cycles), warm page
copy cost (paper: ~11,400 cycles — the cost shadow remapping avoids),
and em3d's 1120-page remap() breakdown (paper: 1,659,154 cycles total,
1,497,067 of it flushing).
"""

from repro.bench import measure_em3d_remap


def test_init_costs(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: measure_em3d_remap(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
