"""Unit tests: the spec wire codec (daemon JSON protocol).

The daemon admits work by fingerprint, so the codec's contract is not
"equal-ish after a round trip" but *fingerprint-exact*: a spec
serialised by a client, shipped as JSON, and rebuilt by the daemon must
hash to the same store address as the original.  Anything less and the
daemon would re-execute (or worse, mis-serve) scenarios the batch path
already committed.
"""

import dataclasses
import json

import pytest

from repro.api import (
    ScenarioSpec,
    config_from_tree,
    spec_from_doc,
    spec_to_doc,
)
from repro.errors import SpecValidationError
from repro.faults.plan import FaultConfig
from repro.serve.scheduler import spec_fingerprint
from repro.sim.config import paper_base, paper_mtlb


def wire_trip(spec):
    """Client-side encode -> JSON bytes -> daemon-side decode."""
    return spec_from_doc(json.loads(json.dumps(spec_to_doc(spec))))


class _Ctx:
    """Minimal stand-in for the scale context spec_fingerprint reads."""

    quick = True
    sanitize = False
    scales = {"em3d": 0.02, "radix": 0.02}

    def scale_of(self, workload):
        return self.scales.get(workload, 0.02)


def fp(spec):
    return spec_fingerprint(spec, _Ctx())


class TestRoundTrip:
    def test_plain_spec_is_fingerprint_exact(self):
        spec = ScenarioSpec("em3d", paper_mtlb(96), seed=7)
        assert fp(wire_trip(spec)) == fp(spec)

    def test_mix_spec_keeps_scheduling_shape(self):
        spec = ScenarioSpec(
            ("em3d", "radix"), paper_base(), seed=3,
            quantum_refs=5000, switch_cost=200,
        )
        back = wire_trip(spec)
        assert back.is_mix
        assert back.workloads == ("em3d", "radix")
        assert back.quantum_refs == 5000
        assert back.switch_cost == 200
        assert fp(back) == fp(spec)

    def test_fault_triggers_survive_json_listification(self):
        """JSON turns the ((site, n), ...) trigger tuples into nested
        lists; the decoder must rebuild real tuples or FaultConfig
        equality (and the fingerprint) breaks."""
        config = dataclasses.replace(
            paper_base(),
            faults=FaultConfig(triggers=(("mtlb_parity", 3),)),
        )
        spec = ScenarioSpec("em3d", config)
        back = wire_trip(spec)
        assert back.config.faults.triggers == (("mtlb_parity", 3),)
        assert fp(back) == fp(spec)

    def test_overrides_round_trip_without_touching_fingerprint(self):
        base = ScenarioSpec("em3d", paper_base())
        spec = dataclasses.replace(
            base, engine="scalar", scale=0.5,
            deadline_seconds=30.0, max_attempts=2,
        )
        back = wire_trip(spec)
        assert back.engine == "scalar"
        assert back.deadline_seconds == 30.0
        assert back.max_attempts == 2
        # Budget overrides are result-irrelevant: fingerprint-excluded.
        assert fp(back) == fp(dataclasses.replace(base, scale=0.5))

    def test_missing_config_defaults_to_paper_base(self):
        back = spec_from_doc({"workload": "em3d"})
        assert back.config == paper_base()


class TestRejection:
    def test_unknown_spec_field_is_a_hard_error(self):
        doc = spec_to_doc(ScenarioSpec("em3d"))
        doc["frobnicate"] = 1
        with pytest.raises(SpecValidationError, match="frobnicate"):
            spec_from_doc(doc)

    def test_unknown_config_field_is_a_hard_error(self):
        doc = spec_to_doc(ScenarioSpec("em3d"))
        doc["config"]["made_up_knob"] = True
        with pytest.raises(SpecValidationError, match="made_up_knob"):
            spec_from_doc(doc)

    def test_missing_workload_rejected(self):
        with pytest.raises(SpecValidationError, match="workload"):
            spec_from_doc({"seed": 1})

    def test_non_object_documents_rejected(self):
        with pytest.raises(SpecValidationError):
            spec_from_doc(["em3d"])
        with pytest.raises(SpecValidationError):
            config_from_tree("tlb96")

    def test_invalid_field_values_surface_as_validation_errors(self):
        with pytest.raises(SpecValidationError):
            spec_from_doc({"workload": "em3d", "scale": -1.0})
        with pytest.raises(SpecValidationError):
            spec_from_doc({"workload": "em3d", "engine": "quantum"})
