"""A4 — online superpage promotion vs static remap hints.

Section 5 of the paper argues a Romer-style online promotion policy
would port naturally to shadow superpages (remapping is a flush, not a
copy).  The bench compares: no superpages, the paper's static hints, and
miss-driven online promotion at several thresholds.
"""

from repro.bench import run_promotion_ablation


def test_promotion_ablation(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_promotion_ablation(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    for workload, fraction in result.captured.items():
        print(f"  {workload}: online policy captured "
              f"{100 * fraction:.0f}% of the static benefit")
    assert result.shape_errors == [], "\n".join(result.shape_errors)
