"""Runway-style system bus model.

The paper models HP's Runway bus: a split-transaction, 64-bit multiplexed
address/data bus clocked at 120 MHz against a 240 MHz CPU, i.e. a 2:1 CPU
to bus clock ratio.  With a single simulated CPU there is no arbitration
contention, so the model charges a fixed request latency and a per-beat
data-return latency, and tracks occupancy for utilisation statistics.

All returned latencies are in CPU cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.addrspace import CACHE_LINE_SIZE

#: Bus data-path width in bytes (Runway is 64-bit).
BUS_WIDTH_BYTES = 8


@dataclass(frozen=True)
class BusTiming:
    """Bus timing parameters, in *bus* cycles unless noted."""

    #: CPU cycles per bus cycle (240 MHz CPU / 120 MHz bus).
    cpu_cycles_per_bus_cycle: int = 2
    #: Arbitration + address phase, in bus cycles.
    request_cycles: int = 2
    #: Cycles per data beat (8 bytes), in bus cycles.
    beat_cycles: int = 1

    @property
    def line_beats(self) -> int:
        """Data beats needed to move one cache line."""
        return CACHE_LINE_SIZE // BUS_WIDTH_BYTES


@dataclass
class BusStats:
    """Occupancy counters (in CPU cycles) for utilisation reporting."""

    transactions: int = 0
    fill_transactions: int = 0
    writeback_transactions: int = 0
    busy_cpu_cycles: int = 0


class Bus:
    """Fixed-latency split-transaction bus."""

    def __init__(self, timing: BusTiming = BusTiming()) -> None:
        self.timing = timing
        self.stats = BusStats()

    def fill_request_cycles(self) -> int:
        """CPU cycles to issue a cache-fill request to the MMC."""
        timing = self.timing
        cycles = timing.request_cycles * timing.cpu_cycles_per_bus_cycle
        self.stats.transactions += 1
        self.stats.fill_transactions += 1
        self.stats.busy_cpu_cycles += cycles
        return cycles

    def fill_return_cycles(self) -> int:
        """CPU cycles to return one cache line of data to the CPU."""
        timing = self.timing
        cycles = (
            timing.line_beats
            * timing.beat_cycles
            * timing.cpu_cycles_per_bus_cycle
        )
        self.stats.busy_cpu_cycles += cycles
        return cycles

    def writeback_cycles(self) -> int:
        """CPU cycles of bus occupancy for one writeback (request + data).

        Writebacks are buffered: they occupy the bus but do not stall the
        processor, so callers add this to occupancy statistics rather than
        to the stall time.
        """
        timing = self.timing
        cycles = (
            timing.request_cycles + timing.line_beats * timing.beat_cycles
        ) * timing.cpu_cycles_per_bus_cycle
        self.stats.transactions += 1
        self.stats.writeback_transactions += 1
        self.stats.busy_cpu_cycles += cycles
        return cycles

    def uncached_write_cycles(self) -> int:
        """CPU cycles for one uncached control-register write to the MMC."""
        timing = self.timing
        cycles = (
            timing.request_cycles + timing.beat_cycles
        ) * timing.cpu_cycles_per_bus_cycle
        self.stats.transactions += 1
        self.stats.busy_cpu_cycles += cycles
        return cycles

    def utilisation(self, total_cpu_cycles: int) -> float:
        """Fraction of *total_cpu_cycles* the bus was busy."""
        if total_cpu_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.busy_cpu_cycles / total_cpu_cycles)
