"""Ablation A10 — page-granularity gather (the Impulse programme).

A workload repeatedly probes 256 hot pages scattered across a 64 MB
structure.  Base pages need 256 CPU-TLB entries (2.7x a 96-entry TLB:
thrash); remapping the *whole* structure costs shadow space and remap
time proportional to 64 MB; gathering just the hot pages builds a single
1 MB superpage alias — one TLB entry, ~256 pages of setup.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.addrspace import BASE_PAGE_SIZE
from ..ext.gather import GatherMapper
from ..sim.config import CacheConfig, paper_mtlb, paper_no_mtlb
from ..sim.results import render_table
from ..sim.system import System

TABLE_BASE = 0x1000_0000
TABLE_BYTES = 64 << 20
HOT_PAGES = 256
PROBES = 120_000
ALIAS_BASE = 0x7000_0000


@dataclass
class GatherResult:
    """A10 outcome."""

    cycles: Dict[str, int]
    gather_cost: int
    report: str
    shape_errors: List[str]


def _hot_pages(rng) -> np.ndarray:
    pages = rng.choice(TABLE_BYTES >> 12, size=HOT_PAGES, replace=False)
    return np.sort(pages.astype(np.int64))


def _probe_stream(rng, bases: np.ndarray) -> np.ndarray:
    picks = rng.integers(0, len(bases), size=PROBES)
    offsets = rng.integers(0, BASE_PAGE_SIZE // 8, size=PROBES) * 8
    return bases[picks] + offsets


def _measure(system, process, bases: np.ndarray, rng) -> int:
    cycles = 0
    for vaddr in _probe_stream(rng, bases).tolist():
        cycles += system.touch(process, vaddr)
    return cycles


def run_gather_ablation() -> GatherResult:
    """Measure the hot-subset probe loop under three mappings."""
    cache = CacheConfig(physically_indexed=True)
    rng = np.random.default_rng(13)
    hot = _hot_pages(rng)

    cycles: Dict[str, int] = {}

    # 1. Base pages, conventional machine.
    system = System(dataclasses.replace(paper_no_mtlb(96), cache=cache))
    process = system.kernel.create_process("probe")
    system.kernel.sys_map(process, TABLE_BASE, TABLE_BYTES)
    bases = TABLE_BASE + (hot << 12)
    cycles["base pages"] = _measure(
        system, process, bases, np.random.default_rng(7)
    )

    # 2. Gather the hot pages into one 1 MB superpage alias.
    system = System(dataclasses.replace(paper_mtlb(96), cache=cache))
    process = system.kernel.create_process("probe")
    system.kernel.sys_map(process, TABLE_BASE, TABLE_BYTES)
    mapper = GatherMapper(system)
    gather_cost = mapper.gather(
        process, ALIAS_BASE, (TABLE_BASE + (hot << 12)).tolist()
    )
    alias_bases = ALIAS_BASE + np.arange(HOT_PAGES, dtype=np.int64) * 4096
    cycles["gathered alias"] = _measure(
        system, process, alias_bases, np.random.default_rng(7)
    )

    rows = [
        [label, f"{value:,}"] for label, value in cycles.items()
    ]
    rows.append(["gather setup", f"{gather_cost:,}"])
    report = render_table(
        ["configuration", "cycles for 120k hot-page probes"],
        rows,
        title="A10: gathering 256 scattered hot pages (64 MB structure)",
    )
    errors: List[str] = []
    if cycles["gathered alias"] + gather_cost >= cycles["base pages"]:
        errors.append("gathering did not pay for itself")
    if cycles["gathered alias"] > cycles["base pages"] * 0.8:
        errors.append(
            "gathered probes are not clearly faster than base pages"
        )
    return GatherResult(
        cycles=cycles, gather_cost=gather_cost, report=report,
        shape_errors=errors,
    )