"""Victima-style cache-resident TLB entry pool (arXiv:2310.04158).

Victima repurposes a slice of the L2 data cache as a massive victim
TLB: entries evicted from (or freshly filled past) the small CPU TLB
are stashed into ordinary cache lines, so TLB reach scales with cache
capacity instead of dedicated TLB SRAM.  The model here is a dedicated
:class:`~repro.mem.cache.SetAssociativeCache` standing in for the L2
slice — it reproduces the *set-pressure* behaviour (entries from hot
page-number neighbourhoods fight over the same ways and evict each
other) without perturbing the data cache's own hit rate, which keeps
the backend orthogonal to the cache model the workloads already run
against.

Miss path: every CPU TLB miss first probes the pool (``probe_cycles``);
a pool hit installs the stashed entry after ``hit_cycles`` — the
latency of an L2 access — instead of the full software walk.  A pool
miss runs the ordinary software refill and stashes the new entry; the
entry the CPU TLB evicts to make room is stashed too (that is the
"victim" in Victima).  Only base-page entries are pooled: superpage
mappings already have reach and would alias many page numbers onto one
line.

Entries are process-tagged (the multiprogramming scheduler flushes the
CPU TLB on every context switch, so the pool is exactly what survives
a switch): a pool line whose owner is not the current process is a
miss.  Remap shootdowns drop overlapping pool entries so the pool can
never serve a translation the OS has withdrawn — an invariant the
sanitizer re-checks against the live page tables.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from .base import TranslationBackend, require_conventional
from ..addrspace import (
    BASE_PAGE_SIZE,
    CACHE_LINE_SHIFT,
    CACHE_LINE_SIZE,
    is_power_of_two,
)
from ...cpu.miss_handler import PageFault
from ...cpu.tlb import TlbEntry
from ...errors import InvariantViolation, SimulationError
from ...mem.cache import SetAssociativeCache
from ...obs.tracer import TLB_MISS

if TYPE_CHECKING:
    from ...sim.system import System


@dataclass(frozen=True)
class VictimaConfig:
    """Knobs of the cache-resident entry pool.

    ``size_bytes``/``associativity`` shape the L2 slice holding TLB
    entries (one entry per cache line); ``probe_cycles`` is charged for
    the pool lookup on every CPU TLB miss and ``hit_cycles`` for
    reading an entry out of the cache on a pool hit.
    """

    size_bytes: int = 32 << 10
    associativity: int = 8
    hit_cycles: int = 12
    probe_cycles: int = 2


class VictimaBackend(TranslationBackend):
    """Stash victim TLB entries in a cache-set-pressured pool."""

    name = "victima"

    def __init__(self, config) -> None:
        super().__init__(config)
        self.knobs: VictimaConfig = config.victima
        #: The L2 slice: one line per pooled entry, indexed by the
        #: entry's virtual page number so neighbouring pages contend
        #: for the same set exactly as Victima's PTE lines do.
        self.pool = SetAssociativeCache(
            size_bytes=self.knobs.size_bytes,
            associativity=self.knobs.associativity,
            physically_indexed=False,
        )
        #: Directory shadowing the pool's tags: vpn -> (pid, entry).
        #: Kept in lockstep with the cache via ``peek_lru`` so the
        #: sanitizer can equate occupancies.
        self._directory: Dict[int, Tuple[int, TlbEntry]] = {}
        self._counters = {
            "pool_hits": 0,
            "pool_misses": 0,
            "stashes": 0,
            "evictions": 0,
            "shootdown_drops": 0,
            "wrong_process": 0,
        }

    @classmethod
    def validate(cls, config) -> None:
        require_conventional(config, "victima")
        knobs = config.victima
        if knobs.associativity < 1:
            raise ValueError("victima.associativity must be >= 1")
        if knobs.size_bytes % (CACHE_LINE_SIZE * knobs.associativity):
            raise ValueError(
                "victima.size_bytes must divide into "
                f"{CACHE_LINE_SIZE}-byte lines across "
                f"{knobs.associativity} ways"
            )
        num_sets = knobs.size_bytes // (
            CACHE_LINE_SIZE * knobs.associativity
        )
        if not is_power_of_two(num_sets):
            raise ValueError(
                "victima pool must have a power-of-two set count, got "
                f"{num_sets}"
            )
        if knobs.hit_cycles < 0 or knobs.probe_cycles < 0:
            raise ValueError(
                "victima.hit_cycles and victima.probe_cycles must be >= 0"
            )

    @classmethod
    def vector_config_supported(cls, config) -> Tuple[bool, str]:
        del config
        return False, (
            "backend 'victima' has no vector coverage mirror yet "
            "(v1 runs the scalar engine)"
        )

    # -- miss path ------------------------------------------------------ #

    @staticmethod
    def _line(vpn: int) -> int:
        """Pool line address for a virtual page number (vaddr == paddr:
        the pool is a model structure, not part of the memory map)."""
        return vpn << CACHE_LINE_SHIFT

    def refill_tlb(self, system: "System", vaddr: int):
        counters = self._counters
        process = system.kernel.current
        pid = process.pid if process is not None else -1
        vpn = vaddr // BASE_PAGE_SIZE
        line = self._line(vpn)
        cycles = self.knobs.probe_cycles
        pooled = self._directory.get(vpn)
        if (
            pooled is not None
            and pooled[0] == pid
            and self.pool.probe(line, line)
        ):
            counters["pool_hits"] += 1
            cycles += self.knobs.hit_cycles
            self.pool.access(line, line, is_write=False)  # LRU touch
            # A fresh object, exactly as a software refill would build:
            # TlbEntry is mutable (the TLB flips NRU bits in place), so
            # installing the pooled object would alias pool and TLB
            # state and perturb replacement.  With the copy, the CPU
            # TLB's state evolution — and therefore the miss count —
            # is bit-identical to the conventional baseline; only the
            # refill cycle cost changes.
            entry = dataclasses.replace(pooled[1], nru_referenced=True)
            self._insert(system, pid, entry)
            if system._tracer is not None:
                system._tracer.emit(TLB_MISS, vaddr, cycles)
            return entry, cycles
        if pooled is not None and pooled[0] != pid:
            counters["wrong_process"] += 1
        counters["pool_misses"] += 1
        try:
            result = system.miss_handler.handle(
                vaddr, system._kernel_access
            )
        except PageFault as exc:
            raise SimulationError(
                f"unexpected page fault at {exc.vaddr:#010x}: workload "
                "traces must map every region they touch"
            ) from exc
        cycles += result.cycles
        entry = result.entry
        if entry.size == BASE_PAGE_SIZE:
            self._stash(pid, entry)
        self._insert(system, pid, entry)
        if system._tracer is not None:
            system._tracer.emit(TLB_MISS, vaddr, cycles)
        return entry, cycles

    def _insert(self, system: "System", pid: int, entry: TlbEntry) -> None:
        """Install into the CPU TLB, stashing the evicted victim."""
        victim = system.tlb.insert(entry)
        if victim is not None and victim.size == BASE_PAGE_SIZE:
            self._stash(pid, victim)

    def _stash(self, pid: int, entry: TlbEntry) -> None:
        """Write *entry* into the pool, retiring whatever its set
        evicts."""
        vpn = entry.vbase // BASE_PAGE_SIZE
        line = self._line(vpn)
        if not self.pool.probe(line, line):
            evicted = self.pool.peek_lru(line, line)
            if evicted is not None:
                self._directory.pop(evicted, None)
                self._counters["evictions"] += 1
        self.pool.access(line, line, is_write=False)
        # Store a private copy: the TLB-resident object keeps mutating
        # (NRU bits) after the stash.
        self._directory[vpn] = (pid, dataclasses.replace(entry))
        self._counters["stashes"] += 1

    def on_shootdown(
        self, system: "System", vstart: int, length: int
    ) -> None:
        del system
        end = vstart + length
        doomed = [
            vpn
            for vpn, (_pid, entry) in self._directory.items()
            if entry.vbase < end and entry.vbase + entry.size > vstart
        ]
        for vpn in doomed:
            del self._directory[vpn]
            line = self._line(vpn)
            self.pool.flush_line(line, line)
            self._counters["shootdown_drops"] += 1

    # -- metrics / checking --------------------------------------------- #

    def register_metrics(self, system: "System") -> None:
        def snapshot() -> Dict[str, int]:
            snap = dict(self._counters)
            snap["pool_occupancy"] = self.pool.occupancy
            return snap

        system.metrics.add_source("victima", snapshot)
        system.metrics.add_source(
            "backend", lambda: {"reach_bytes": self.reach_bytes(system)}
        )

    def reach_bytes(self, system: "System") -> int:
        """CPU TLB reach plus every live pooled entry (each covers one
        base page; double-counting TLB-resident pages is negligible and
        mirrors how Victima reports combined reach)."""
        return system.tlb.reach + len(self._directory) * BASE_PAGE_SIZE

    def sanitize(self, system: "System", where: str) -> None:
        """Pool/directory lockstep and translation freshness: every
        directory entry must be cache-resident (and vice versa, by
        occupancy), cover exactly one base page, and still agree with
        its owning process's page table (else a shootdown was missed)."""
        if self.pool.occupancy != len(self._directory):
            raise InvariantViolation(
                "backend.victima",
                f"pool occupancy {self.pool.occupancy} != directory "
                f"size {len(self._directory)}",
                where,
            )
        processes = {p.pid: p for p in system.kernel._processes.values()}
        for vpn, (pid, entry) in self._directory.items():
            line = self._line(vpn)
            if not self.pool.probe(line, line):
                raise InvariantViolation(
                    "backend.victima",
                    f"directory entry for vpn {vpn:#x} has no pool line",
                    where,
                )
            if entry.size != BASE_PAGE_SIZE:
                raise InvariantViolation(
                    "backend.victima",
                    f"pooled entry {entry.vbase:#010x} has size "
                    f"{entry.size:#x}; only base pages may be pooled",
                    where,
                )
            process = processes.get(pid)
            if process is None:
                continue
            mapping = process.page_table.lookup(entry.vbase)
            if mapping is None or mapping.translate(entry.vbase) != entry.pbase:
                raise InvariantViolation(
                    "backend.victima",
                    f"pooled entry {entry.vbase:#010x} -> "
                    f"{entry.pbase:#010x} no longer matches process "
                    f"{pid}'s page table (missed shootdown)",
                    where,
                )
