"""MMC-provided stream buffers (paper Section 6, future work).

The paper's closing section lists "MMC-provided stream buffers" (after
Jouppi, and McKee & Wulf) among the Impulse follow-ons: since the memory
controller already intercepts every fill, it can detect sequential miss
streams and prefetch ahead into small line buffers, hiding DRAM latency
for streaming access patterns — exactly the patterns (radix's sequential
key reads, compress's buffers) that remain after the MTLB removes the
TLB bottleneck.

The unit sits in the MMC *after* shadow retranslation, so it sees real
addresses and works for shadow and non-shadow traffic alike.

Model: ``buffers`` independent streams, each holding up to ``depth``
prefetched line addresses.  A fill that hits a buffered line is served
at buffer latency (no DRAM access on the critical path) and triggers a
background prefetch of the next line (DRAM occupancy is tracked but not
charged to the fill).  A fill that misses trains a two-miss stride-1
detector; on confirmation the LRU buffer is reallocated to the new
stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.addrspace import CACHE_LINE_SHIFT
from .dram import Dram


@dataclass(frozen=True)
class StreamBufferConfig:
    """Stream-buffer geometry and timing."""

    enabled: bool = False
    #: Number of independent stream buffers.
    buffers: int = 4
    #: Prefetched lines held per buffer.
    depth: int = 4
    #: MMC cycles to deliver a line from a buffer (SRAM read).
    hit_cycles: int = 1


@dataclass
class StreamBufferStats:
    """Event counters for the stream-buffer unit."""

    lookups: int = 0
    hits: int = 0
    allocations: int = 0
    prefetches: int = 0
    #: MMC cycles of DRAM occupancy spent on prefetches (off the
    #: critical path, reported for bus/DRAM utilisation accounting).
    prefetch_mmc_cycles: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of fills served from a buffer."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Stream:
    """One buffer: the lines it currently holds, oldest first."""

    lines: List[int] = field(default_factory=list)
    next_line: int = 0
    lru: int = 0


class StreamBufferUnit:
    """Sequential-stream prefetcher in front of DRAM."""

    def __init__(self, config: StreamBufferConfig, dram: Dram) -> None:
        if config.buffers < 1 or config.depth < 1:
            raise ValueError("buffers and depth must be positive")
        self.config = config
        self.dram = dram
        self.stats = StreamBufferStats()
        self._streams: List[_Stream] = [
            _Stream() for _ in range(config.buffers)
        ]
        #: line -> the line that missed just before it (stride detector).
        self._last_misses: Dict[int, bool] = {}
        self._clock = 0

    # ------------------------------------------------------------------ #
    # The MMC-facing operation
    # ------------------------------------------------------------------ #

    def lookup(self, real_paddr: int) -> Optional[int]:
        """Try to serve a fill for *real_paddr* from a buffer.

        Returns the MMC-cycle cost if it hits (and prefetches the next
        line in the background), or None on a miss (after training the
        detector, which may allocate a stream).
        """
        self._clock += 1
        self.stats.lookups += 1
        line = real_paddr >> CACHE_LINE_SHIFT
        for stream in self._streams:
            if line in stream.lines:
                self.stats.hits += 1
                stream.lines.remove(line)
                stream.lru = self._clock
                self._prefetch(stream)
                return self.config.hit_cycles
        self._train(line)
        return None

    def _train(self, line: int) -> None:
        """Two-miss stride-1 detection: miss at L after a miss at L-1
        allocates a stream prefetching from L+1."""
        if self._last_misses.pop(line - 1, None) is not None:
            self._allocate(line + 1)
        self._last_misses[line] = True
        if len(self._last_misses) > 64:
            # Bounded detector table: drop the oldest half arbitrarily.
            for stale in list(self._last_misses)[:32]:
                del self._last_misses[stale]

    def _allocate(self, first_line: int) -> None:
        victim = min(self._streams, key=lambda s: s.lru)
        victim.lines = []
        victim.next_line = first_line
        victim.lru = self._clock
        self.stats.allocations += 1
        for _ in range(self.config.depth):
            self._prefetch(victim)

    def _prefetch(self, stream: _Stream) -> None:
        """Fetch the stream's next line into the buffer (background)."""
        if len(stream.lines) >= self.config.depth:
            return
        line = stream.next_line
        stream.next_line += 1
        stream.lines.append(line)
        self.stats.prefetches += 1
        self.stats.prefetch_mmc_cycles += self.dram.access_cycles(
            line << CACHE_LINE_SHIFT
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def buffered_lines(self) -> int:
        """Total lines currently held across all buffers."""
        return sum(len(s.lines) for s in self._streams)
