"""DRAM timing model with a simple row-buffer.

The memory controller's DRAM array is modelled with per-bank open rows:
an access that hits the open row of its bank is fast; otherwise the bank
pays a precharge + activate penalty.  Latencies are expressed in MMC
(120 MHz) cycles and converted to CPU cycles by the caller's clock ratio.

This level of detail is enough to give MTLB fills (single 4-byte loads of
shadow-table entries, which exhibit good row locality for streaming
workloads and poor locality for random ones) a realistic cost relative to
line fills, which is what Figure 4(B) measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class DramTiming:
    """DRAM timing parameters in MMC (120 MHz) cycles."""

    #: Access that hits the open row of its bank.
    row_hit_cycles: int = 4
    #: Access that must precharge + activate a new row.
    row_miss_cycles: int = 8
    #: Number of independent banks.
    banks: int = 8
    #: log2 of the row size in bytes (rows interleave across banks above
    #: this granularity).
    row_shift: int = 12


@dataclass
class DramStats:
    """Event counters for the DRAM model."""

    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        return self.row_hits / self.accesses if self.accesses else 0.0


class Dram:
    """Open-row DRAM model; returns access latencies in MMC cycles."""

    def __init__(self, timing: DramTiming = DramTiming()) -> None:
        self.timing = timing
        self._open_rows: List[int] = [-1] * timing.banks
        self.stats = DramStats()

    def access_cycles(self, paddr: int) -> int:
        """Return the MMC-cycle latency of one DRAM access at *paddr*."""
        timing = self.timing
        row = paddr >> timing.row_shift
        bank = row % timing.banks
        self.stats.accesses += 1
        if self._open_rows[bank] == row:
            self.stats.row_hits += 1
            return timing.row_hit_cycles
        self.stats.row_misses += 1
        self._open_rows[bank] = row
        return timing.row_miss_cycles
