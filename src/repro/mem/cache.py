"""Data cache model (HP PA8000-like).

The paper's simulated data cache is a single-level, direct-mapped, 512 KB,
virtually indexed / physically tagged (VIPT), writeback cache with 32-byte
lines and single-cycle hits.  Being virtually indexed, the set index comes
from the virtual address while the tag is the full physical line address —
which is what allows cache lines to be tagged with *shadow* physical
addresses without the cache noticing anything unusual, and what lets the OS
flush a remapped region by walking its virtual addresses.

Two implementations share one interface: a fast direct-mapped cache (the
paper's configuration, and the simulator hot path) and a generic
set-associative LRU cache used for sensitivity studies and tests.  The
direct-mapped cache keeps its tag and dirty state in numpy arrays so the
vectorized fast-forward engine (DESIGN.md §10) can predict whole hit runs
with one fancy-indexed comparison (:meth:`DirectMappedCache.bulk_probe`).

The cache is purely *functional* here (hit/miss/writeback decisions); all
timing is charged by :class:`repro.sim.system.System` and
:class:`repro.mem.mmc.MemoryController`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.addrspace import CACHE_LINE_SHIFT, CACHE_LINE_SIZE, is_power_of_two

#: Sentinel tag meaning "line invalid".
_INVALID = -1


@dataclass
class CacheStats:
    """Event counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    flush_lines_checked: int = 0
    flush_lines_present: int = 0
    flush_writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 if there were none)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def metrics_snapshot(self) -> Dict[str, int]:
        """Flat counter mapping for the machine's metrics registry.

        ``writebacks`` is the combined eviction + flush total (the
        number ``RunStats.cache_writebacks`` has always reported); the
        raw parts are exposed alongside it.
        """
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks + self.flush_writebacks,
            "evict_writebacks": self.writebacks,
            "flush_writebacks": self.flush_writebacks,
            "flush_lines_checked": self.flush_lines_checked,
            "flush_lines_present": self.flush_lines_present,
        }


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Physical line address (paddr of line start) written back, if any.
    writeback_paddr: Optional[int] = None


class DirectMappedCache:
    """Direct-mapped writeback cache — the simulator fast path.

    Virtually indexed (the paper's PA8000-like configuration) by
    default; ``physically_indexed=True`` selects physical indexing,
    which the no-copy page-recoloring extension requires (recoloring
    changes a page's *physical* name to move it between cache colors).
    """

    associativity = 1

    def __init__(
        self,
        size_bytes: int = 512 << 10,
        physically_indexed: bool = False,
    ) -> None:
        if size_bytes % CACHE_LINE_SIZE:
            raise ValueError("cache size must be a multiple of the line size")
        num_sets = size_bytes // CACHE_LINE_SIZE
        if not is_power_of_two(num_sets):
            raise ValueError("number of cache sets must be a power of two")
        self.size_bytes = size_bytes
        self.num_sets = num_sets
        self.physically_indexed = physically_indexed
        self._index_mask = num_sets - 1
        # Numpy state so the vector engine can compare a whole reference
        # window against the tag array at once; mutated in place only
        # (the engine holds live views across miss handling).
        self._tags = np.full(num_sets, _INVALID, dtype=np.int64)
        self._dirty = np.zeros(num_sets, dtype=np.uint8)
        #: Mutation stamp for every *API* path that can change line
        #: residency (kernel HPT probes, flushes).  The vector engine
        #: fills lines by writing the arrays directly, so a moved stamp
        #: during miss service means some other agent polluted the cache
        #: and in-flight window predictions must be rebuilt.
        self.mutation_stamp = 0
        self.stats = CacheStats()

    def metrics_snapshot(self) -> Dict[str, int]:
        """Counters this cache registers into the metrics registry."""
        return self.stats.metrics_snapshot()

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #

    def access(self, vaddr: int, paddr: int, is_write: bool) -> AccessResult:
        """Look up (and on a miss, fill) the line for *vaddr*/*paddr*.

        Returns whether the access hit, and the physical address of any
        dirty victim line that must be written back.
        """
        idx_addr = paddr if self.physically_indexed else vaddr
        idx = (idx_addr >> CACHE_LINE_SHIFT) & self._index_mask
        tag = paddr >> CACHE_LINE_SHIFT
        stats = self.stats
        stats.accesses += 1
        if self._tags[idx] == tag:
            stats.hits += 1
            if is_write:
                self._dirty[idx] = 1
            return AccessResult(hit=True)
        stats.misses += 1
        self.mutation_stamp += 1
        writeback = None
        if self._tags[idx] != _INVALID and self._dirty[idx]:
            writeback = int(self._tags[idx]) << CACHE_LINE_SHIFT
            stats.writebacks += 1
        self._tags[idx] = tag
        self._dirty[idx] = 1 if is_write else 0
        return AccessResult(hit=False, writeback_paddr=writeback)

    def probe(self, vaddr: int, paddr: int) -> bool:
        """Return True if the line is present, with no side effects."""
        idx_addr = paddr if self.physically_indexed else vaddr
        idx = (idx_addr >> CACHE_LINE_SHIFT) & self._index_mask
        return bool(self._tags[idx] == (paddr >> CACHE_LINE_SHIFT))

    def bulk_probe(self, vaddrs: np.ndarray, paddrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`probe`: hit mask for whole address arrays.

        No side effects; the vector engine uses this shape of comparison
        (against :attr:`tag_view`) to find the first reference of a
        window that misses.
        """
        idx_addr = paddrs if self.physically_indexed else vaddrs
        idx = (idx_addr >> CACHE_LINE_SHIFT) & self._index_mask
        return self._tags[idx] == (paddrs >> CACHE_LINE_SHIFT)

    @property
    def tag_view(self) -> np.ndarray:
        """Live view of the per-set physical line tags (int64; -1 =
        invalid).  Mutating entries is the engine fill path's job."""
        return self._tags

    @property
    def dirty_view(self) -> np.ndarray:
        """Live view of the per-set dirty bits (uint8)."""
        return self._dirty

    # ------------------------------------------------------------------ #
    # Flush path (remap consistency, page cleaning)
    # ------------------------------------------------------------------ #

    def flush_line(self, vaddr: int, paddr: int) -> Tuple[bool, bool]:
        """Flush one line by virtual address.

        Returns ``(was_present, was_dirty)``.  A dirty line must be written
        back by the caller before its mapping changes.
        """
        idx_addr = paddr if self.physically_indexed else vaddr
        idx = (idx_addr >> CACHE_LINE_SHIFT) & self._index_mask
        tag = paddr >> CACHE_LINE_SHIFT
        self.stats.flush_lines_checked += 1
        if self._tags[idx] != tag:
            return False, False
        self.stats.flush_lines_present += 1
        self.mutation_stamp += 1
        dirty = bool(self._dirty[idx])
        if dirty:
            self.stats.flush_writebacks += 1
        self._tags[idx] = _INVALID
        self._dirty[idx] = 0
        return True, dirty

    def flush_range(
        self,
        vstart: int,
        length: int,
        translate: Callable[[int], int],
    ) -> Tuple[int, List[int]]:
        """Flush every line of ``[vstart, vstart+length)``.

        *translate* maps a virtual line address to its current physical
        line address.  Returns ``(lines_checked, dirty_paddrs)``.
        """
        if vstart % CACHE_LINE_SIZE or length % CACHE_LINE_SIZE:
            raise ValueError("flush range must be line aligned")
        dirty_paddrs: List[int] = []
        checked = 0
        for vaddr in range(vstart, vstart + length, CACHE_LINE_SIZE):
            paddr = translate(vaddr)
            checked += 1
            present, dirty = self.flush_line(vaddr, paddr)
            if present and dirty:
                dirty_paddrs.append(paddr)
        return checked, dirty_paddrs

    def invalidate_all(self) -> None:
        """Drop every line without writing anything back (tests only).

        Fills in place: the vector engine holds live views of the
        arrays, so they must never be reallocated.
        """
        self.mutation_stamp += 1
        self._tags.fill(_INVALID)
        self._dirty.fill(0)

    @property
    def occupancy(self) -> int:
        """Number of valid lines."""
        return int((self._tags != _INVALID).sum())


class SetAssociativeCache:
    """Generic N-way set-associative VIPT writeback cache with LRU.

    Shares the :class:`DirectMappedCache` interface.  Each set is a dict
    ordered by recency (oldest first) — that dict is the ground truth.
    For the vector engine a lazy ``(num_sets, associativity)`` int64
    *residency mirror* of the tags is kept (:meth:`ensure_mirror`): way
    order within a mirror row is arbitrary, only membership matters,
    which is exactly the predicate a pure-hit run needs (LRU reordering
    on hits never changes residency).  The mirror is patched in place on
    every residency change, and :attr:`mutation_stamp` moves with it so
    the engine can detect pollution by other agents mid-window.
    """

    def __init__(
        self,
        size_bytes: int = 512 << 10,
        associativity: int = 2,
        physically_indexed: bool = False,
    ) -> None:
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        if size_bytes % (CACHE_LINE_SIZE * associativity):
            raise ValueError("cache size not divisible into sets")
        num_sets = size_bytes // (CACHE_LINE_SIZE * associativity)
        if not is_power_of_two(num_sets):
            raise ValueError("number of cache sets must be a power of two")
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.num_sets = num_sets
        self.physically_indexed = physically_indexed
        self._index_mask = num_sets - 1
        # Each set maps physical line tag -> dirty flag; dict order is LRU
        # (first key is least recently used).
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(num_sets)]
        #: Bumped on every *residency* change (miss fill, flush of a
        #: present line, invalidation) — hits only reorder LRU state and
        #: do not move the stamp.  Same contract as the direct-mapped
        #: cache's stamp: the vector engine snapshots it per window.
        self.mutation_stamp = 0
        # Lazy (num_sets, associativity) tag plane; None until the
        # vector engine first asks for it via ensure_mirror().
        self._mirror: Optional[np.ndarray] = None
        self.stats = CacheStats()

    def ensure_mirror(self) -> np.ndarray:
        """Build (once) and return the residency mirror.

        Row *s* holds the physical line tags resident in set *s* in
        arbitrary way order, padded with ``_INVALID``.  After the first
        call the mirror is maintained incrementally and in place (the
        vector engine holds a live view across miss handling, mirroring
        the direct-mapped cache's never-reallocate rule).
        """
        if self._mirror is None:
            self._mirror = np.full(
                (self.num_sets, self.associativity), _INVALID,
                dtype=np.int64,
            )
            for idx, line_set in enumerate(self._sets):
                for way, tag in enumerate(line_set):
                    self._mirror[idx, way] = tag
        return self._mirror

    def metrics_snapshot(self) -> Dict[str, int]:
        """Counters this cache registers into the metrics registry."""
        return self.stats.metrics_snapshot()

    def access(self, vaddr: int, paddr: int, is_write: bool) -> AccessResult:
        """Look up (and on a miss, fill) the line for *vaddr*/*paddr*."""
        idx_addr = paddr if self.physically_indexed else vaddr
        idx = (idx_addr >> CACHE_LINE_SHIFT) & self._index_mask
        tag = paddr >> CACHE_LINE_SHIFT
        line_set = self._sets[idx]
        stats = self.stats
        stats.accesses += 1
        if tag in line_set:
            stats.hits += 1
            dirty = line_set.pop(tag) or is_write
            line_set[tag] = dirty
            return AccessResult(hit=True)
        stats.misses += 1
        self.mutation_stamp += 1
        writeback = None
        victim_tag = None
        if len(line_set) >= self.associativity:
            victim_tag = next(iter(line_set))
            victim_dirty = line_set.pop(victim_tag)
            if victim_dirty:
                writeback = victim_tag << CACHE_LINE_SHIFT
                stats.writebacks += 1
        line_set[tag] = is_write
        if self._mirror is not None:
            row = self._mirror[idx]
            old = _INVALID if victim_tag is None else victim_tag
            row[np.flatnonzero(row == old)[0]] = tag
        return AccessResult(hit=False, writeback_paddr=writeback)

    def probe(self, vaddr: int, paddr: int) -> bool:
        """Return True if the line is present, with no side effects."""
        idx_addr = paddr if self.physically_indexed else vaddr
        idx = (idx_addr >> CACHE_LINE_SHIFT) & self._index_mask
        return (paddr >> CACHE_LINE_SHIFT) in self._sets[idx]

    def peek_lru(self, vaddr: int, paddr: int) -> Optional[int]:
        """Tag that filling *vaddr*/*paddr* would evict, or ``None``.

        Side-effect free: ``None`` when the set still has a free way or
        when the line is already present (a hit evicts nothing).  Agents
        that keep a per-tag directory alongside the cache (the Victima
        backend's entry pool) call this before :meth:`access` to learn
        which directory entry dies with the fill.
        """
        idx_addr = paddr if self.physically_indexed else vaddr
        idx = (idx_addr >> CACHE_LINE_SHIFT) & self._index_mask
        line_set = self._sets[idx]
        if (paddr >> CACHE_LINE_SHIFT) in line_set:
            return None
        if len(line_set) < self.associativity:
            return None
        return next(iter(line_set))

    def flush_line(self, vaddr: int, paddr: int) -> Tuple[bool, bool]:
        """Flush one line by virtual address; see DirectMappedCache."""
        idx_addr = paddr if self.physically_indexed else vaddr
        idx = (idx_addr >> CACHE_LINE_SHIFT) & self._index_mask
        tag = paddr >> CACHE_LINE_SHIFT
        self.stats.flush_lines_checked += 1
        line_set = self._sets[idx]
        if tag not in line_set:
            return False, False
        self.stats.flush_lines_present += 1
        self.mutation_stamp += 1
        dirty = line_set.pop(tag)
        if dirty:
            self.stats.flush_writebacks += 1
        if self._mirror is not None:
            row = self._mirror[idx]
            row[row == tag] = _INVALID
        return True, dirty

    def flush_range(
        self,
        vstart: int,
        length: int,
        translate: Callable[[int], int],
    ) -> Tuple[int, List[int]]:
        """Flush every line of a virtual range; see DirectMappedCache."""
        if vstart % CACHE_LINE_SIZE or length % CACHE_LINE_SIZE:
            raise ValueError("flush range must be line aligned")
        dirty_paddrs: List[int] = []
        checked = 0
        for vaddr in range(vstart, vstart + length, CACHE_LINE_SIZE):
            paddr = translate(vaddr)
            checked += 1
            present, dirty = self.flush_line(vaddr, paddr)
            if present and dirty:
                dirty_paddrs.append(paddr)
        return checked, dirty_paddrs

    def invalidate_all(self) -> None:
        """Drop every line without writing anything back (tests only)."""
        self.mutation_stamp += 1
        self._sets = [dict() for _ in range(self.num_sets)]
        if self._mirror is not None:
            self._mirror.fill(_INVALID)

    @property
    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(len(s) for s in self._sets)


def build_cache(
    size_bytes: int, associativity: int, physically_indexed: bool = False
):
    """Construct the right cache implementation for the configuration."""
    if associativity == 1:
        return DirectMappedCache(size_bytes, physically_indexed)
    return SetAssociativeCache(size_bytes, associativity,
                               physically_indexed)
