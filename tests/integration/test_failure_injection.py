"""Failure-injection tests: the system degrades loudly, not silently.

Exhausted shadow pools, exhausted DRAM, accesses to unbacked physical
addresses, and OS-protocol violations (writing back through an
invalidated shadow mapping) must all surface as the specific exceptions
the layers define — never as wrong translations.
"""

import dataclasses

import pytest

from repro.core.addrspace import BASE_PAGE_SIZE, PhysicalMemoryMap
from repro.core.mtlb import MtlbFault
from repro.core.shadow_space import (
    BucketShadowAllocator,
    ShadowSpaceExhausted,
)
from repro.mem.mmc import BadPhysicalAddress
from repro.os_model.frames import OutOfMemory
from repro.sim.config import paper_mtlb, paper_promotion
from repro.sim.system import System

REGION = 0x0200_0000


class TestShadowExhaustion:
    def test_remap_raises_when_pool_dry(self, mtlb_system):
        system = mtlb_system
        process = system.kernel.create_process("dry")
        allocator = system.kernel.shadow_allocator
        # Drain the 64KB bucket.
        hoard = [
            allocator.allocate(64 << 10)
            for _ in range(allocator.available(64 << 10))
        ]
        system.kernel.sys_map(process, REGION, 64 << 10)
        with pytest.raises(ShadowSpaceExhausted):
            system.kernel.sys_remap(process, REGION, 64 << 10)
        for region in hoard:
            allocator.free(region)

    def test_promotion_survives_exhaustion(self):
        system = System(paper_promotion(96, misses_per_page=0.1))
        process = system.kernel.create_process("dry")
        allocator = system.kernel.shadow_allocator
        hoard = [
            allocator.allocate(64 << 10)
            for _ in range(allocator.available(64 << 10))
        ]
        system.kernel.sys_map(process, REGION, 64 << 10)
        promo = system.kernel.promotion
        # Hammer misses; promotion fires, fails gracefully, and never
        # retries the dead candidate.
        for i in range(64):
            promo.note_miss(REGION + (i % 16) * BASE_PAGE_SIZE)
        assert promo.stats.exhaustion_failures == 1
        assert promo.stats.promotions == 0
        assert not process.page_table.lookup(REGION).is_superpage
        for region in hoard:
            allocator.free(region)


class TestDramExhaustion:
    def test_map_raises_out_of_memory(self):
        config = dataclasses.replace(
            paper_mtlb(96),
            memory_map=PhysicalMemoryMap(dram_size=64 << 20),
        )
        system = System(config)
        process = system.kernel.create_process("hog")
        with pytest.raises(OutOfMemory):
            # 64 MB DRAM minus kernel reservation cannot back 256 MB.
            system.kernel.sys_map(process, REGION, 256 << 20)


class TestUnbackedAddresses:
    def test_fill_outside_dram_and_shadow(self, mtlb_system):
        with pytest.raises(BadPhysicalAddress):
            mtlb_system.mmc.cache_fill(0xA000_0000, exclusive=False)

    def test_io_hole_never_treated_as_shadow(self, mtlb_system):
        with pytest.raises(BadPhysicalAddress):
            mtlb_system.mmc.cache_fill(0xF800_0000, exclusive=False)


class TestProtocolViolations:
    def test_writeback_through_invalid_mapping_asserts(self, mtlb_system):
        """Section 4: writebacks can never fault because the OS flushes
        before invalidating.  If a (buggy) OS violates that, the model
        fails fast instead of writing to the wrong frame."""
        system = mtlb_system
        table = system.shadow_table
        table.set_mapping(5, pfn=0x123, valid=False)
        shadow_paddr = system.config.memory_map.shadow_base + (5 << 12)
        with pytest.raises(AssertionError):
            system.mmc.writeback(shadow_paddr)

    def test_fill_through_invalid_mapping_faults_precisely(
        self, mtlb_system
    ):
        system = mtlb_system
        table = system.shadow_table
        table.set_mapping(7, pfn=0x321, valid=False)
        shadow_paddr = system.config.memory_map.shadow_base + (7 << 12)
        with pytest.raises(MtlbFault) as exc:
            system.mmc.cache_fill(shadow_paddr, exclusive=True)
        assert exc.value.shadow_index == 7
        assert table.entry(7).fault  # recorded for the OS

    def test_unknown_shadow_page_faults(self, mtlb_system):
        """A shadow page the OS never mapped: valid bit clear in the
        zero-initialised table, so the access faults rather than
        reaching frame 0."""
        shadow_paddr = (
            mtlb_system.config.memory_map.shadow_base + (999 << 12)
        )
        with pytest.raises(MtlbFault):
            mtlb_system.mmc.cache_fill(shadow_paddr, exclusive=False)


class TestAllocatorMisuse:
    def test_colored_allocation_validates(self, memory_map):
        allocator = BucketShadowAllocator(memory_map)
        with pytest.raises(ValueError):
            allocator.allocate_colored(64 << 10, color=200, colors=128)
        with pytest.raises(ValueError):
            allocator.allocate_colored(8 << 10, color=0, colors=128)
