"""Translation-backend registry (DESIGN.md §16).

Backends are looked up by the name carried in
:attr:`~repro.sim.config.SystemConfig.backend`; the three built-ins are
registered at import time:

``mtlb``
    The paper's design — MTLB + shadow table + promotion — extracted
    bit-identical from the pre-refactor translation path.  The default
    for every config ever written.
``coalesced``
    Range-coalesced TLB entries detected from mapping contiguity on
    the software miss path (arXiv:1908.08774).
``victima``
    Cache-resident victim TLB entries with a set-pressure model
    (arXiv:2310.04158).

Third-party backends register with :func:`register_backend`; unknown
names raise the typed :class:`~repro.errors.UnknownBackend` at config
time, never mid-run.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import BackendParts, TranslationBackend, require_conventional
from .coalesced import CoalescedBackend, CoalescedConfig
from .mtlb import MtlbBackend
from .victima import VictimaBackend, VictimaConfig
from ...errors import UnknownBackend

#: The backend every config that predates the registry resolves to.
DEFAULT_BACKEND = "mtlb"

_REGISTRY: Dict[str, Type[TranslationBackend]] = {}


def register_backend(
    cls: Type[TranslationBackend],
) -> Type[TranslationBackend]:
    """Register *cls* under ``cls.name``; returns *cls* so it works as
    a decorator.  Re-registering the same class is a no-op; stealing a
    taken name is an error."""
    if not cls.name:
        raise ValueError("backend class must set a non-empty .name")
    taken = _REGISTRY.get(cls.name)
    if taken is not None and taken is not cls:
        raise ValueError(
            f"backend name {cls.name!r} is already registered to "
            f"{taken.__qualname__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def get_backend(name: str) -> Type[TranslationBackend]:
    """Resolve a backend class by registry name.

    Raises :class:`~repro.errors.UnknownBackend` (a
    ``SpecValidationError``, so the daemon maps it to HTTP 400) for
    names nobody registered.
    """
    try:
        return _REGISTRY[name]
    except (KeyError, TypeError):
        raise UnknownBackend(name, known=_REGISTRY) from None


def list_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_REGISTRY)


for _cls in (MtlbBackend, CoalescedBackend, VictimaBackend):
    register_backend(_cls)
del _cls

__all__ = [
    "BackendParts",
    "CoalescedBackend",
    "CoalescedConfig",
    "DEFAULT_BACKEND",
    "MtlbBackend",
    "TranslationBackend",
    "VictimaBackend",
    "VictimaConfig",
    "get_backend",
    "list_backends",
    "register_backend",
    "require_conventional",
]
