"""The superpage advisor: which regions repay a remap()?

Addresses the paper's problem (ii) — "the difficulty associated with
determining for which regions [superpages] are suitable and economical"
— using the paper's own cost model: a remap costs ~1400 cycles per page
(cache flushing dominates), a software TLB refill costs tens of cycles,
so a region pays for its remap once it would otherwise take a few misses
per page.

Given a trace and its mapped regions, the advisor estimates each
region's TLB miss count from a per-region page reuse profile and
recommends the regions whose projected refill savings exceed the remap
cost by a configurable margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.addrspace import BASE_PAGE_SHIFT, BASE_PAGE_SIZE
from ..trace.events import HeapGrow, MapRegion
from ..trace.trace import Trace
from .reuse import _Fenwick


@dataclass(frozen=True)
class AdvisorCosts:
    """Cost model (CPU cycles), defaulted to the measured values."""

    remap_per_page: int = 1520  # flush + mapping writes (E5)
    refill: int = 70  # typical software TLB refill


@dataclass
class RegionAdvice:
    """Verdict for one candidate region."""

    base: int
    length: int
    predicted_misses: int
    remap_cost: int
    predicted_saving: int

    @property
    def pages(self) -> int:
        return self.length >> BASE_PAGE_SHIFT

    @property
    def recommended(self) -> bool:
        """True when projected savings beat the remap cost."""
        return self.predicted_saving > self.remap_cost


def trace_regions(trace: Trace) -> List[Tuple[int, int]]:
    """The mapped regions a trace declares (candidates for advice)."""
    regions = []
    for event in trace.events():
        if isinstance(event, (MapRegion, HeapGrow)):
            regions.append((event.vaddr, event.length))
    return regions


def advise(
    trace: Trace,
    tlb_entries: int = 96,
    costs: AdvisorCosts = AdvisorCosts(),
    max_refs: int = 1_000_000,
) -> List[RegionAdvice]:
    """Rank the trace's regions by projected remap payoff.

    Runs one Mattson (reuse-distance) pass over the trace prefix and
    attributes every predicted TLB miss — a cold first touch, or a
    re-reference whose reuse distance reaches *tlb_entries* — to the
    region containing the faulting page.  Exact attribution, no
    apportioning heuristics.
    """
    regions = trace_regions(trace)
    if not regions:
        return []

    # page -> region index, for every page any region covers.
    page_region: Dict[int, int] = {}
    for region_idx, (base, length) in enumerate(regions):
        first = base >> BASE_PAGE_SHIFT
        for vpn in range(first, (base + length) >> BASE_PAGE_SHIFT):
            page_region[vpn] = region_idx

    pages_list = []
    remaining = max_refs
    for segment in trace.segments():
        take = segment.vaddrs[:remaining] >> BASE_PAGE_SHIFT
        pages_list.append(take)
        remaining -= len(take)
        if remaining <= 0:
            break
    pages = np.concatenate(pages_list).tolist() if pages_list else []

    misses_per_region = [0] * len(regions)
    tree = _Fenwick(len(pages))
    last_seen: Dict[int, int] = {}
    for t, page in enumerate(pages):
        previous = last_seen.get(page)
        missed = False
        if previous is None:
            missed = True
        else:
            distance = tree.prefix(t) - tree.prefix(previous + 1)
            missed = distance >= tlb_entries
            tree.add(previous, -1)
        tree.add(t, 1)
        last_seen[page] = t
        if missed:
            region_idx = page_region.get(page)
            if region_idx is not None:
                misses_per_region[region_idx] += 1

    advice: List[RegionAdvice] = []
    for region_idx, (base, length) in enumerate(regions):
        predicted = misses_per_region[region_idx]
        pages_count = length // BASE_PAGE_SIZE
        remap_cost = pages_count * costs.remap_per_page
        saving = predicted * costs.refill
        advice.append(
            RegionAdvice(
                base=base,
                length=length,
                predicted_misses=predicted,
                remap_cost=remap_cost,
                predicted_saving=saving,
            )
        )
    advice.sort(
        key=lambda a: a.predicted_saving - a.remap_cost, reverse=True
    )
    return advice
