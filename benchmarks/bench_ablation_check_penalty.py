"""A3 — cost of the paper's conservative 1-MMC-cycle shadow check.

The paper charges one 120 MHz MMC cycle on every memory operation for
the real/shadow classification and calls the assumption "likely overly
conservative".  This bench quantifies the assumption by re-running with
a free check.
"""

from repro.bench import run_check_penalty_ablation


def test_check_penalty_ablation(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_check_penalty_ablation(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
