"""Randomised end-to-end robustness tests.

Hypothesis generates small but adversarial traces — random region
layouts, mixed access patterns, remaps at arbitrary points — and checks
machine-level invariants on every one: accounting consistency, reference
conservation, determinism, and agreement between the direct-mapped
cache's inlined hot path and the generic set-associative implementation
configured with one way.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.sim.config import CacheConfig, paper_mtlb, paper_no_mtlb
from repro.sim.system import System
from repro.trace import synth
from repro.trace.events import MapRegion, Remap
from repro.trace.trace import Trace, make_segment

BASES = (0x0200_0000, 0x0400_0000, 0x0800_0000)


@st.composite
def random_traces(draw):
    """A trace with 1-3 regions and 1-4 segments of mixed patterns."""
    n_regions = draw(st.integers(1, 3))
    regions = []
    for i in range(n_regions):
        pages = draw(st.integers(1, 64))
        remap = draw(st.booleans())
        regions.append((BASES[i], pages * BASE_PAGE_SIZE, remap))
    trace = Trace("random")
    for base, length, remap in regions:
        trace.add(MapRegion(base, length))
        if remap:
            trace.add(Remap(base, length))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    n_segments = draw(st.integers(1, 4))
    for s in range(n_segments):
        base, length, _ = regions[draw(st.integers(0, n_regions - 1))]
        count = draw(st.integers(1, 2000))
        kind = draw(st.sampled_from(["uniform", "seq", "hot"]))
        if kind == "uniform":
            vaddrs = synth.uniform_random(rng, base, length, count)
        elif kind == "seq":
            vaddrs = synth.sequential(base, length, stride=8, count=count)
        else:
            vaddrs = synth.hot_cold(
                rng, base, length, count,
                hot_pages=max(1, length >> 14), hot_fraction=0.8,
            )
        writes = rng.random(count) < draw(
            st.floats(min_value=0.0, max_value=1.0)
        )
        gap = draw(st.integers(0, 5))
        trace.add(
            make_segment(f"seg{s}", vaddrs, write_mask=writes, gap=gap)
        )
    return trace


@settings(max_examples=25, deadline=None)
@given(random_traces())
def test_invariants_on_random_traces(trace):
    base = System(paper_no_mtlb(96)).run(trace)
    fast = System(paper_mtlb(96)).run(trace)
    for result in (base, fast):
        result.stats.check_consistency()
        assert result.stats.references == trace.total_refs
        assert result.total_cycles > 0
    # Identical instruction work on both machines.
    assert base.stats.instructions == fast.stats.instructions
    # The MTLB machine never does *worse* on TLB miss cycles than 2x.
    assert fast.stats.tlb_miss_cycles <= base.stats.tlb_miss_cycles * 2 + 1000


@settings(max_examples=15, deadline=None)
@given(random_traces())
def test_determinism_on_random_traces(trace):
    a = System(paper_mtlb(96)).run(trace)
    b = System(paper_mtlb(96)).run(trace)
    assert a.total_cycles == b.total_cycles
    assert a.stats.cache_misses == b.stats.cache_misses


@settings(max_examples=15, deadline=None)
@given(random_traces())
def test_cache_implementations_agree(trace):
    """The inlined direct-mapped fast path and the generic one-way
    set-associative cache must produce identical miss/writeback counts
    (and therefore identical runtimes)."""
    dm_config = paper_no_mtlb(96)
    sa_config = dataclasses.replace(
        dm_config, cache=CacheConfig(associativity=2)
    )
    one_way_config = dataclasses.replace(
        dm_config,
        cache=CacheConfig(size_bytes=512 << 10, associativity=1),
    )
    dm = System(dm_config).run(trace)
    one_way = System(one_way_config).run(trace)
    assert dm.total_cycles == one_way.total_cycles

    # And a genuine 1-way SetAssociativeCache agrees with DirectMapped.
    from repro.mem.cache import SetAssociativeCache
    sa_system = System(dm_config)
    sa_system.cache = SetAssociativeCache(512 << 10, 1)
    sa = sa_system.run(trace)
    assert sa.stats.cache_misses == dm.stats.cache_misses
    assert sa.total_cycles == dm.total_cycles
