"""Ablation A8 — superpages under multiprogramming.

The paper's kernel schedules processes but its measurements are
single-program.  Under time-slicing with an untagged CPU TLB, every
context switch flushes the TLB, and each quantum re-faults the working
set back in: hundreds of base-page refills on a conventional system,
versus a handful of superpage refills on the MTLB system (whose MTLB
state, being physically addressed, additionally survives the switch).

This bench runs a two-process compress95 mix at a long and a short
quantum and measures the **per-switch TLB refill cost** — the slope of
TLB-miss cycles against context-switch count — for both systems.  Cache
pollution between processes affects both systems alike and is reported
but not asserted.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.config import paper_mtlb, paper_no_mtlb
from ..sim.multiprog import run_job_mix
from ..sim.results import render_table
from ..workloads import build_workload
from .runner import BenchContext

QUANTA = (200_000, 25_000)

#: Process-lifetime trace cache keyed by (seed, compress95 scale), so a
#: timed ``--engine both`` comparison pays trace synthesis once instead
#: of charging it to whichever engine happens to run first.
_TRACE_CACHE: Dict[Tuple[int, float], tuple] = {}


def _mix_traces(context: BenchContext):
    key = (context.seed, context.scale_of("compress95"))
    cached = _TRACE_CACHE.get(key)
    if cached is None:
        scale = key[1] / 2
        trace_a = build_workload(
            "compress95", scale=scale, seed=context.seed
        )
        trace_b = build_workload(
            "compress95", scale=scale, seed=context.seed + 1
        )
        trace_b.name = "compress95-b"
        cached = _TRACE_CACHE[key] = (trace_a, trace_b)
    return cached


@dataclass
class MultiprogResult:
    """A8 outcome."""

    tlb_slope: Dict[str, float]
    totals: Dict[Tuple[str, int], int]
    report: str
    shape_errors: List[str]
    #: Wall-clock of the simulation loop only (trace synthesis is
    #: cached and excluded), so ``multiprog|engine=...`` perf-baseline
    #: keys compare engines rather than trace-cache temperature.
    wall_seconds: float = 0.0


def run_multiprog_ablation(
    context: Optional[BenchContext] = None,
) -> MultiprogResult:
    """Two compress95 instances time-slicing one machine."""
    context = context or BenchContext()
    trace_a, trace_b = _mix_traces(context)

    configs = {
        "tlb96": paper_no_mtlb(96),
        "tlb96+mtlb1282w": paper_mtlb(96),
    }
    tlb_cycles: Dict[Tuple[str, int], int] = {}
    switches: Dict[Tuple[str, int], int] = {}
    totals: Dict[Tuple[str, int], int] = {}
    rows = []
    t0 = time.perf_counter()
    for label, config in configs.items():
        if context.engine is not None and config.engine != context.engine:
            config = dataclasses.replace(config, engine=context.engine)
        if context.sanitize and not config.sanitize:
            config = dataclasses.replace(config, sanitize=True)
        for quantum in QUANTA:
            run = run_job_mix(
                config, [trace_a, trace_b], quantum_refs=quantum
            )
            key = (label, quantum)
            tlb_cycles[key] = run.result.stats.tlb_miss_cycles
            switches[key] = run.context_switches
            totals[key] = run.total_cycles
            rows.append(
                [
                    label,
                    quantum,
                    run.context_switches,
                    f"{run.total_cycles:,}",
                    f"{run.result.stats.tlb_miss_cycles:,}",
                ]
            )

    tlb_slope: Dict[str, float] = {}
    for label in configs:
        long_q, short_q = QUANTA
        extra_switches = (
            switches[(label, short_q)] - switches[(label, long_q)]
        )
        extra_tlb = (
            tlb_cycles[(label, short_q)] - tlb_cycles[(label, long_q)]
        )
        tlb_slope[label] = (
            extra_tlb / extra_switches if extra_switches > 0 else 0.0
        )
        rows.append(
            [label, "per-switch", "-", "-",
             f"{tlb_slope[label]:,.0f} TLB cycles/switch"]
        )

    wall = time.perf_counter() - t0
    report = render_table(
        ["config", "quantum (refs)", "switches", "total cycles",
         "TLB miss cycles"],
        rows,
        title="A8: two-process compress95 mix under time-slicing",
    )
    errors: List[str] = []
    base_slope = tlb_slope["tlb96"]
    mtlb_slope = tlb_slope["tlb96+mtlb1282w"]
    if base_slope <= 0:
        errors.append("baseline shows no per-switch TLB refill cost")
    if mtlb_slope > base_slope / 2:
        errors.append(
            f"superpages do not cut the per-switch refill cost "
            f"({mtlb_slope:.0f} vs {base_slope:.0f} cycles/switch)"
        )
    return MultiprogResult(
        tlb_slope=tlb_slope, totals=totals, report=report,
        shape_errors=errors, wall_seconds=wall,
    )
