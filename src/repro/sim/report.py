"""Human-readable run reports: the full cycle and event breakdown.

``describe_run`` turns one :class:`~repro.sim.results.RunResult` into the
kind of breakdown the paper's figures are built from — where the cycles
went (instructions / memory stalls / TLB misses / kernel), the TLB and
MTLB behaviour, and the cache-fill picture — as plain text.
"""

from __future__ import annotations

from typing import List, Optional

from .config import CPU_HZ
from .results import RunResult


def _pct(part: int, whole: int) -> str:
    return f"{100 * part / whole:5.1f}%" if whole else "  n/a"


def describe_run(result: RunResult, title: Optional[str] = None) -> str:
    """Render one run's statistics as an indented text block."""
    stats = result.stats
    total = stats.total_cycles
    lines: List[str] = []
    lines.append(title or f"{result.workload} on {result.config_label}")
    lines.append(
        f"  runtime        {total:>14,} cycles"
        f"  ({total / CPU_HZ * 1e3:.2f} ms at 240 MHz)"
    )
    lines.append(
        f"  instructions   {stats.instructions:>14,}"
        f"  (CPI {stats.cpi:.2f})"
    )
    lines.append("  where the cycles went:")
    lines.append(
        f"    instruction issue   {stats.instruction_cycles:>14,}"
        f"  {_pct(stats.instruction_cycles, total)}"
    )
    lines.append(
        f"    memory stalls       {stats.memory_stall_cycles:>14,}"
        f"  {_pct(stats.memory_stall_cycles, total)}"
    )
    lines.append(
        f"    TLB miss handling   {stats.tlb_miss_cycles:>14,}"
        f"  {_pct(stats.tlb_miss_cycles, total)}"
    )
    lines.append(
        f"    kernel              {stats.kernel_cycles:>14,}"
        f"  {_pct(stats.kernel_cycles, total)}"
    )
    lines.append(
        f"  CPU TLB: {stats.tlb_lookups:,} lookups, "
        f"{stats.tlb_misses:,} misses "
        f"({100 * stats.tlb_miss_rate:.3f}%)"
    )
    lines.append(
        f"  cache: {stats.cache_accesses:,} accesses, "
        f"{100 * stats.cache_hit_rate:.1f}% hits, "
        f"{stats.cache_writebacks:,} writebacks"
    )
    lines.append(
        f"  fills: {stats.fills:,} at {stats.avg_fill_cycles:.1f} "
        f"CPU cycles average"
    )
    if stats.mtlb_lookups:
        lines.append(
            f"  MTLB: {stats.mtlb_lookups:,} lookups, "
            f"{100 * stats.mtlb_hit_rate:.1f}% hits, "
            f"{stats.mtlb_faults:,} faults"
        )
    if stats.remap_pages:
        lines.append(
            f"  remap: {stats.remap_pages:,} pages in "
            f"{stats.remap_cycles:,} cycles "
            f"({stats.remap_flush_cycles:,} flushing)"
        )
    return "\n".join(lines)


def compare_runs(base: RunResult, other: RunResult) -> str:
    """Render two runs side by side with the headline ratio."""
    ratio = other.total_cycles / base.total_cycles
    parts = [
        describe_run(base),
        "",
        describe_run(other),
        "",
        (
            f"{other.config_label} runs at {ratio:.3f}x of "
            f"{base.config_label} "
            f"({100 * (1 - ratio):+.1f}% runtime)"
        ),
    ]
    return "\n".join(parts)
