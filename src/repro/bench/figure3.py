"""Experiment E2 — Figure 3: normalised runtimes and TLB-miss-time
fractions for the five programs, CPU TLB in {64, 96, 128}, with and
without a 128-entry 2-way MTLB.  Base system = 96-entry TLB, no MTLB.

Reproduced claims (checked by :func:`check_figure3_shape`):

* without an MTLB, every program improves monotonically as the TLB grows;
* at 64 entries, several programs spend over 20 % of runtime in TLB miss
  handling;
* with the MTLB, TLB miss time falls below ~5 % in every configuration;
* the MTLB results barely change with CPU TLB size (64 entries suffice);
* MTLB systems beat the same-size conventional system for the
  TLB-constrained programs (em3d, the borderline case, may tie or
  slightly lose at 128 entries — Section 3.5's observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.config import figure3_configs
from ..sim.results import ResultMatrix, render_table
from ..workloads import PAPER_SUITE
from .runner import BenchContext

TLB_SIZES = (64, 96, 128)
BASE_LABEL = "tlb96"


@dataclass
class Figure3Result:
    """The matrix plus its rendered report."""

    matrix: ResultMatrix
    report: str
    shape_errors: List[str]


def run_figure3(
    context: Optional[BenchContext] = None,
    workloads: Sequence[str] = PAPER_SUITE,
    progress: bool = False,
) -> Figure3Result:
    """Run the full Figure 3 matrix and render the paper-shaped rows."""
    context = context or BenchContext()
    configs = figure3_configs()
    matrix = context.run_matrix(
        workloads, configs, BASE_LABEL, progress=progress,
        checkpoint="fig3",
    )
    report = render_report(matrix, workloads, configs.keys())
    errors = check_figure3_shape(matrix, workloads)
    return Figure3Result(matrix=matrix, report=report, shape_errors=errors)


def render_report(
    matrix: ResultMatrix,
    workloads: Sequence[str],
    config_labels: Sequence[str],
) -> str:
    """Two tables: normalised runtime, and TLB-miss-time fraction."""
    labels = list(config_labels)
    runtime_rows = []
    tlb_rows = []
    for workload in workloads:
        runtime_rows.append(
            [workload]
            + [f"{matrix.normalised(workload, c):.3f}" for c in labels]
        )
        tlb_rows.append(
            [workload]
            + [
                f"{100 * matrix.get(workload, c).tlb_time_fraction:.1f}%"
                for c in labels
            ]
        )
    headers = ["workload"] + labels
    part1 = render_table(
        headers,
        runtime_rows,
        title=(
            "Figure 3 (runtime normalised to 96-entry TLB, no MTLB; "
            "lower is better)"
        ),
    )
    part2 = render_table(
        headers, tlb_rows, title="Figure 3 (fraction of runtime in TLB miss handling)"
    )
    return part1 + "\n\n" + part2


def check_figure3_shape(
    matrix: ResultMatrix, workloads: Sequence[str]
) -> List[str]:
    """Verify the paper's qualitative claims; returns human-readable
    violations (empty list = shape reproduced)."""
    errors: List[str] = []
    for w in workloads:
        no = {n: matrix.get(w, f"tlb{n}") for n in TLB_SIZES}
        yes = {n: matrix.get(w, f"tlb{n}+mtlb1282w") for n in TLB_SIZES}

        # Monotonic improvement without an MTLB (1% slack for noise).
        if not (
            no[64].total_cycles * 1.01 >= no[96].total_cycles
            and no[96].total_cycles * 1.01 >= no[128].total_cycles
        ):
            errors.append(f"{w}: no-MTLB runtime not monotonic in TLB size")

        # MTLB keeps TLB time below ~5% everywhere.
        for n in TLB_SIZES:
            if yes[n].tlb_time_fraction > 0.08:
                errors.append(
                    f"{w}: MTLB config tlb{n} spends "
                    f"{100 * yes[n].tlb_time_fraction:.1f}% in TLB misses"
                )

        # MTLB results barely change with CPU TLB size.
        spread = (
            max(r.total_cycles for r in yes.values())
            / min(r.total_cycles for r in yes.values())
        )
        if spread > 1.06:
            errors.append(
                f"{w}: MTLB runtimes vary {spread:.3f}x across TLB sizes"
            )

        # The MTLB wins (or ties) against the same-size conventional
        # system at 64 and 96 entries for every program; em3d may lose
        # slightly at 128 (the paper's ~2% observation).
        for n in (64, 96):
            if yes[n].total_cycles > no[n].total_cycles * 1.01:
                errors.append(
                    f"{w}: MTLB loses at {n}-entry TLB "
                    f"({yes[n].total_cycles / no[n].total_cycles:.3f}x)"
                )
    return errors


def improvement_summary(
    matrix: ResultMatrix, workloads: Sequence[str]
) -> Dict[str, float]:
    """Percent runtime improvement of MTLB vs no-MTLB at 96 entries."""
    out: Dict[str, float] = {}
    for w in workloads:
        base = matrix.get(w, "tlb96").total_cycles
        fast = matrix.get(w, "tlb96+mtlb1282w").total_cycles
        out[w] = 100.0 * (1.0 - fast / base)
    return out
