"""repro — Superpages backed by shadow memory (ISCA 1998), reproduced.

A library-quality reproduction of Swanson, Stoller & Carter, *Increasing
TLB Reach Using Superpages Backed by Shadow Memory*: a memory-controller
TLB (MTLB) that remaps shadow physical addresses onto discontiguous real
page frames, letting an unmodified CPU TLB map large superpages — plus the
full simulation substrate the paper evaluated it on (CPU TLB, VIPT cache,
Runway-style bus, MMC, a small OS, and models of the five benchmark
programs).

Quickstart — one scenario through the typed facade::

    from repro import ScenarioSpec, paper_base, paper_mtlb, run

    base = run(ScenarioSpec("em3d", paper_base(), scale=0.25))
    fast = run(ScenarioSpec("em3d", paper_mtlb(96), scale=0.25))
    print(fast.total_cycles / base.total_cycles)

Batches go through the scenario service — deduplicated against a
content-addressed result store, sharded over worker processes::

    from repro import ScenarioSpec, SweepClient, figure3_configs

    client = SweepClient(store=".result_store", jobs=4)
    reports = client.sweep(
        [ScenarioSpec(w, cfg) for w in ("em3d", "gcc")
         for cfg in figure3_configs().values()]
    )

Public-vs-internal boundary: the names in ``__all__`` below are the
stable API — scenario facade (:class:`ScenarioSpec`, :func:`run`,
:class:`Session`, :class:`SweepClient`, :class:`ResultStore`), config
presets, result types, and the obs snapshot/diff toolkit.  Deeper
modules (``repro.sim.system.System``, ``repro.sim.multiprog``,
``repro.bench.runner.BenchContext``, ``repro.core.*``) are the engine
room: importable and documented, but their calling conventions may
change between releases.  ``simulate()`` is kept as a deprecated shim
for pre-facade callers.

See DESIGN.md for the system inventory (§12: the scenario service) and
EXPERIMENTS.md for the paper-versus-measured record.
"""

from ._version import __version__
from .api import RunReport, ScenarioSpec, Session, run, validate_spec
from .core import (
    BASE_PAGE_SIZE,
    SUPERPAGE_SIZES,
    BucketShadowAllocator,
    BuddyShadowAllocator,
    Mtlb,
    MtlbFault,
    PhysicalMemoryMap,
    ShadowPageTable,
    ShadowRegion,
    ShadowSpaceExhausted,
    TranslationBackend,
    get_backend,
    list_backends,
    plan_superpages,
    register_backend,
)
from .obs import (
    EventTracer,
    MetricsRegistry,
    ObsCollector,
    ObsConfig,
    diff_snapshots,
    load_snapshot,
    matrix_snapshot,
    run_snapshot,
    write_snapshot,
)
from .serve import ResultStore, SweepClient
from .sim import (
    RunResult,
    RunStats,
    System,
    SystemConfig,
    figure3_configs,
    figure4_configs,
    paper_base,
    paper_mtlb,
    paper_no_mtlb,
    simulate,
)
from .trace import Trace

__all__ = [
    # Scenario facade (the front door)
    "RunReport",
    "ScenarioSpec",
    "Session",
    "run",
    "validate_spec",
    # Translation backends (DESIGN.md §16)
    "TranslationBackend",
    "get_backend",
    "list_backends",
    "register_backend",
    # Scenario service
    "ResultStore",
    "SweepClient",
    # Configuration presets
    "SystemConfig",
    "figure3_configs",
    "figure4_configs",
    "paper_base",
    "paper_mtlb",
    "paper_no_mtlb",
    # Results
    "RunResult",
    "RunStats",
    # Core mechanism (the paper's subject)
    "BASE_PAGE_SIZE",
    "SUPERPAGE_SIZES",
    "BucketShadowAllocator",
    "BuddyShadowAllocator",
    "Mtlb",
    "MtlbFault",
    "PhysicalMemoryMap",
    "ShadowPageTable",
    "ShadowRegion",
    "ShadowSpaceExhausted",
    "plan_superpages",
    # Observability
    "EventTracer",
    "MetricsRegistry",
    "ObsCollector",
    "ObsConfig",
    "diff_snapshots",
    "load_snapshot",
    "matrix_snapshot",
    "run_snapshot",
    "write_snapshot",
    # Traces + legacy entry point
    "Trace",
    "System",
    "simulate",
    "__version__",
]
