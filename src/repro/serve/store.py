"""Content-addressed result store: completed scenarios, never resimulated.

One *entry* per scenario fingerprint (:mod:`repro.serve.fingerprint`),
stored as two files under ``<root>/<fp[:2]>/``:

* ``<fp>.json`` — a schema-versioned record: the workload/config
  identity, the scenario's canonical document (so a human can audit why
  it hashed where it did), the full ``RunStats`` field mapping, and
  provenance meta.  The record embeds a CRC32 ``checksum`` over its own
  canonical JSON (the trace-cache pattern from :mod:`repro.trace.io`);
* ``<fp>.npz`` — optional payload holding the run's full
  metrics-registry mapping as numpy arrays, CRC-checked through the
  record (``payload.crc``).

Reads verify every checksum.  A corrupt entry is **quarantined** — both
files are moved into ``<root>/quarantine/`` with a RuntimeWarning — and
reported as a miss, so the scheduler regenerates the result; the store
never serves bytes it cannot vouch for.  Writes are atomic *and
durable*: tmp file, fsync the file, ``os.replace``, fsync the
directory — so a killed or power-lost writer leaves either the old
entry or none, never a truncated one (and a truncated record that does
sneak in is caught by the checksum and quarantined, not served).

The store is safe for concurrent readers plus one writer per entry:
entries are immutable once written (content-addressed), and a racing
double-write of the same fingerprint writes identical bytes.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Union

import numpy as np

from .._version import __version__
from ..errors import ResultStoreCorrupt
from ..ioutil import atomic_write_bytes, fsync_dir, unique_tmp_path
from ..sim.stats import RunStats

#: The store's record schema; version-bumped on layout changes.
STORE_SCHEMA = "repro-results/1"
STORE_SCHEMA_VERSION = 1

#: Default store root (overridable per store and via the CLI).
DEFAULT_STORE_ENV = "REPRO_RESULT_STORE"
DEFAULT_STORE_DIR = ".result_store"


def default_store_root() -> Path:
    """The store directory the CLI uses: env override or the default."""
    env = os.environ.get(DEFAULT_STORE_ENV)
    return Path(env) if env else Path(DEFAULT_STORE_DIR)


@dataclass
class StoreRecord:
    """One verified store entry, ready to rebuild a result from."""

    fingerprint: str
    workload: str
    config_label: str
    stats: Dict[str, object]
    metrics: Optional[Dict[str, float]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def run_stats(self) -> RunStats:
        return RunStats(**self.stats)


# Durable-write primitives, shared with the trace store since PR 9.
# ``atomic_write_bytes`` keeps its historical home here as a re-export;
# the private aliases keep this module's call sites unchanged.
_fsync_dir = fsync_dir
_tmp_path = unique_tmp_path


def _record_checksum(record: Mapping[str, object]) -> int:
    """CRC32 over the record's canonical JSON, ``checksum`` excluded."""
    body = {k: v for k, v in record.items() if k != "checksum"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF


def _metrics_checksum(names: bytes, values: np.ndarray) -> int:
    crc = zlib.crc32(names)
    crc = zlib.crc32(np.ascontiguousarray(values).tobytes(), crc)
    return crc & 0xFFFFFFFF


class ResultStore:
    """Content-addressed, CRC-checked store of completed run results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def record_path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def payload_path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.npz"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def poison_dir(self) -> Path:
        """Where the supervisor quarantines poison-scenario sidecars."""
        return self.root / "poison"

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def put(
        self,
        fingerprint: str,
        workload: str,
        config_label: str,
        stats: Union[RunStats, Mapping[str, object]],
        metrics: Optional[Mapping[str, float]] = None,
        meta: Optional[Mapping[str, object]] = None,
        scenario: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Persist one completed scenario; returns the record path.

        Atomic per file; the payload lands before the record, so a
        record on disk always has its payload (a record killed between
        the two is absent and the entry reads as a miss).
        """
        if isinstance(stats, RunStats):
            stats = dataclasses.asdict(stats)
        path = self.record_path(fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return path  # read-only filesystem: run uncached
        payload: Dict[str, object] = {"metrics": False, "crc": None}
        if metrics:
            names = json.dumps(
                sorted(metrics), separators=(",", ":")
            ).encode("utf-8")
            values = np.array(
                [float(metrics[k]) for k in sorted(metrics)],
                dtype=np.float64,
            )
            payload = {
                "metrics": True,
                "crc": _metrics_checksum(names, values),
            }
            ppath = self.payload_path(fingerprint)
            ptmp = _tmp_path(ppath)
            try:
                with open(ptmp, "wb") as fh:
                    np.savez_compressed(
                        fh,
                        names=np.frombuffer(names, dtype=np.uint8),
                        values=values,
                    )
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(ptmp, ppath)
                _fsync_dir(ppath.parent)
            except OSError:
                try:
                    ptmp.unlink()
                except OSError:
                    pass
                payload = {"metrics": False, "crc": None}
        record: Dict[str, object] = {
            "schema": STORE_SCHEMA,
            "schema_version": STORE_SCHEMA_VERSION,
            "repro_version": __version__,
            "fingerprint": fingerprint,
            "workload": workload,
            "config_label": config_label,
            "stats": dict(stats),
            "meta": dict(meta or {}),
            "scenario": dict(scenario) if scenario is not None else None,
            "payload": payload,
        }
        record["checksum"] = _record_checksum(record)
        try:
            atomic_write_bytes(
                path, json.dumps(record, sort_keys=True).encode("utf-8")
            )
        except OSError:
            pass  # read-only filesystem: run uncached
        return path

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def get(self, fingerprint: str) -> Optional[StoreRecord]:
        """Fetch and verify one entry; None on miss or quarantine."""
        path = self.record_path(fingerprint)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            self._quarantine(fingerprint, f"unreadable record ({exc})")
            return None
        if not isinstance(record, dict) or record.get("schema") != (
            STORE_SCHEMA
        ):
            version = (
                record.get("schema_version")
                if isinstance(record, dict) else None
            )
            if isinstance(version, int) and (
                version != STORE_SCHEMA_VERSION
            ):
                # A future/past format, not corruption: leave the file
                # alone for the build that understands it.
                warnings.warn(
                    f"result-store entry {path} has schema version "
                    f"{version}, this build reads "
                    f"{STORE_SCHEMA_VERSION}; treating as a miss",
                    RuntimeWarning,
                )
                return None
            self._quarantine(fingerprint, "unrecognised record schema")
            return None
        if record.get("checksum") != _record_checksum(record):
            self._quarantine(fingerprint, "record checksum mismatch")
            return None
        if record.get("fingerprint") != fingerprint:
            self._quarantine(fingerprint, "fingerprint/path mismatch")
            return None
        stats = record.get("stats")
        known = set(RunStats.__dataclass_fields__)
        if not isinstance(stats, dict) or set(stats) - known:
            self._quarantine(fingerprint, "unknown RunStats fields")
            return None
        metrics: Optional[Dict[str, float]] = None
        payload = record.get("payload") or {}
        if payload.get("metrics"):
            metrics = self._read_payload(fingerprint, payload)
            if metrics is None:
                return None  # payload corrupt: whole entry quarantined
        return StoreRecord(
            fingerprint=fingerprint,
            workload=record.get("workload", ""),
            config_label=record.get("config_label", ""),
            stats=stats,
            metrics=metrics,
            meta=record.get("meta") or {},
        )

    def _read_payload(
        self, fingerprint: str, payload: Mapping[str, object]
    ) -> Optional[Dict[str, float]]:
        ppath = self.payload_path(fingerprint)
        try:
            with np.load(ppath) as data:
                names_raw = bytes(data["names"].tobytes())
                values = np.array(data["values"], dtype=np.float64)
        except Exception as exc:  # noqa: BLE001 - any npz failure
            self._quarantine(fingerprint, f"unreadable payload ({exc})")
            return None
        if _metrics_checksum(names_raw, values) != payload.get("crc"):
            self._quarantine(fingerprint, "payload checksum mismatch")
            return None
        try:
            names = json.loads(names_raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._quarantine(fingerprint, f"bad payload names ({exc})")
            return None
        if len(names) != len(values):
            self._quarantine(fingerprint, "payload name/value mismatch")
            return None
        return {
            name: value.item() for name, value in zip(names, values)
        }

    def _quarantine(self, fingerprint: str, reason: str) -> None:
        """Move a bad entry aside (never serve, never silently delete)."""
        warnings.warn(
            str(ResultStoreCorrupt(self.record_path(fingerprint), reason))
            + "; quarantining and regenerating",
            RuntimeWarning,
        )
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        for path in (
            self.record_path(fingerprint), self.payload_path(fingerprint)
        ):
            if path.exists():
                try:
                    os.replace(path, self.quarantine_dir / path.name)
                except OSError:
                    pass

    # ------------------------------------------------------------------ #
    # Garbage collection (``repro serve gc``)
    # ------------------------------------------------------------------ #

    def gc(
        self,
        max_age_seconds: float = 7 * 86400.0,
        tmp_grace_seconds: float = 900.0,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> Dict[str, object]:
        """Prune the store's operational litter; never touches entries.

        Three sources of debris accumulate on a long-lived store, and
        each has its own staleness rule:

        * **orphaned ``*.tmp`` stages** — a writer killed between open
          and rename leaves its private tmp file behind.  Any tmp file
          older than *tmp_grace_seconds* is dead (live stages exist for
          milliseconds) and is removed;
        * **``interrupted_sweep.json``** — the graceful-shutdown
          checkpoint.  It is stale once the sweep was actually resumed
          (evidence: any record committed *after* the checkpoint was
          written) or once it is older than *max_age_seconds*;
        * **poison sidecars** — quarantine records under ``poison/``
          older than *max_age_seconds* (old enough that the flaky
          scenario has either been fixed or re-poisoned since).

        Committed records, payloads, and quarantined entries are never
        deleted — quarantine is evidence, not garbage.  Returns a
        summary dict; with *dry_run* nothing is unlinked and the
        summary lists what would have been.
        """
        clock = time.time() if now is None else now
        removed: Dict[str, list] = {
            "tmp": [], "checkpoints": [], "poison": [],
        }

        def _prune(path: Path, bucket: str) -> None:
            removed[bucket].append(str(path))
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    removed[bucket].pop()

        if self.root.exists():
            for path in sorted(self.root.rglob("*.tmp")):
                try:
                    age = clock - path.stat().st_mtime
                except OSError:
                    continue
                if age >= tmp_grace_seconds:
                    _prune(path, "tmp")
            checkpoint = self.root / "interrupted_sweep.json"
            if checkpoint.exists():
                try:
                    ckpt_mtime = checkpoint.stat().st_mtime
                except OSError:
                    ckpt_mtime = None
                if ckpt_mtime is not None:
                    resumed = any(
                        self._mtime(self.record_path(fp), 0.0) > ckpt_mtime
                        for fp in self.keys()
                    )
                    if resumed or clock - ckpt_mtime >= max_age_seconds:
                        _prune(checkpoint, "checkpoints")
            if self.poison_dir.exists():
                for path in sorted(self.poison_dir.glob("*.poison.json")):
                    try:
                        age = clock - path.stat().st_mtime
                    except OSError:
                        continue
                    if age >= max_age_seconds:
                        _prune(path, "poison")
        return {
            "root": str(self.root),
            "dry_run": dry_run,
            "tmp_removed": len(removed["tmp"]),
            "checkpoints_removed": len(removed["checkpoints"]),
            "poison_removed": len(removed["poison"]),
            "removed": removed,
        }

    @staticmethod
    def _mtime(path: Path, default: float) -> float:
        try:
            return path.stat().st_mtime
        except OSError:
            return default

    # ------------------------------------------------------------------ #
    # Inventory
    # ------------------------------------------------------------------ #

    def __contains__(self, fingerprint: str) -> bool:
        return self.record_path(fingerprint).exists()

    def keys(self) -> Iterator[str]:
        """Every stored fingerprint (unverified; ``get`` verifies)."""
        if not self.root.exists():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.name in ("quarantine", "poison") or not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def status(self) -> Dict[str, object]:
        """Inventory summary for ``repro serve status``."""
        entries = 0
        total_bytes = 0
        if self.root.exists():
            for shard in self.root.iterdir():
                if shard.name in ("quarantine", "poison") or (
                    not shard.is_dir()
                ):
                    continue
                for path in shard.iterdir():
                    if path.suffix == ".json":
                        entries += 1
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        pass
        quarantined = 0
        if self.quarantine_dir.exists():
            quarantined = sum(
                1 for p in self.quarantine_dir.glob("*.json")
            )
        poisoned = 0
        if self.poison_dir.exists():
            poisoned = sum(
                1 for p in self.poison_dir.glob("*.poison.json")
            )
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA,
            "entries": entries,
            "bytes": total_bytes,
            "quarantined": quarantined,
            "poisoned": poisoned,
        }
