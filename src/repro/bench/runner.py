"""Benchmark-harness plumbing: scales, trace caching, matrix runs.

The harness reruns identical traces across many machine configurations
and many pytest sessions.  :class:`BenchContext` pins the per-workload
input scales (documented in EXPERIMENTS.md), caches generated traces on
disk, and runs workload x configuration matrices into a
:class:`~repro.sim.results.ResultMatrix`.

Environment knobs:

* ``REPRO_BENCH_QUICK=1`` — use the quick (CI) scales everywhere;
* ``REPRO_TRACE_CACHE=<dir>`` — trace cache directory (default
  ``.trace_cache/`` under the repository root / current directory).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

from ..sim.config import SystemConfig
from ..sim.results import ResultMatrix, RunResult
from ..sim.system import System
from ..trace.io import load_trace, save_trace
from ..trace.trace import Trace
from ..workloads import build_workload

#: Input scales used for reported (non-quick) benchmark numbers.  Chosen
#: so each run finishes in seconds while keeping every workload's paper
#: *footprint* characteristics (see EXPERIMENTS.md for the rationale).
PAPER_SCALES: Dict[str, float] = {
    "compress95": 0.25,
    "vortex": 0.5,
    "radix": 0.3,
    "em3d": 0.3,
    "gcc": 1.0,
}

#: Much smaller inputs for CI / the test suite.
QUICK_SCALES: Dict[str, float] = {
    "compress95": 0.04,
    "vortex": 0.06,
    "radix": 0.05,
    "em3d": 0.08,
    "gcc": 0.12,
}

DEFAULT_SEED = 1998


def quick_mode_requested() -> bool:
    """True when the environment asks for quick (CI) scales."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


class BenchContext:
    """Shared state for one benchmark session."""

    def __init__(
        self,
        quick: Optional[bool] = None,
        scales: Optional[Mapping[str, float]] = None,
        cache_dir: Optional[Path] = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        if quick is None:
            quick = quick_mode_requested()
        self.quick = quick
        base = QUICK_SCALES if quick else PAPER_SCALES
        self.scales: Dict[str, float] = dict(base)
        if scales:
            self.scales.update(scales)
        if cache_dir is None:
            env = os.environ.get("REPRO_TRACE_CACHE")
            cache_dir = Path(env) if env else Path(".trace_cache")
        self.cache_dir = Path(cache_dir)
        self.seed = seed
        self._traces: Dict[str, Trace] = {}

    # ------------------------------------------------------------------ #
    # Traces
    # ------------------------------------------------------------------ #

    def scale_of(self, workload: str) -> float:
        """The input scale this context uses for *workload*."""
        return self.scales.get(workload, 1.0)

    def trace(self, workload: str) -> Trace:
        """Return the workload's trace, via memory and disk caches."""
        cached = self._traces.get(workload)
        if cached is not None:
            return cached
        scale = self.scale_of(workload)
        path = self.cache_dir / (
            f"{workload}_s{scale:g}_seed{self.seed}.npz"
        )
        trace: Optional[Trace] = None
        if path.exists():
            try:
                trace = load_trace(path)
            except (ValueError, KeyError, OSError):
                trace = None  # stale format: regenerate below
        if trace is None:
            trace = build_workload(workload, scale=scale, seed=self.seed)
            try:
                save_trace(trace, path)
            except OSError:
                pass  # read-only filesystem: run uncached
        self._traces[workload] = trace
        return trace

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def run(self, workload: str, config: SystemConfig) -> RunResult:
        """Simulate one workload on one configuration."""
        return System(config).run(self.trace(workload))

    def run_matrix(
        self,
        workloads: Sequence[str],
        configs: Mapping[str, SystemConfig],
        base_label: str,
        progress: bool = False,
    ) -> ResultMatrix:
        """Run every workload on every configuration."""
        matrix = ResultMatrix(base_label)
        for workload in workloads:
            for label, config in configs.items():
                if progress:
                    print(f"  running {workload} on {label}...", flush=True)
                matrix.add(self.run(workload, config))
        return matrix
