"""Trace-store bench: cold-sweep cost of the disk cache backends.

Runs the same cold quick/paper-scale five-workload sweep once per
backend mode, each in a **fresh subprocess with a fresh cache
directory**, and measures what the columnar store is supposed to move:

* ``time_to_first_cell_seconds`` — submit-to-first-result latency.  The
  legacy path serially pre-warms every trace in the parent before any
  worker starts; the store path lets workers single-flight their own
  traces, so the first cell waits only on its own trace's generation;
* ``peak_rss_kb`` — the larger of the coordinator's and the biggest
  worker's ``ru_maxrss``.  Legacy workers hold private decompressed
  trace copies; store workers share memory-mapped columns through the
  page cache;
* ``wall_seconds`` — end-to-end sweep wall clock.

Modes: ``legacy`` (per-file ``.npz``), ``store`` (columnar store),
``stream`` (store + simulate-while-generating).  Every mode must
produce **bit-identical** per-cell ``RunStats`` — the bench hashes the
sorted cell dicts and fails loudly on any divergence, which is the
acceptance gate CI's ``trace-store-smoke`` job runs.

Subprocesses (not in-process passes) keep the comparison honest: each
mode pays its own generation cost from a truly cold cache and its own
peak RSS, uncontaminated by the previous mode's allocator high-water
mark.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .runner import BenchContext

#: Backend modes, in reporting order.
MODES = ("legacy", "store", "stream")

# One cold sweep, run inside a fresh interpreter.  Reads a JSON config
# from argv[1], prints a JSON result on the last stdout line.
_CHILD_SRC = r"""
import json, sys, time, resource
cfg = json.loads(sys.argv[1])
sys.path[:0] = cfg["pythonpath"]
from pathlib import Path
from repro.api import ScenarioSpec
from repro.bench.runner import BenchContext
from repro.serve.scheduler import SweepScheduler
from repro.sim.config import paper_base

context = BenchContext(
    quick=cfg["quick"],
    cache_dir=Path(cfg["cache_dir"]),
    seed=cfg["seed"],
    jobs=cfg["jobs"],
    trace_store=cfg["trace_store"],
    stream_cold=cfg["stream_cold"],
)
specs = [
    ScenarioSpec(workload=name, config=paper_base(), seed=cfg["seed"])
    for name in cfg["workloads"]
]
cells = {}
first_cell = [None]
start = time.perf_counter()

def on_result(index, report):
    if first_cell[0] is None:
        first_cell[0] = time.perf_counter() - start
    cells[cfg["workloads"][index]] = report.stats_dict()

scheduler = SweepScheduler(context=context, jobs=cfg["jobs"])
scheduler.sweep(specs, on_result=on_result)
wall = time.perf_counter() - start
rss_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
rss_children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(json.dumps({
    "wall": wall,
    "first_cell": first_cell[0],
    "rss_self_kb": rss_self,
    "rss_children_kb": rss_children,
    "cells": cells,
}))
"""


@dataclass
class TraceStoreBenchResult:
    """Per-mode measurements plus the cross-mode identity verdict."""

    measurements: Dict[str, dict]
    digests: Dict[str, str]
    report: str
    shape_errors: List[str] = field(default_factory=list)


def _digest(cells: dict) -> str:
    blob = json.dumps(cells, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _mode_flags(mode: str) -> dict:
    return {
        "trace_store": mode != "legacy",
        "stream_cold": mode == "stream",
    }


def run_trace_store_bench(
    context: BenchContext,
    modes=MODES,
    jobs: Optional[int] = None,
    progress: bool = False,
) -> TraceStoreBenchResult:
    """Run the cold-sweep comparison across *modes*.

    Uses the context's scales/seed/workload suite; *jobs* defaults to
    the context's (capped at the suite size — more shards than cells
    only adds spawn noise to the timings).
    """
    from ..workloads import PAPER_SUITE

    workloads = [w for w in PAPER_SUITE if w in context.scales]
    jobs = min(
        jobs if jobs is not None else (context.jobs or 2),
        len(workloads),
    )
    jobs = max(2, jobs)  # the prewarm-vs-single-flight contrast needs a pool
    measurements: Dict[str, dict] = {}
    digests: Dict[str, str] = {}
    errors: List[str] = []
    for mode in modes:
        with tempfile.TemporaryDirectory(
            prefix=f"trace_store_bench_{mode}_"
        ) as cache_dir:
            cfg = {
                "pythonpath": sys.path,
                "quick": context.quick,
                "cache_dir": cache_dir,
                "seed": context.seed,
                "jobs": jobs,
                "workloads": workloads,
                **_mode_flags(mode),
            }
            if progress:
                print(f"  [{mode}] cold sweep x{len(workloads)} "
                      f"(jobs={jobs})...", flush=True)
            proc = subprocess.run(
                [sys.executable, "-c", _CHILD_SRC, json.dumps(cfg)],
                capture_output=True,
                text=True,
                env={**os.environ, "REPRO_TRACE_CACHE": cache_dir},
            )
            if proc.returncode != 0:
                errors.append(
                    f"{mode}: child exited {proc.returncode}: "
                    f"{proc.stderr.strip()[-400:]}"
                )
                continue
            try:
                payload = json.loads(proc.stdout.strip().splitlines()[-1])
            except (ValueError, IndexError):
                errors.append(
                    f"{mode}: unparsable child output: "
                    f"{proc.stdout[-200:]!r}"
                )
                continue
            cells = payload.pop("cells")
            payload["peak_rss_kb"] = max(
                payload["rss_self_kb"], payload["rss_children_kb"]
            )
            measurements[mode] = payload
            digests[mode] = _digest(cells)
    if len(digests) > 1 and len(set(digests.values())) != 1:
        errors.append(
            "cell stats diverge across backends: "
            + ", ".join(f"{m}={d}" for m, d in sorted(digests.items()))
        )
    lines = [
        f"cold {len(workloads)}-workload sweep, jobs={jobs}, "
        f"quick={context.quick}, seed={context.seed}",
        "",
        f"{'mode':8s} {'wall(s)':>9s} {'first-cell(s)':>14s} "
        f"{'peak-RSS(MB)':>13s}  cells-digest",
    ]
    for mode in modes:
        m = measurements.get(mode)
        if m is None:
            lines.append(f"{mode:8s} {'-':>9s} {'-':>14s} {'-':>13s}  failed")
            continue
        lines.append(
            f"{mode:8s} {m['wall']:>9.2f} {m['first_cell']:>14.2f} "
            f"{m['peak_rss_kb'] / 1024:>13.1f}  {digests[mode]}"
        )
    if "legacy" in measurements and "store" in measurements:
        legacy, store = measurements["legacy"], measurements["store"]
        lines.append("")
        lines.append(
            "store vs legacy: first-cell "
            f"{legacy['first_cell']:.2f}s -> {store['first_cell']:.2f}s, "
            f"peak RSS {legacy['peak_rss_kb'] / 1024:.1f}MB -> "
            f"{store['peak_rss_kb'] / 1024:.1f}MB"
        )
    return TraceStoreBenchResult(
        measurements=measurements,
        digests=digests,
        report="\n".join(lines),
        shape_errors=errors,
    )
