"""Standardized metrics snapshots: the ``repro metrics`` file format.

One *snapshot* is a JSON document holding the scalar metrics of one or
more runs, keyed ``<workload>|<config label>``.  The same schema is used
by ``repro metrics dump`` (one run), by the bench runner's
``BENCH_<name>.json`` baselines (a whole figure matrix), and by
``repro metrics diff`` — so any two of those artifacts can be compared.

Schema (``repro-metrics/1``)::

    {
      "schema": "repro-metrics/1",
      "schema_version": 1,
      "repro_version": "1.1.0",
      "label": "figure3",
      "meta": {...free-form provenance: seed, quick, scales...},
      "runs": {
        "em3d|tlb96": {"metrics": {"total_cycles": 12753686, ...}},
        ...
      }
    }

Metric values are flat name -> number; derived ratios (cpi, hit rates,
TLB time fraction) are materialised at dump time so diffs compare what
the paper's figures actually plot.

Every snapshot is stamped with the schema version and the repro release
that wrote it.  :func:`load_snapshot` refuses a snapshot written under a
*different* schema version with a :class:`~repro.errors.
SnapshotSchemaError` naming both versions — never a ``KeyError`` three
stack frames into a diff.  (Snapshots predating the stamp are read as
version 1, which is what they are.)
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Union

from .._version import __version__
from ..errors import SnapshotSchemaError

if TYPE_CHECKING:  # imported lazily to keep repro.obs sim-independent
    from ..sim.results import ResultMatrix, RunResult
    from ..sim.stats import RunStats

SCHEMA_PREFIX = "repro-metrics"
SCHEMA_VERSION = 1
SCHEMA = f"{SCHEMA_PREFIX}/{SCHEMA_VERSION}"


def _envelope(
    label: str,
    meta: Optional[Mapping[str, object]],
    runs: Dict[str, object],
) -> Dict[str, object]:
    """The stamped snapshot document every constructor shares."""
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "label": label,
        "meta": dict(meta or {}),
        "runs": runs,
    }

#: Derived RunStats properties included in every snapshot.
DERIVED_METRICS = (
    "tlb_miss_rate",
    "tlb_time_fraction",
    "cache_hit_rate",
    "mtlb_hit_rate",
    "avg_fill_cycles",
    "cpi",
)


def stats_metrics(stats: "RunStats") -> Dict[str, float]:
    """Flatten one RunStats into the snapshot's metric mapping."""
    out: Dict[str, float] = {}
    for fld in dataclasses.fields(stats):
        value = getattr(stats, fld.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[fld.name] = value
    for name in DERIVED_METRICS:
        out[name] = getattr(stats, name)
    for key, value in stats.extra.items():
        out[f"extra.{key}"] = value
    return out


def run_key(workload: str, config_label: str) -> str:
    return f"{workload}|{config_label}"


def run_snapshot(
    result: "RunResult",
    label: str = "run",
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Snapshot one run."""
    return _envelope(
        label,
        meta,
        {
            run_key(result.workload, result.config_label): {
                "metrics": stats_metrics(result.stats)
            }
        },
    )


def results_snapshot(
    results,
    label: str,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Snapshot any iterable of :class:`RunResult` (e.g. a figure-4
    sweep that keeps runs in a plain dict rather than a matrix)."""
    runs: Dict[str, object] = {}
    for result in results:
        runs[run_key(result.workload, result.config_label)] = {
            "metrics": stats_metrics(result.stats)
        }
    return _envelope(label, meta, runs)


def matrix_snapshot(
    matrix: "ResultMatrix",
    label: str,
    workloads=None,
    config_labels=None,
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Snapshot a whole (workload x config) result matrix."""
    runs: Dict[str, object] = {}
    for workload in workloads or matrix.workloads():
        labels = config_labels or list(matrix._results[workload])
        for config_label in labels:
            result = matrix.get(workload, config_label)
            runs[run_key(workload, config_label)] = {
                "metrics": stats_metrics(result.stats)
            }
    return _envelope(label, meta, runs)


def write_snapshot(
    snapshot: Mapping[str, object], path: Union[str, Path]
) -> Path:
    """Write one snapshot as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Load and schema-check a snapshot file.

    A snapshot written under a different ``repro-metrics`` schema
    version (either the ``schema`` suffix or an explicit
    ``schema_version`` stamp) raises :class:`~repro.errors.
    SnapshotSchemaError` naming both versions, so ``repro metrics
    diff`` across incompatible formats fails with an explanation
    instead of a ``KeyError`` mid-comparison.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a metrics snapshot object")
    schema = payload.get("schema")
    if schema != SCHEMA:
        if isinstance(schema, str) and schema.startswith(
            SCHEMA_PREFIX + "/"
        ):
            raise SnapshotSchemaError(
                f"{path}: snapshot was written with schema {schema!r}, "
                f"but this repro build ({__version__}) reads "
                f"{SCHEMA!r}; re-generate the snapshot with this build "
                "or diff it with the repro version that wrote it"
            )
        raise ValueError(
            f"{path}: not a {SCHEMA} snapshot (schema={schema!r})"
        )
    declared = payload.get("schema_version", SCHEMA_VERSION)
    if declared != SCHEMA_VERSION:
        raise SnapshotSchemaError(
            f"{path}: snapshot declares schema_version {declared!r}, "
            f"but this repro build ({__version__}) reads version "
            f"{SCHEMA_VERSION}; re-generate the snapshot with this "
            "build or diff it with the repro version that wrote it"
        )
    if not isinstance(payload.get("runs"), dict):
        raise ValueError(f"{path}: snapshot has no 'runs' mapping")
    return payload
