"""Unit tests for the synthetic workload family."""

import numpy as np
import pytest

from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.system import System
from repro.trace.events import MapRegion, Remap
from repro.workloads import SYNTHETIC_SUITE, build_workload, workload_names


class TestRegistryAndShape:
    def test_registered(self):
        assert set(SYNTHETIC_SUITE) <= set(workload_names())

    @pytest.mark.parametrize("name", SYNTHETIC_SUITE)
    def test_maps_then_remaps(self, name):
        trace = build_workload(name, scale=0.01)
        events = list(trace.events())
        assert isinstance(events[0], MapRegion)
        assert isinstance(events[1], Remap)
        assert events[0].vaddr == events[1].vaddr

    @pytest.mark.parametrize("name", SYNTHETIC_SUITE)
    def test_references_inside_region(self, name):
        trace = build_workload(name, scale=0.01)
        region = next(iter(trace.events()))
        for segment in trace.segments():
            assert segment.vaddrs.min() >= region.vaddr
            assert segment.vaddrs.max() < region.vaddr + region.length

    @pytest.mark.parametrize("name", SYNTHETIC_SUITE)
    def test_deterministic(self, name):
        a = build_workload(name, scale=0.01, seed=5)
        b = build_workload(name, scale=0.01, seed=5)
        va = np.concatenate([s.vaddrs for s in a.segments()])
        vb = np.concatenate([s.vaddrs for s in b.segments()])
        assert np.array_equal(va, vb)


class TestBehaviouralContrast:
    def test_scatter_thrashes_stream_does_not(self):
        scatter = build_workload("scatter", scale=0.05)
        stream = build_workload("stream", scale=0.05)
        config = paper_no_mtlb(96)
        scatter_run = System(config).run(scatter)
        stream_run = System(config).run(stream)
        assert (
            scatter_run.stats.tlb_miss_rate
            > 5 * stream_run.stats.tlb_miss_rate
        )

    def test_mtlb_rescues_scatter(self):
        scatter = build_workload("scatter", scale=0.05)
        base = System(paper_no_mtlb(96)).run(scatter)
        fast = System(paper_mtlb(96)).run(scatter)
        assert fast.total_cycles < base.total_cycles
        assert fast.stats.tlb_time_fraction < 0.01

    def test_zipf_sits_between(self):
        config = paper_no_mtlb(96)
        rates = {
            name: System(config)
            .run(build_workload(name, scale=0.05))
            .stats.tlb_miss_rate
            for name in ("stream", "zipf", "scatter")
        }
        assert rates["stream"] < rates["zipf"] < rates["scatter"]
