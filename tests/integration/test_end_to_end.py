"""End-to-end simulation tests over the real workload models (tiny
inputs): accounting invariants, MTLB effects, determinism, caching."""

import numpy as np
import pytest

from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.system import SimulationError, System
from repro.trace.events import MapRegion
from repro.trace.io import load_trace, save_trace
from repro.trace.trace import Trace, make_segment
from repro.workloads import PAPER_SUITE, build_workload

QUICK = 0.03


@pytest.fixture(scope="module")
def quick_traces():
    return {
        name: build_workload(name, scale=QUICK) for name in PAPER_SUITE
    }


class TestAccountingInvariants:
    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_cycle_categories_sum(self, quick_traces, name):
        result = System(paper_mtlb(96)).run(quick_traces[name])
        result.stats.check_consistency()  # raises on mismatch
        assert result.stats.total_cycles > 0
        assert result.stats.references == quick_traces[name].total_refs

    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_reference_counts_identical_across_configs(
        self, quick_traces, name
    ):
        base = System(paper_no_mtlb(96)).run(quick_traces[name])
        fast = System(paper_mtlb(96)).run(quick_traces[name])
        assert base.stats.references == fast.stats.references
        assert base.stats.instructions == fast.stats.instructions

    def test_deterministic_simulation(self, quick_traces):
        trace = quick_traces["em3d"]
        a = System(paper_mtlb(96)).run(trace)
        b = System(paper_mtlb(96)).run(trace)
        assert a.total_cycles == b.total_cycles
        assert a.stats.tlb_misses == b.stats.tlb_misses


class TestMtlbEffects:
    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_mtlb_slashes_tlb_miss_time(self, quick_traces, name):
        base = System(paper_no_mtlb(96)).run(quick_traces[name])
        fast = System(paper_mtlb(96)).run(quick_traces[name])
        if base.stats.tlb_miss_cycles > 100_000:
            assert (
                fast.stats.tlb_miss_cycles
                < base.stats.tlb_miss_cycles / 2
            )
        else:
            # Tiny inputs fit the CPU TLB; the MTLB must not hurt.
            assert (
                fast.stats.tlb_miss_cycles
                <= base.stats.tlb_miss_cycles * 1.1
            )

    def test_shadow_traffic_only_with_mtlb(self, quick_traces):
        base = System(paper_no_mtlb(96)).run(quick_traces["em3d"])
        fast = System(paper_mtlb(96)).run(quick_traces["em3d"])
        assert base.stats.mtlb_lookups == 0
        assert fast.stats.mtlb_lookups > 0

    def test_superpages_resident_after_run(self, quick_traces):
        from repro.core.remap import plan_superpages
        from repro.trace.events import MapRegion
        trace = quick_traces["radix"]
        system = System(paper_mtlb(96))
        system.run(trace)
        process = system.kernel.current
        supers = process.page_table.superpages()
        # Exactly what the planner promises for this trace's region (14
        # at paper scale; fewer on the shrunken test input).
        region = next(
            e for e in trace.events() if isinstance(e, MapRegion)
        )
        expected = plan_superpages(region.vaddr, region.length)
        assert len(supers) == len(expected)
        assert all(
            system.config.memory_map.is_shadow(m.pbase) for m in supers
        )

    def test_baseline_ignores_remap_events(self, quick_traces):
        system = System(paper_no_mtlb(96))
        system.run(quick_traces["radix"])
        assert system.kernel.current.page_table.superpages() == []
        assert system.kernel.stats.remap_calls == 0


class TestRunSemantics:
    def test_system_is_single_use(self, quick_traces):
        system = System(paper_mtlb(96))
        system.run(quick_traces["em3d"])
        with pytest.raises(RuntimeError):
            system.run(quick_traces["em3d"])

    def test_unmapped_reference_is_a_simulation_error(self):
        trace = Trace("broken")
        trace.add(make_segment("oops", [0x0900_0000]))
        with pytest.raises(SimulationError):
            System(paper_mtlb(96)).run(trace)

    def test_segment_cycles_recorded(self, quick_traces):
        system = System(paper_mtlb(96))
        system.run(quick_traces["compress95"])
        labels = [label for label, _ in system.segment_cycles]
        assert any(label.startswith("compress") for label in labels)
        assert all(cycles > 0 for _, cycles in system.segment_cycles)


class TestTraceCacheFidelity:
    def test_cached_trace_simulates_identically(self, tmp_path, quick_traces):
        trace = quick_traces["vortex"]
        path = tmp_path / "vortex.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        a = System(paper_mtlb(96)).run(trace)
        b = System(paper_mtlb(96)).run(loaded)
        assert a.total_cycles == b.total_cycles


class TestIfetchModel:
    def test_gcc_sees_instruction_translations(self, quick_traces):
        result = System(paper_no_mtlb(96)).run(quick_traces["gcc"])
        assert result.stats.itlb_transitions > 0

    def test_large_text_costs_more(self):
        """Two identical data streams; the one with a large code
        footprint pays more for instruction translations."""
        def trace_with_text(text_pages):
            trace = Trace("t", text_size=max(text_pages, 1) << 12)
            trace.add(MapRegion(0x0200_0000, 1 << 20))
            rng = np.random.default_rng(1)
            vaddrs = 0x0200_0000 + (
                rng.integers(0, (1 << 20) // 8, 200_000) * 8
            )
            trace.add(
                make_segment("s", vaddrs, gap=2, text_pages=text_pages)
            )
            return trace

        small = System(paper_no_mtlb(96)).run(trace_with_text(2))
        large = System(paper_no_mtlb(96)).run(trace_with_text(300))
        assert (
            large.stats.itlb_main_misses > small.stats.itlb_main_misses
        )
        assert large.total_cycles > small.total_cycles
