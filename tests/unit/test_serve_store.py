"""Unit tests: scenario fingerprints and the content-addressed store.

The store's contract: a hit may be served without simulating, so the
fingerprint must separate everything result-relevant and collapse
everything result-irrelevant — and a read must never return bytes it
cannot vouch for (corrupt entries are quarantined and regenerated).
"""

import dataclasses
import json
import time

import pytest

from repro.errors import SpecValidationError
from repro.serve.fingerprint import (
    FINGERPRINT_VERSION,
    canonical_config,
    canonical_scenario,
    scenario_fingerprint,
)
from repro.serve.store import STORE_SCHEMA, ResultStore, StoreRecord
from repro.sim.config import paper_base, paper_mtlb, paper_no_mtlb
from repro.sim.stats import RunStats


class TestFingerprint:
    def test_deterministic(self):
        a = scenario_fingerprint("em3d", paper_mtlb(96), 0.25, 1998)
        b = scenario_fingerprint("em3d", paper_mtlb(96), 0.25, 1998)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_result_relevant_fields_separate(self):
        base = scenario_fingerprint("em3d", paper_mtlb(96), 0.25, 1998)
        assert base != scenario_fingerprint(
            "gcc", paper_mtlb(96), 0.25, 1998
        )
        assert base != scenario_fingerprint(
            "em3d", paper_no_mtlb(96), 0.25, 1998
        )
        assert base != scenario_fingerprint(
            "em3d", paper_mtlb(96), 0.5, 1998
        )
        assert base != scenario_fingerprint(
            "em3d", paper_mtlb(96), 0.25, 7
        )

    def test_engine_and_sanitize_are_irrelevant(self):
        """Engines are bit-identical and sanitizers are read-only, so a
        vector/sanitized run must be a cache hit for a scalar rerun."""
        config = paper_mtlb(96)
        base = scenario_fingerprint("em3d", config, 0.25, 1998)
        for variant in (
            dataclasses.replace(config, engine="vector"),
            dataclasses.replace(config, engine="scalar"),
            dataclasses.replace(config, sanitize=True),
        ):
            assert scenario_fingerprint(
                "em3d", variant, 0.25, 1998
            ) == base

    def test_canonical_config_strips_irrelevant(self):
        tree = canonical_config(paper_base())
        assert "engine" not in tree
        assert "sanitize" not in tree
        assert "obs" not in tree
        assert "tlb" in tree

    def test_mix_includes_schedule_shape(self):
        mix = ("em3d", "gcc")
        a = scenario_fingerprint(
            mix, paper_mtlb(96), [0.25, 1.0], 1998,
            quantum_refs=100_000, switch_cost=3_000,
        )
        b = scenario_fingerprint(
            mix, paper_mtlb(96), [0.25, 1.0], 1998,
            quantum_refs=50_000, switch_cost=3_000,
        )
        assert a != b

    def test_version_salts_the_hash(self):
        doc = canonical_scenario("em3d", paper_mtlb(96), 0.25, 1998)
        assert doc["fingerprint_version"] == FINGERPRINT_VERSION


def _stats(cycles=1000):
    return RunStats(total_cycles=cycles, references=10)


class TestResultStore:
    FP = "ab" + "0" * 62

    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        stats = _stats()
        store.put(
            self.FP, workload="em3d", config_label="tlb96",
            stats=stats, metrics={"total_cycles": 1000.0, "cpi": 1.5},
            meta={"seed": 1998},
        )
        record = store.get(self.FP)
        assert isinstance(record, StoreRecord)
        assert record.workload == "em3d"
        assert record.run_stats() == stats
        assert record.metrics == {"total_cycles": 1000.0, "cpi": 1.5}
        assert record.meta["seed"] == 1998
        assert self.FP in store

    def test_miss_on_absent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("00" * 32) is None

    def test_corrupt_record_quarantined_and_regenerable(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(self.FP, "em3d", "tlb96", _stats())
        path = store.record_path(self.FP)
        record = json.loads(path.read_text())
        record["stats"]["total_cycles"] = 999999  # bit-rot
        path.write_text(json.dumps(record))
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert store.get(self.FP) is None  # miss, not bad data
        assert not path.exists()  # moved aside
        assert (store.quarantine_dir / path.name).exists()
        # The scheduler would now regenerate: a fresh put must succeed
        # and verify again.
        store.put(self.FP, "em3d", "tlb96", _stats(2000))
        assert store.get(self.FP).stats["total_cycles"] == 2000

    def test_corrupt_payload_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(
            self.FP, "em3d", "tlb96", _stats(),
            metrics={"cpi": 1.5},
        )
        store.payload_path(self.FP).write_bytes(b"not an npz")
        with pytest.warns(RuntimeWarning, match="quarantin"):
            assert store.get(self.FP) is None

    def test_truncated_record_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(self.FP, "em3d", "tlb96", _stats())
        path = store.record_path(self.FP)
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])
        with pytest.warns(RuntimeWarning):
            assert store.get(self.FP) is None

    def test_schema_version_mismatch_is_soft_miss(self, tmp_path):
        """A future schema is not corruption: warn and miss, but leave
        the entry for the build that understands it."""
        store = ResultStore(tmp_path / "store")
        store.put(self.FP, "em3d", "tlb96", _stats())
        path = store.record_path(self.FP)
        record = json.loads(path.read_text())
        record["schema"] = "repro-results/99"
        record["schema_version"] = 99
        path.write_text(json.dumps(record))
        with pytest.warns(RuntimeWarning, match="schema version"):
            assert store.get(self.FP) is None
        assert path.exists()  # not quarantined

    def test_unknown_stats_fields_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(
            self.FP, "em3d", "tlb96",
            {"total_cycles": 1, "not_a_runstats_field": 2},
        )
        with pytest.warns(RuntimeWarning, match="RunStats"):
            assert store.get(self.FP) is None

    def test_status_inventory(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.status()["entries"] == 0
        store.put(self.FP, "em3d", "tlb96", _stats())
        status = store.status()
        assert status["entries"] == 1
        assert status["schema"] == STORE_SCHEMA
        assert status["bytes"] > 0
        assert list(store.keys()) == [self.FP]


class TestDurability:
    """Crash-simulation tests: a torn write must never produce a
    silently-corrupt store entry — the worst case is a quarantined
    record that the next sweep regenerates."""

    FP = "cd" + "1" * 62

    def test_atomic_write_bytes_round_trip(self, tmp_path):
        from repro.serve.store import atomic_write_bytes

        path = tmp_path / "deep" / "nested" / "blob.json"
        atomic_write_bytes(path, b"first")
        assert path.read_bytes() == b"first"
        atomic_write_bytes(path, b"second")
        assert path.read_bytes() == b"second"

    def test_no_tmp_files_survive_a_put(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(
            self.FP, "em3d", "tlb96", _stats(),
            metrics={"cpi": 1.5},
        )
        leftovers = list((tmp_path / "store").rglob("*.tmp"))
        assert leftovers == []

    def test_crash_before_rename_leaves_store_clean(self, tmp_path):
        """A crash between tmp-write and rename leaves only the tmp
        file; the entry is a plain miss and the orphan is invisible to
        keys()/status()."""
        store = ResultStore(tmp_path / "store")
        store.put(self.FP, "em3d", "tlb96", _stats())
        path = store.record_path(self.FP)
        # Simulate the torn rewrite: tmp written, rename never happened.
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text('{"half": "a record')
        path.unlink()
        assert store.get(self.FP) is None  # miss, no exception
        assert list(store.keys()) == []
        assert store.status()["entries"] == 0

    def test_torn_record_write_quarantines_not_corrupts(self, tmp_path):
        """The other crash window: rename happened but the record bytes
        are truncated (e.g. power loss without the fsync).  The CRC
        check must quarantine the entry — never serve partial JSON."""
        store = ResultStore(tmp_path / "store")
        store.put(self.FP, "em3d", "tlb96", _stats())
        path = store.record_path(self.FP)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 7])
        with pytest.warns(RuntimeWarning):
            assert store.get(self.FP) is None
        assert not path.exists()
        assert (store.quarantine_dir / path.name).exists()
        # Regeneration heals the entry completely.
        store.put(self.FP, "em3d", "tlb96", _stats(4242))
        assert store.get(self.FP).stats["total_cycles"] == 4242

    def test_poison_dir_excluded_from_inventory(self, tmp_path):
        from repro.serve.supervise import (
            PoisonRecord,
            write_poison_record,
        )

        store = ResultStore(tmp_path / "store")
        store.put(self.FP, "em3d", "tlb96", _stats())
        write_poison_record(
            store.poison_dir,
            PoisonRecord(
                index=0, label="gcc|tlb64", fingerprint="ee" * 32,
                workload="gcc", config_label="tlb64", attempts=4,
                classification="deterministic",
                errors=["SimulationError: boom"],
            ),
        )
        status = store.status()
        assert status["entries"] == 1
        assert status["poisoned"] == 1
        assert list(store.keys()) == [self.FP]


class TestSpecValidation:
    def test_unknown_workload(self):
        from repro.api import ScenarioSpec, validate_spec

        with pytest.raises(SpecValidationError, match="unknown workload"):
            validate_spec(ScenarioSpec("nonesuch"))

    def test_bad_engine_rejected_at_construction(self):
        from repro.api import ScenarioSpec

        with pytest.raises(SpecValidationError, match="engine"):
            ScenarioSpec("em3d", engine="warp")

    def test_vector_with_fault_plan_validates(self):
        """PR-8 lift: fault plans batch, so a vector spec carrying one
        passes the pre-spawn probe instead of failing fast."""
        from repro.api import ScenarioSpec, validate_spec
        from repro.faults import FaultConfig

        config = dataclasses.replace(
            paper_mtlb(96),
            faults=FaultConfig(mtlb_parity_rate=0.01),
        )
        validate_spec(ScenarioSpec("em3d", config, engine="vector"))

    def test_nonpositive_scale_rejected(self):
        from repro.api import ScenarioSpec

        with pytest.raises(SpecValidationError, match="scale"):
            ScenarioSpec("em3d", scale=0.0)


class TestConcurrentWriters:
    """Satellite hardening: many processes committing one fingerprint."""

    FP = "cd" + "1" * 62

    def test_parallel_same_fingerprint_writers(self, tmp_path):
        """N processes hammering the same entry must leave one valid,
        servable record — no torn bytes, no quarantine, no .tmp litter.

        Before the private-tmp-name fix, two writers staged through the
        same ``<name>.tmp`` file: the second open truncated the first
        writer's bytes mid-write, so a rename could commit a partial
        file.
        """
        import multiprocessing

        root = tmp_path / "store"
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(
                target=_hammer_store, args=(str(root), self.FP, 25)
            )
            for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(120)
            assert proc.exitcode == 0
        store = ResultStore(root)
        record = store.get(self.FP)  # full checksum verification
        assert record is not None
        assert record.run_stats().total_cycles == 4242
        assert record.metrics == {"total_cycles": 4242.0}
        assert not store.quarantine_dir.exists()
        assert list(root.rglob("*.tmp")) == []

    def test_tmp_stage_names_are_private(self, tmp_path):
        from repro.serve.store import _tmp_path

        target = tmp_path / "x.json"
        assert _tmp_path(target) != _tmp_path(target)

    def test_failed_write_cleans_its_stage(self, tmp_path, monkeypatch):
        import repro.serve.store as store_mod

        def boom(src, dst):
            raise OSError("disk says no")

        monkeypatch.setattr(store_mod.os, "replace", boom)
        with pytest.raises(OSError):
            store_mod.atomic_write_bytes(tmp_path / "x.json", b"{}")
        assert list(tmp_path.glob("*.tmp")) == []


def _hammer_store(root, fingerprint, rounds):
    """Worker for test_parallel_same_fingerprint_writers (spawn target
    must be module-level picklable)."""
    from repro.serve.store import ResultStore
    from repro.sim.stats import RunStats

    store = ResultStore(root)
    for _ in range(rounds):
        store.put(
            fingerprint,
            workload="em3d",
            config_label="tlb96",
            stats=RunStats(total_cycles=4242, references=10),
            metrics={"total_cycles": 4242.0},
            meta={"seed": 1998},
        )


class TestGc:
    """``repro serve gc``: prune litter, never entries."""

    FP = "ef" + "2" * 62

    def _seeded(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(
            self.FP, workload="em3d", config_label="tlb96",
            stats=_stats(), meta={},
        )
        return store

    def test_old_tmp_files_pruned_fresh_kept(self, tmp_path):
        import os

        store = self._seeded(tmp_path)
        shard = store.record_path(self.FP).parent
        old = shard / "dead.json.12345.0.tmp"
        old.write_bytes(b"partial")
        ancient = time.time() - 3600
        os.utime(old, (ancient, ancient))
        fresh = shard / "live.json.12345.1.tmp"
        fresh.write_bytes(b"in-flight")
        summary = store.gc(tmp_grace_seconds=900.0)
        assert summary["tmp_removed"] == 1
        assert not old.exists()
        assert fresh.exists()
        assert store.get(self.FP) is not None  # entries untouched

    def test_checkpoint_pruned_after_resume(self, tmp_path):
        import os

        store = self._seeded(tmp_path)
        checkpoint = store.root / "interrupted_sweep.json"
        checkpoint.write_text("{}")
        # The record commit is *newer* than the checkpoint: the sweep
        # was resumed, the checkpoint is stale.
        past = time.time() - 500
        os.utime(checkpoint, (past, past))
        summary = store.gc(max_age_seconds=7 * 86400.0)
        assert summary["checkpoints_removed"] == 1
        assert not checkpoint.exists()

    def test_unresumed_checkpoint_kept_until_max_age(self, tmp_path):
        import os

        store = self._seeded(tmp_path)
        checkpoint = store.root / "interrupted_sweep.json"
        checkpoint.write_text("{}")
        # Checkpoint *newer* than every record: not resumed yet.
        summary = store.gc(max_age_seconds=7 * 86400.0)
        assert summary["checkpoints_removed"] == 0
        assert checkpoint.exists()
        ancient = time.time() - 8 * 86400
        os.utime(checkpoint, (ancient, ancient))
        summary = store.gc(max_age_seconds=7 * 86400.0)
        assert summary["checkpoints_removed"] == 1

    def test_old_poison_sidecars_pruned(self, tmp_path):
        import os

        store = self._seeded(tmp_path)
        store.poison_dir.mkdir(parents=True)
        old = store.poison_dir / "aa.poison.json"
        old.write_text("{}")
        ancient = time.time() - 8 * 86400
        os.utime(old, (ancient, ancient))
        fresh = store.poison_dir / "bb.poison.json"
        fresh.write_text("{}")
        summary = store.gc(max_age_seconds=7 * 86400.0)
        assert summary["poison_removed"] == 1
        assert not old.exists()
        assert fresh.exists()

    def test_dry_run_removes_nothing(self, tmp_path):
        import os

        store = self._seeded(tmp_path)
        shard = store.record_path(self.FP).parent
        old = shard / "dead.json.1.0.tmp"
        old.write_bytes(b"partial")
        ancient = time.time() - 3600
        os.utime(old, (ancient, ancient))
        summary = store.gc(dry_run=True)
        assert summary["dry_run"] is True
        assert summary["tmp_removed"] == 1
        assert old.exists()

    def test_quarantine_is_never_garbage(self, tmp_path):
        store = self._seeded(tmp_path)
        store.quarantine_dir.mkdir(parents=True)
        evidence = store.quarantine_dir / "bad.json"
        evidence.write_text("{}")
        store.gc(max_age_seconds=0.0, tmp_grace_seconds=0.0)
        assert evidence.exists()
