"""Unit tests for the trace validator."""

import pytest

from repro.trace.events import MapRegion, Phase, Remap
from repro.trace.trace import Trace, make_segment
from repro.trace.validate import validate_trace
from repro.workloads import (
    PAPER_SUITE,
    SYNTHETIC_SUITE,
    build_workload,
)

BASE = 0x0200_0000


def valid_trace():
    trace = Trace("ok")
    trace.add(MapRegion(BASE, 64 << 10))
    trace.add(Remap(BASE, 64 << 10))
    trace.add(Phase("go"))
    trace.add(make_segment("s", [BASE, BASE + 4096]))
    return trace


class TestValidator:
    def test_valid_trace_passes(self):
        report = validate_trace(valid_trace())
        assert report.ok
        report.raise_if_invalid()  # no-op

    def test_unmapped_reference_flagged(self):
        trace = Trace("bad")
        trace.add(make_segment("s", [BASE]))
        report = validate_trace(trace)
        assert not report.ok
        assert "referenced before mapping" in report.errors[0]
        with pytest.raises(ValueError):
            report.raise_if_invalid()

    def test_reference_before_its_mapping_flagged(self):
        trace = Trace("bad")
        trace.add(make_segment("s", [BASE]))
        trace.add(MapRegion(BASE, 4096))
        assert not validate_trace(trace).ok

    def test_overlapping_mappings_flagged(self):
        trace = Trace("bad")
        trace.add(MapRegion(BASE, 64 << 10))
        trace.add(MapRegion(BASE + (32 << 10), 64 << 10))
        report = validate_trace(trace)
        assert any("overlaps" in e for e in report.errors)

    def test_remap_of_unmapped_flagged(self):
        trace = Trace("bad")
        trace.add(Remap(BASE, 64 << 10))
        report = validate_trace(trace)
        assert any("remap of unmapped" in e for e in report.errors)

    def test_double_remap_flagged(self):
        trace = Trace("bad")
        trace.add(MapRegion(BASE, 64 << 10))
        trace.add(Remap(BASE, 64 << 10))
        trace.add(Remap(BASE, 16 << 10))
        report = validate_trace(trace)
        assert any("remapped twice" in e for e in report.errors)

    def test_misaligned_event_flagged(self):
        trace = Trace("bad")
        trace.add(MapRegion(BASE + 1, 4096))
        report = validate_trace(trace)
        assert any("not page aligned" in e for e in report.errors)

    def test_kernel_range_mapping_flagged(self):
        trace = Trace("bad")
        trace.add(MapRegion(0x0000_4000, 4096))
        report = validate_trace(trace)
        assert any("below the user virtual range" in e
                   for e in report.errors)

    def test_empty_segment_flagged(self):
        import numpy as np
        from repro.trace.trace import Segment
        trace = Trace("bad")
        trace.add(
            Segment(
                "empty",
                np.zeros(0, dtype="uint8"),
                np.zeros(0, dtype="int64"),
                np.zeros(0, dtype="int32"),
            )
        )
        assert not validate_trace(trace).ok

    def test_multiple_errors_all_reported(self):
        trace = Trace("bad")
        trace.add(Remap(BASE, 4096))
        trace.add(make_segment("s", [0x0900_0000]))
        report = validate_trace(trace)
        assert len(report.errors) == 2


class TestAllWorkloadsValidate:
    @pytest.mark.parametrize("name", PAPER_SUITE + SYNTHETIC_SUITE)
    def test_workload_traces_are_valid(self, name):
        report = validate_trace(build_workload(name, scale=0.02))
        assert report.ok, "\n".join(report.errors)
