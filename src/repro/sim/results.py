"""Run-result records, normalisation, and ASCII rendering helpers.

The paper reports runtimes *normalised to a base system* (96-entry CPU
TLB, no MTLB) and breaks out the fraction of runtime spent in TLB miss
handling.  This module holds the small amount of shared machinery the
benchmark harness uses to produce those rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .stats import RunStats


@dataclass
class RunResult:
    """Outcome of simulating one workload on one configuration."""

    workload: str
    config_label: str
    stats: RunStats
    #: Full metrics-registry mapping (name -> value) collected at end of
    #: run; None for results rebuilt from checkpoints (DESIGN.md §9).
    metrics: Optional[Dict[str, float]] = field(default=None, repr=False)
    #: The run's :class:`~repro.obs.ObsCollector` when observability was
    #: enabled (event log + phase attribution + exporters); else None.
    obs: Optional[object] = field(default=None, repr=False)
    #: Trace-execution engine that produced the run ("scalar" |
    #: "vector"); "" for results rebuilt from checkpoints, where the
    #: engine is unknown (and irrelevant — engines are bit-identical).
    engine: str = ""

    @property
    def total_cycles(self) -> int:
        """Total simulated runtime in CPU cycles."""
        return self.stats.total_cycles

    @property
    def tlb_time_fraction(self) -> float:
        """Fraction of runtime spent in TLB miss handling."""
        return self.stats.tlb_time_fraction

    def normalised_to(self, base: "RunResult") -> float:
        """Runtime relative to *base* (1.0 = identical)."""
        if base.total_cycles == 0:
            raise ValueError("base run has zero cycles")
        return self.total_cycles / base.total_cycles


class ResultMatrix:
    """Results indexed by (workload, config label), with a base config."""

    def __init__(self, base_label: str) -> None:
        self.base_label = base_label
        self._results: Dict[str, Dict[str, RunResult]] = {}

    def add(self, result: RunResult) -> None:
        """Record one run."""
        self._results.setdefault(result.workload, {})[
            result.config_label
        ] = result

    def get(self, workload: str, config_label: str) -> RunResult:
        """Fetch one run; raises KeyError if absent."""
        return self._results[workload][config_label]

    def workloads(self) -> List[str]:
        """Workload names in insertion order."""
        return list(self._results)

    def normalised(self, workload: str, config_label: str) -> float:
        """Runtime normalised to the workload's base-config run."""
        base = self.get(workload, self.base_label)
        return self.get(workload, config_label).normalised_to(base)

    def row(
        self, workload: str, config_labels: Sequence[str]
    ) -> List[float]:
        """Normalised runtimes for one workload across configurations."""
        return [self.normalised(workload, c) for c in config_labels]


# ---------------------------------------------------------------------- #
# ASCII rendering
# ---------------------------------------------------------------------- #


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a plain monospace table (the harness's printed artifacts)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_series(
    name: str, points: Mapping[str, float], unit: str = ""
) -> str:
    """Render one named series as ``label: value`` lines (figure data)."""
    lines = [f"{name}:"]
    for label, value in points.items():
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {label:>24s} = {value:.4f}{suffix}")
    return "\n".join(lines)
