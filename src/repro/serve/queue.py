"""Priority + weighted-fair tenant queue for the scenario daemon.

The daemon (DESIGN.md §14) multiplexes many clients onto one supervised
worker pool, so the queue between them decides who gets simulated next.
Two mechanisms compose:

* **priority bands** — a higher ``priority`` integer always dispatches
  before a lower one (operators draining an incident outrank batch
  backfills).  Within a band priority says nothing about order;
* **weighted fairness** — inside each band, tenants share capacity by
  *start-time fair queuing*: every item carries a virtual start time,
  and each pop takes the item whose tenant has the smallest virtual
  clock, then advances that clock by ``1 / weight``.  A tenant that
  enqueues 10 000 scenarios cannot starve one that enqueues 5 — the
  small tenant's items interleave near the front regardless of arrival
  order.  An idle tenant re-joining is clamped to the band's current
  virtual time, so saved-up idleness is not a budget to burst with.

The queue is thread-safe (the asyncio front pushes from the event loop
thread while the supervisor's dispatch loop polls from its own thread)
and deterministic: equal-priority, equal-virtual-time ties break by
arrival order, never by wall clock or hash order.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, Generic, List, Optional, Tuple, TypeVar

__all__ = ["FairQueue", "QueueClosed"]

T = TypeVar("T")


class QueueClosed(RuntimeError):
    """push() after close(): the daemon is draining, nothing new enters."""


@dataclass
class _Tenant:
    """One tenant's fair-share state inside one priority band."""

    weight: float
    vtime: float = 0.0
    queued: int = 0


@dataclass
class _Band:
    """One priority band: tenants plus the band's virtual clock."""

    tenants: Dict[str, _Tenant] = field(default_factory=dict)
    #: (tenant_vtime_at_push, arrival_seq, tenant, item)
    heap: List[Tuple[float, int, str, object]] = field(
        default_factory=list
    )
    #: The largest virtual start time ever popped; re-joining tenants
    #: are clamped here so idleness never accumulates into a burst.
    vclock: float = 0.0


class FairQueue(Generic[T]):
    """Thread-safe priority + weighted-fair multi-tenant queue."""

    def __init__(self, default_weight: float = 1.0) -> None:
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.default_weight = default_weight
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._bands: Dict[int, _Band] = {}
        self._seq = itertools.count()
        self._closed = False
        self._depth = 0

    # ------------------------------------------------------------------ #
    # Producer side (event-loop thread)
    # ------------------------------------------------------------------ #

    def push(
        self,
        tenant: str,
        item: T,
        priority: int = 0,
        weight: Optional[float] = None,
    ) -> None:
        """Enqueue *item* for *tenant*; wakes one waiting consumer.

        *weight* (re)pins the tenant's fair share inside its band; the
        last pushed weight wins.  Raises :class:`QueueClosed` once the
        queue is draining.
        """
        if weight is not None and weight <= 0:
            raise ValueError("weight must be positive")
        with self._not_empty:
            if self._closed:
                raise QueueClosed("queue is closed")
            band = self._bands.setdefault(priority, _Band())
            state = band.tenants.get(tenant)
            if state is None:
                state = _Tenant(weight=weight or self.default_weight)
                band.tenants[tenant] = state
            elif weight is not None:
                state.weight = weight
            if state.queued == 0:
                # Re-joining after idleness: no banked virtual time.
                state.vtime = max(state.vtime, band.vclock)
            start = state.vtime
            state.vtime += 1.0 / state.weight
            state.queued += 1
            heapq.heappush(
                band.heap, (start, next(self._seq), tenant, item)
            )
            self._depth += 1
            self._not_empty.notify()

    def close(self) -> None:
        """Refuse further pushes and wake every waiting consumer."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------ #
    # Consumer side (supervisor thread)
    # ------------------------------------------------------------------ #

    def poll(self) -> Optional[T]:
        """Pop the next item without blocking; None when empty."""
        with self._lock:
            return self._pop_locked()

    def get(self, timeout: Optional[float] = None) -> Optional[T]:
        """Pop the next item, waiting up to *timeout* seconds.

        Returns None on timeout or when the queue was closed and
        drained dry.
        """
        with self._not_empty:
            item = self._pop_locked()
            if item is not None or self._closed:
                return item
            self._not_empty.wait(timeout)
            return self._pop_locked()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until an item is queued (or close()); True when one is.

        The supervisor's idle path: poll() came back empty, so sleep on
        the condition instead of spinning at the watchdog tick.
        """
        with self._not_empty:
            if self._depth or self._closed:
                return self._depth > 0
            self._not_empty.wait(timeout)
            return self._depth > 0

    def _pop_locked(self) -> Optional[T]:
        for priority in sorted(self._bands, reverse=True):
            band = self._bands[priority]
            if not band.heap:
                continue
            start, _, tenant, item = heapq.heappop(band.heap)
            band.vclock = max(band.vclock, start)
            band.tenants[tenant].queued -= 1
            self._depth -= 1
            return item
        return None

    # ------------------------------------------------------------------ #
    # Introspection (the /queue endpoint)
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return self._depth

    def depths(self) -> Dict[str, int]:
        """Queued items per tenant, summed across priority bands."""
        with self._lock:
            out: Dict[str, int] = {}
            for band in self._bands.values():
                for tenant, state in band.tenants.items():
                    if state.queued:
                        out[tenant] = out.get(tenant, 0) + state.queued
            return out

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready queue state for ``GET /queue``."""
        with self._lock:
            bands = {}
            for priority in sorted(self._bands, reverse=True):
                band = self._bands[priority]
                tenants = {
                    tenant: {
                        "queued": state.queued,
                        "weight": state.weight,
                        "vtime": round(state.vtime, 6),
                    }
                    for tenant, state in sorted(band.tenants.items())
                    if state.queued
                }
                if tenants:
                    bands[str(priority)] = tenants
            return {
                "depth": self._depth,
                "closed": self._closed,
                "bands": bands,
            }
