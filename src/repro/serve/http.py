"""Minimal asyncio HTTP/1.1 plumbing for the scenario daemon.

Stdlib-only by design (the repo bakes in no web framework): enough of
HTTP/1.1 for the daemon's four endpoints — request-line + header
parsing, ``Content-Length`` bodies, full responses, and
chunked-transfer NDJSON streaming.  Connections are one-request
(``Connection: close``), which is exactly what the CLI client and a
Prometheus scraper do anyway; correctness beats keep-alive here.

This is transport only.  Routing, JSON schemas, and queueing semantics
live in :mod:`repro.serve.daemon`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "NdjsonStream",
    "json_response",
    "read_request",
    "render_response",
]

#: Largest request body the daemon will buffer (a 10k-scenario batch of
#: full config trees is ~20 MB; this caps hostile/broken clients).
MAX_BODY_BYTES = 64 << 20
MAX_HEADER_BYTES = 64 << 10

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the daemon refuses; rendered as a JSON error body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body as JSON; :class:`HttpError` 400 when malformed."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from None


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read up to the blank line ending the header block."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF: client closed without a request
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    return head


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request; None on clean EOF before a request line."""
    head = await _read_head(reader)
    if head is None:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query).items()
    }
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if n < 0:
            raise HttpError(400, "bad Content-Length")
        if n > MAX_BODY_BYTES:
            raise HttpError(413, f"body larger than {MAX_BODY_BYTES}")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        raise HttpError(400, "chunked request bodies not supported")
    return HttpRequest(
        method=method, path=split.path, query=query,
        headers=headers, body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """One complete HTTP/1.1 response, Connection: close."""
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int, doc: object, extra_headers: Optional[Dict[str, str]] = None
) -> bytes:
    """A JSON document as a complete response."""
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    return render_response(
        status, body, extra_headers=extra_headers
    )


class NdjsonStream:
    """Chunked newline-delimited-JSON response writer.

    Headers go out on the first :meth:`write_line` (so a handler that
    fails validating the request can still send a plain error
    response), every line is one chunk flushed immediately — the whole
    point is that the client sees each scenario the moment it commits —
    and :meth:`finish` sends the zero-chunk terminator.

    A client that disconnects mid-stream surfaces as
    :class:`ConnectionError` from ``drain()``; the daemon treats that
    as "stop streaming, keep simulating".
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._headers_sent = False
        self.lines_sent = 0

    async def _send_headers(self) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1"))
        await self._writer.drain()
        self._headers_sent = True

    @property
    def started(self) -> bool:
        return self._headers_sent

    async def write_line(self, doc: object) -> None:
        """Send one JSON document as one chunk (immediately flushed)."""
        if not self._headers_sent:
            await self._send_headers()
        payload = (
            json.dumps(doc, sort_keys=True) + "\n"
        ).encode("utf-8")
        chunk = f"{len(payload):x}\r\n".encode("latin-1")
        self._writer.write(chunk + payload + b"\r\n")
        await self._writer.drain()
        self.lines_sent += 1

    async def finish(self) -> None:
        if not self._headers_sent:
            await self._send_headers()
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
