"""Paging of shadow-backed superpages, one base page at a time.

Conventional superpages force the OS to swap the whole superpage.  Because
the MTLB keeps *per-base-page* referenced and dirty bits in the shadow
page table (Section 2.5), the OS can instead:

* run a CLOCK hand over the base pages of live shadow superpages, using
  the MMC-maintained referenced bits;
* evict a single cold base page: flush (only) its lines, write it to the
  backing store only if its dirty bit is set, invalidate its shadow
  mapping, and free its frame — the CPU TLB superpage entry stays put;
* on a later access, the MTLB raises a precise fault (Section 4's
  bad-parity signalling) and the page-in path brings just that base page
  back, possibly into a different frame.

Disk timings are simulated constants; the interesting measurements are the
*counts* (pages and bytes moved), which is where per-base-page paging beats
whole-superpage swapping.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.addrspace import BASE_PAGE_SHIFT, BASE_PAGE_SIZE
from .vm import ShadowSuperpage, VmSubsystem


@dataclass(frozen=True)
class PagingCosts:
    """Simulated costs of paging operations, in CPU cycles."""

    #: Transfer one 4 KB page to/from the backing store (a fast disk of
    #: the era; the absolute value only scales the demo numbers).
    disk_transfer: int = 250_000
    #: Fault handling overhead (trap decode, table lookups).
    fault_overhead: int = 2_000
    #: Per-page CLOCK sweep bookkeeping.
    sweep_page: int = 40


@dataclass
class PagingStats:
    """Event counters for the pager."""

    pages_out: int = 0
    pages_in: int = 0
    dirty_writebacks: int = 0
    clean_drops: int = 0
    faults: int = 0
    sweeps: int = 0


class BackingStore:
    """Swap space keyed by shadow page index."""

    def __init__(self) -> None:
        self._slots: Dict[int, bool] = {}

    def put(self, shadow_index: int) -> None:
        """Record that a base page's contents now live on disk."""
        self._slots[shadow_index] = True

    def take(self, shadow_index: int) -> None:
        """Consume the slot on page-in."""
        if shadow_index not in self._slots:
            raise KeyError(
                f"shadow page {shadow_index:#x} is not in the backing store"
            )
        del self._slots[shadow_index]

    def holds(self, shadow_index: int) -> bool:
        """True if the base page is currently swapped out."""
        return shadow_index in self._slots

    @property
    def occupancy(self) -> int:
        """Number of swapped-out base pages."""
        return len(self._slots)


class Pager:
    """CLOCK replacement over shadow-backed base pages."""

    def __init__(
        self,
        vm: VmSubsystem,
        costs: PagingCosts = PagingCosts(),
    ) -> None:
        self.vm = vm
        self.costs = costs
        self.store = BackingStore()
        self.stats = PagingStats()
        #: Shadow index of the last page the hand examined, -1 before the
        #: first sweep.  The hand must be anchored to a *stable* page
        #: identity, not an index into the resident list: page-outs
        #: between sweeps compact that list, and an integer index would
        #: silently skip (or re-examine) pages when it shifts.
        self._hand = -1

    # ------------------------------------------------------------------ #
    # CLOCK sweep
    # ------------------------------------------------------------------ #

    def _resident_pages(self) -> List[Tuple[ShadowSuperpage, int]]:
        """All resident (record, page_index_within_superpage) pairs."""
        out: List[Tuple[ShadowSuperpage, int]] = []
        for base in sorted(self.vm.shadow_superpages):
            record = self.vm.shadow_superpages[base]
            for i, pfn in enumerate(record.pfns):
                if pfn is not None:
                    out.append((record, i))
        return out

    def clock_select(self, count: int) -> Tuple[List[Tuple[ShadowSuperpage, int]], int]:
        """Select *count* eviction victims with the CLOCK algorithm.

        Sweeps the resident shadow base pages from the saved hand
        position: a page whose referenced bit is set gets the bit cleared
        and is passed over; a page with the bit clear is selected.
        Returns ``(victims, cycles)``.
        """
        machine = self.vm._require_machine()
        table = machine.mmc.shadow_table
        resident = self._resident_pages()
        victims: List[Tuple[ShadowSuperpage, int]] = []
        cycles = 0
        if not resident:
            return victims, cycles
        self.stats.sweeps += 1
        scanned = 0
        max_scan = 2 * len(resident)
        # Resume after the last examined page.  ``resident`` is sorted by
        # shadow base, so the shadow indices are ascending; bisect finds
        # the first page past the hand even if the hand's own page was
        # evicted since the previous sweep.
        indices = [r.first_shadow_index + i for r, i in resident]
        pos = bisect_right(indices, self._hand) % len(resident)
        while len(victims) < count and scanned < max_scan:
            record, page_i = resident[pos]
            self._hand = indices[pos]
            pos = (pos + 1) % len(resident)
            scanned += 1
            cycles += self.costs.sweep_page
            shadow_index = record.first_shadow_index + page_i
            entry = table.entry(shadow_index)
            if entry.referenced:
                table.clear_referenced(shadow_index)
                # The MTLB may hold a cached copy with the stale bit; purge
                # so future fills re-report references.
                machine.mmc.mtlb.purge(shadow_index)
            elif (record, page_i) not in victims:
                victims.append((record, page_i))
        return victims, cycles

    # ------------------------------------------------------------------ #
    # Page-out
    # ------------------------------------------------------------------ #

    def page_out(self, record: ShadowSuperpage, page_i: int) -> int:
        """Evict one base page of a shadow superpage.

        Only the lines of that base page are flushed; the page is written
        to disk only if its MTLB-maintained dirty bit is set.  Returns the
        simulated cycle cost.
        """
        machine = self.vm._require_machine()
        pfn = record.pfns[page_i]
        if pfn is None:
            raise ValueError("base page is already swapped out")
        shadow_index = record.first_shadow_index + page_i
        table = machine.mmc.shadow_table
        entry = table.entry(shadow_index)
        vaddr = record.vbase + (page_i << BASE_PAGE_SHIFT)

        # Flush this base page's lines from the cache; dirty lines reach
        # DRAM before the mapping is invalidated.
        cycles, _dirty_lines = machine.flush_virtual_range(
            record.process, vaddr, BASE_PAGE_SIZE
        )

        if entry.dirty:
            cycles += self.costs.disk_transfer
            self.stats.dirty_writebacks += 1
        else:
            self.stats.clean_drops += 1
        self.store.put(shadow_index)
        if hasattr(machine, "page_data_out"):
            machine.page_data_out(pfn, shadow_index)

        machine.mmc.invalidate_mapping(shadow_index)
        table.clear_dirty(shadow_index)
        table.clear_referenced(shadow_index)
        self.vm.frames.free(pfn)
        record.pfns[page_i] = None
        self.stats.pages_out += 1
        return cycles

    # ------------------------------------------------------------------ #
    # Page-in (MTLB precise fault service)
    # ------------------------------------------------------------------ #

    def page_in(self, shadow_index: int) -> int:
        """Service an MTLB fault: bring one base page back from disk.

        The page may land in a different frame; only the MMC's mapping
        entry changes — the CPU TLB superpage entry is untouched, which is
        the whole point.  Returns the simulated cycle cost.
        """
        machine = self.vm._require_machine()
        record = self.vm.record_for_shadow_index(shadow_index)
        if record is None:
            raise KeyError(
                f"shadow page {shadow_index:#x} belongs to no superpage"
            )
        page_i = shadow_index - record.first_shadow_index
        if record.pfns[page_i] is not None:
            raise ValueError("base page is already resident")
        self.store.take(shadow_index)
        pfn = self.vm.frames.allocate()
        record.pfns[page_i] = pfn
        if hasattr(machine, "page_data_in"):
            machine.page_data_in(pfn, shadow_index)
        machine.mmc.revalidate_mapping(shadow_index, pfn)
        self.stats.faults += 1
        self.stats.pages_in += 1
        return self.costs.fault_overhead + self.costs.disk_transfer

    def resident_count(self, record: ShadowSuperpage) -> int:
        """Number of resident base pages in one superpage."""
        return sum(1 for pfn in record.pfns if pfn is not None)
