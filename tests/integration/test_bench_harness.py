"""Smoke tests for the benchmark harness (tiny inputs).

The full harness runs under ``pytest benchmarks/ --benchmark-only``;
these tests only check that its plumbing — scales, trace caching, matrix
running, report rendering — works.
"""

import pytest

from repro.bench import BenchContext, run_fig2, run_allocator_ablation
from repro.bench.figure3 import render_report
from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.results import ResultMatrix


@pytest.fixture
def tiny_ctx(tmp_path):
    return BenchContext(
        quick=True,
        scales={name: 0.02 for name in
                ("compress95", "vortex", "radix", "em3d", "gcc")},
        cache_dir=tmp_path,
    )


class TestBenchContext:
    def test_trace_caching_on_disk(self, tiny_ctx, tmp_path):
        first = tiny_ctx.trace("em3d")
        assert list(tmp_path.glob("em3d_*.npz"))
        # A fresh context reads the cached file and gets the same stream.
        again = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        ).trace("em3d")
        assert first.total_refs == again.total_refs

    def test_run_matrix(self, tiny_ctx):
        configs = {
            "tlb96": paper_no_mtlb(96),
            "tlb96+mtlb1282w": paper_mtlb(96),
        }
        matrix = tiny_ctx.run_matrix(["em3d"], configs, "tlb96")
        assert isinstance(matrix, ResultMatrix)
        assert matrix.normalised("em3d", "tlb96") == 1.0
        report = render_report(matrix, ["em3d"], configs.keys())
        assert "em3d" in report

    def test_quick_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        from repro.bench import quick_mode_requested
        assert quick_mode_requested()
        monkeypatch.setenv("REPRO_BENCH_QUICK", "0")
        assert not quick_mode_requested()


class TestStaticBenches:
    def test_fig2(self):
        report, errors = run_fig2()
        assert errors == []
        assert "16384KB" in report

    def test_allocator_ablation(self):
        result = run_allocator_ablation(requests=800)
        assert result.shape_errors == []
