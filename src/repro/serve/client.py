"""SweepClient: the scenario service's programmatic front door.

:class:`SweepClient` is what ``repro serve sweep`` is built on, and what
a notebook or driver script should import: it owns a
:class:`~repro.api.Session` (trace cache + result store), exposes the
scheduler's async ``submit()``/``gather()`` pair for callers that want
to overlap batches, and a synchronous ``sweep()`` for everyone else::

    from repro import ScenarioSpec, SweepClient
    from repro.sim.config import figure3_configs

    client = SweepClient(store=".result_store", jobs=4)
    reports = client.sweep(
        [ScenarioSpec(w, cfg) for w in ("em3d", "gcc")
         for cfg in figure3_configs().values()]
    )
    print(f"{client.cache_hit_rate:.0%} served from the store")

Every sweep dedupes against the content-addressed store first, so a
rerun of yesterday's matrix costs a directory scan, not a simulation.
"""

from __future__ import annotations

import http.client
import json
import os
import urllib.parse
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..api import RunReport, ScenarioSpec, Session, spec_to_doc, validate_spec
from ..errors import DaemonProtocolError, DaemonUnavailable
from ..obs import MetricsRegistry
from ..sim.stats import RunStats
from .chaos import ChaosConfig, ChaosPlan
from .scheduler import SweepScheduler, SweepTicket
from .store import ResultStore, default_store_root
from .supervise import (
    ShutdownGuard,
    SupervisionPolicy,
    SupervisionReport,
)

__all__ = ["SweepClient"]

#: Socket timeout for daemon requests: generous, because one read may
#: legitimately block for a whole scenario's simulation.
DAEMON_TIMEOUT_SECONDS = 3600.0


class SweepClient:
    """Submit scenario batches to the sharded, store-backed scheduler.

    *policy* tunes the pool's supervision (deadlines, retries, poison,
    breaker — :class:`~repro.serve.supervise.SupervisionPolicy`);
    *chaos* arms deterministic service-layer failure injection
    (:class:`~repro.serve.chaos.ChaosConfig`); *shutdown* wires a
    :class:`~repro.serve.supervise.ShutdownGuard` for graceful
    SIGINT/SIGTERM draining.  All three default to off/neutral.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        store: Union[None, str, Path, ResultStore] = None,
        jobs: Optional[int] = None,
        quick: Optional[bool] = None,
        seed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        progress: bool = False,
        policy: Optional[SupervisionPolicy] = None,
        chaos: Optional[Union[ChaosConfig, ChaosPlan]] = None,
        shutdown: Optional[ShutdownGuard] = None,
        daemon: Optional[str] = None,
        tenant: Optional[str] = None,
        priority: int = 0,
        weight: Optional[float] = None,
    ) -> None:
        #: Daemon transport: when set, ``sweep()`` POSTs the batch to a
        #: resident ``repro serve daemon`` at this base URL instead of
        #: running a local pool; results stream back over NDJSON and
        #: are bit-identical to the local path (same execution funnel,
        #: same commit discipline, the daemon's store).
        self.daemon = daemon.rstrip("/") if daemon else None
        self.tenant = tenant or f"client-{os.getpid()}"
        self.priority = priority
        self.weight = weight
        if session is None:
            kwargs: Dict[str, object] = {
                "store": store if store is not None
                else default_store_root(),
                "jobs": jobs,
            }
            if quick is not None:
                kwargs["quick"] = quick
            if seed is not None:
                kwargs["seed"] = seed
            session = Session(**kwargs)
        self.session = session
        self.scheduler = SweepScheduler(
            context=session.context,
            store=session.store,
            jobs=jobs if jobs is not None else session.jobs,
            registry=registry,
            progress_cb=(
                (lambda msg: print(msg, flush=True)) if progress else None
            ),
            policy=policy,
            chaos=chaos,
            shutdown=shutdown,
        )

    # -- async surface --------------------------------------------------- #

    async def submit(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]] = None,
    ) -> SweepTicket:
        """Validate + launch a batch; completion events stream to
        *on_result* as ``(submission_index, RunReport)`` pairs."""
        return await self.scheduler.submit(specs, on_result=on_result)

    async def gather(
        self, ticket: SweepTicket, raise_errors: bool = True
    ) -> List[RunReport]:
        """Await a submitted batch; reports in submission order."""
        return await self.scheduler.gather(
            ticket, raise_errors=raise_errors
        )

    # -- sync surface ----------------------------------------------------- #

    def sweep(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]] = None,
        raise_errors: bool = True,
    ) -> List[RunReport]:
        """Submit + gather one batch synchronously.

        With ``daemon=`` set the batch goes over HTTP to the resident
        daemon; otherwise the local sharded scheduler runs it.  Either
        way: reports in submission order, *on_result* streamed as
        scenarios complete.
        """
        if self.daemon is not None:
            return self._sweep_daemon(specs, on_result, raise_errors)
        return self.scheduler.sweep(
            specs, on_result=on_result, raise_errors=raise_errors
        )

    def _sweep_daemon(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]],
        raise_errors: bool,
    ) -> List[RunReport]:
        """One batch through ``POST /v1/sweep``, NDJSON streamed back."""
        specs = list(specs)
        for spec in specs:  # fail fast locally, like the batch path
            validate_spec(spec)
        url = self.daemon
        payload = {
            "tenant": self.tenant,
            "priority": self.priority,
            "specs": [spec_to_doc(spec) for spec in specs],
        }
        if self.weight is not None:
            payload["weight"] = self.weight
        body = json.dumps(payload).encode("utf-8")
        split = urllib.parse.urlsplit(url)
        if split.scheme not in ("http", ""):
            raise DaemonUnavailable(url, f"unsupported scheme {split.scheme}")
        host = split.hostname or "127.0.0.1"
        port = split.port or 80
        conn = http.client.HTTPConnection(
            host, port, timeout=DAEMON_TIMEOUT_SECONDS
        )
        reports: List[Optional[RunReport]] = [None] * len(specs)
        first_error: Optional[BaseException] = None
        saw_done = False
        try:
            try:
                conn.request(
                    "POST", "/v1/sweep", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
            except (ConnectionError, OSError) as exc:
                raise DaemonUnavailable(url, str(exc)) from exc
            if response.status != 200:
                detail = response.read(4096).decode("utf-8", "replace")
                if response.status == 503:
                    raise DaemonUnavailable(
                        url, f"HTTP 503: {detail.strip()}"
                    )
                raise DaemonProtocolError(
                    url, f"HTTP {response.status}: {detail.strip()}"
                )
            while True:
                try:
                    line = response.readline()
                except (ConnectionError, OSError) as exc:
                    raise DaemonUnavailable(
                        url, f"stream dropped: {exc}"
                    ) from exc
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError as exc:
                    raise DaemonProtocolError(
                        url, f"bad NDJSON line: {exc}"
                    ) from None
                kind = event.get("event")
                if kind == "accepted":
                    continue
                if kind == "done":
                    saw_done = True
                    break
                if kind not in ("result", "error"):
                    raise DaemonProtocolError(
                        url, f"unknown event {kind!r}"
                    )
                index = event.get("index")
                if not isinstance(index, int) or not (
                    0 <= index < len(specs)
                ):
                    raise DaemonProtocolError(
                        url, f"event index {index!r} out of range"
                    )
                report = self._daemon_report(specs[index], event)
                reports[index] = report
                self._count_daemon_event(event)
                if report.error is not None and first_error is None:
                    first_error = report.error
                if on_result is not None and report.error is None:
                    on_result(index, report)
        finally:
            conn.close()
        if not saw_done:
            raise DaemonUnavailable(
                url, "stream ended before the terminal done event"
            )
        for index, report in enumerate(reports):
            if report is None:
                raise DaemonProtocolError(
                    url, f"no terminal event for scenario #{index}"
                )
        if raise_errors and first_error is not None:
            raise first_error
        return reports

    def _daemon_report(
        self, spec: ScenarioSpec, event: Dict[str, object]
    ) -> RunReport:
        if event.get("event") == "error":
            error_type = event.get("error_type") or "RuntimeError"
            message = event.get("error") or "scenario failed in the daemon"
            return RunReport(
                spec=spec,
                stats=None,
                fingerprint=event.get("fingerprint"),
                error=RuntimeError(f"{error_type}: {message}"),
            )
        stats_doc = event.get("stats")
        return RunReport(
            spec=spec,
            stats=(
                RunStats(**stats_doc)
                if isinstance(stats_doc, dict) else None
            ),
            fingerprint=event.get("fingerprint"),
            cache_hit=event.get("source") != "executed",
            metrics=event.get("metrics"),
            wall_seconds=float(event.get("wall_seconds") or 0.0),
        )

    def _count_daemon_event(self, event: Dict[str, object]) -> None:
        """Mirror the daemon's answer into this client's counters, so
        ``cache_hit_rate`` / ``status()`` stay meaningful in daemon
        mode."""
        sched = self.scheduler
        sched.submitted.inc()
        source = event.get("source")
        if event.get("event") == "error":
            sched.failed.inc()
        elif source == "store":
            sched.store_hits.inc()
        elif source == "coalesced":
            sched.deduped.inc()
        else:
            sched.simulated.inc()

    def run(self, spec: ScenarioSpec) -> RunReport:
        """One scenario through the session (store-checked)."""
        return self.session.run(spec)

    # -- introspection ---------------------------------------------------- #

    @property
    def store(self) -> Optional[ResultStore]:
        return self.session.store

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted scenarios served without simulating."""
        return self.scheduler.cache_hit_rate

    @property
    def registry(self) -> MetricsRegistry:
        """The scheduler's obs registry (queue depth, hits, wall times)."""
        return self.scheduler.registry

    @property
    def last_supervision(self) -> Optional[SupervisionReport]:
        """The most recent pool sweep's supervision report (retries,
        kills, poison, overshoots); None for serial sweeps."""
        return self.scheduler.last_supervision

    def status(self) -> Dict[str, object]:
        """Store inventory plus this client's sweep counters."""
        status = dict(self.session.status())
        status.update(
            submitted=self.scheduler.submitted.value,
            store_hits=self.scheduler.store_hits.value,
            deduped=self.scheduler.deduped.value,
            simulated=self.scheduler.simulated.value,
            failed=self.scheduler.failed.value,
        )
        return status
