"""Superpage tiling for virtual regions (paper Section 2.4).

Given a virtual address range, the mapping algorithm rounds the start up to
the smallest superpage boundary (any sub-16 KB head stays on base pages),
then walks the region creating *maximally sized* superpages: at each point
it picks the largest legal superpage size to which the cursor is virtually
aligned and that still fits in the remaining region.  Any sub-16 KB tail
also stays on base pages.

Only virtual alignment matters — the whole point of shadow memory is that
the backing physical pages need not be contiguous or aligned at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .addrspace import (
    BASE_PAGE_SIZE,
    SUPERPAGE_SIZES,
    align_up,
    is_aligned,
)

_MIN_SUPERPAGE = SUPERPAGE_SIZES[0]
_SIZES_DESCENDING = tuple(sorted(SUPERPAGE_SIZES, reverse=True))


@dataclass(frozen=True)
class SuperpagePlan:
    """One planned superpage: a virtual base and a legal superpage size."""

    vaddr: int
    size: int

    @property
    def end(self) -> int:
        """One past the last virtual address covered."""
        return self.vaddr + self.size


def plan_superpages(start: int, length: int) -> List[SuperpagePlan]:
    """Tile ``[start, start+length)`` with maximal superpages.

    Returns the list of planned superpages in ascending address order.
    Regions (or head/tail fragments) smaller than the minimum superpage are
    simply not covered; the caller leaves them on base pages.
    """
    if start < 0 or length < 0:
        raise ValueError("start and length must be non-negative")
    if start % BASE_PAGE_SIZE or length % BASE_PAGE_SIZE:
        raise ValueError("region must be base-page aligned")
    end = start + length
    cursor = align_up(start, _MIN_SUPERPAGE)
    plans: List[SuperpagePlan] = []
    while cursor + _MIN_SUPERPAGE <= end:
        size = _best_size(cursor, end)
        plans.append(SuperpagePlan(cursor, size))
        cursor += size
    return plans


def _best_size(cursor: int, end: int) -> int:
    """Largest legal superpage aligned at *cursor* that fits before *end*."""
    remaining = end - cursor
    for size in _SIZES_DESCENDING:
        if size <= remaining and is_aligned(cursor, size):
            return size
    raise AssertionError(
        "unreachable: cursor is 16KB-aligned with >=16KB remaining"
    )


def uncovered_ranges(
    start: int, length: int, plans: List[SuperpagePlan]
) -> List[Tuple[int, int]]:
    """Return the (start, length) fragments of the region not in *plans*.

    These are the head/tail pieces that remain mapped with base pages.
    """
    out: List[Tuple[int, int]] = []
    cursor = start
    for plan in plans:
        if plan.vaddr > cursor:
            out.append((cursor, plan.vaddr - cursor))
        cursor = plan.end
    end = start + length
    if cursor < end:
        out.append((cursor, end - cursor))
    return out


def covered_bytes(plans: List[SuperpagePlan]) -> int:
    """Total bytes covered by the planned superpages."""
    return sum(plan.size for plan in plans)
