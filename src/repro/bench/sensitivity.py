"""S1/S2 — machine-organisation sensitivities (ours).

* **S1** sweeps cache associativity on the MTLB machine: how much of
  em3d's memory time is direct-mapped conflict misses (context for
  Figure 4's absolute numbers).
* **S2** sweeps the TLB-miss handling cost: the paper's premise (after
  Chen et al.) is that miss *reach*, not handler speed, is the problem —
  but the MTLB's payoff obviously scales with what a miss costs.  S2
  quantifies that across a hardware-walker-like cost, the paper's
  software trap, and a heavyweight-OS trap.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cpu.miss_handler import MissHandlerCosts
from ..sim.config import CacheConfig, paper_mtlb, paper_no_mtlb
from ..sim.results import render_table
from ..sim.system import System
from .runner import BenchContext

ASSOCIATIVITIES = (1, 2, 4)

#: (label, fixed-cost model) for the S2 handler sweep.
HANDLER_MODELS: Tuple[Tuple[str, MissHandlerCosts], ...] = (
    (
        "hw-walker-like",
        MissHandlerCosts(trap_overhead=4, hash_compute=2,
                         probe_compare=1, tlb_insert=1),
    ),
    ("paper sw trap", MissHandlerCosts()),
    (
        "heavyweight OS",
        MissHandlerCosts(trap_overhead=120, hash_compute=16,
                         probe_compare=10, tlb_insert=24),
    ),
)


@dataclass
class CacheSensitivityResult:
    """S1 outcome."""

    cycles: Dict[int, int]
    hit_rates: Dict[int, float]
    report: str
    shape_errors: List[str]


def run_cache_sensitivity(
    context: Optional[BenchContext] = None,
    workload: str = "em3d",
) -> CacheSensitivityResult:
    """em3d on the MTLB machine, cache associativity swept."""
    context = context or BenchContext()
    trace = context.trace(workload)
    cycles: Dict[int, int] = {}
    hit_rates: Dict[int, float] = {}
    rows = []
    for assoc in ASSOCIATIVITIES:
        config = dataclasses.replace(
            paper_mtlb(96),
            cache=CacheConfig(size_bytes=512 << 10, associativity=assoc),
        )
        result = System(config).run(trace)
        cycles[assoc] = result.total_cycles
        hit_rates[assoc] = result.stats.cache_hit_rate
        rows.append(
            [
                f"{assoc}-way" if assoc > 1 else "direct-mapped",
                f"{result.total_cycles:,}",
                f"{100 * result.stats.cache_hit_rate:.1f}%",
                f"{result.stats.avg_fill_cycles:.1f}",
            ]
        )
    report = render_table(
        ["cache", "cycles", "hit rate", "avg fill (CPU cyc)"],
        rows,
        title=f"S1: cache associativity sensitivity ({workload}, MTLB on)",
    )
    errors: List[str] = []
    if hit_rates[2] < hit_rates[1] - 0.001:
        errors.append("2-way cache hit rate below direct-mapped")
    if cycles[4] > cycles[1] * 1.01:
        errors.append("4-way cache slower than direct-mapped")
    return CacheSensitivityResult(
        cycles=cycles, hit_rates=hit_rates, report=report,
        shape_errors=errors,
    )


@dataclass
class HandlerSensitivityResult:
    """S2 outcome: MTLB gain per handler cost model."""

    gains: Dict[str, float]
    report: str
    shape_errors: List[str]


def run_handler_sensitivity(
    context: Optional[BenchContext] = None,
    workload: str = "compress95",
) -> HandlerSensitivityResult:
    """MTLB benefit as a function of TLB-miss handling cost."""
    context = context or BenchContext()
    trace = context.trace(workload)
    gains: Dict[str, float] = {}
    rows = []
    for label, costs in HANDLER_MODELS:
        base_config = dataclasses.replace(
            paper_no_mtlb(96), handler=costs
        )
        fast_config = dataclasses.replace(paper_mtlb(96), handler=costs)
        base = System(base_config).run(trace)
        fast = System(fast_config).run(trace)
        gain = 1.0 - fast.total_cycles / base.total_cycles
        gains[label] = gain
        rows.append(
            [
                label,
                f"{100 * base.stats.tlb_time_fraction:.1f}%",
                f"{base.total_cycles:,}",
                f"{fast.total_cycles:,}",
                f"{100 * gain:+.1f}%",
            ]
        )
    report = render_table(
        ["handler model", "base TLB time", "base cycles",
         "MTLB cycles", "MTLB gain"],
        rows,
        title=f"S2: MTLB gain vs TLB-miss handling cost ({workload})",
    )
    errors: List[str] = []
    ordered = [gains[label] for label, _ in HANDLER_MODELS]
    if not ordered[0] <= ordered[1] <= ordered[2]:
        errors.append(
            "MTLB gain does not grow with handler cost "
            f"({['%.3f' % g for g in ordered]})"
        )
    return HandlerSensitivityResult(
        gains=gains, report=report, shape_errors=errors
    )
