"""Unit tests for per-base-page paging of shadow superpages."""

import pytest

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.core.mtlb import MtlbFault

REGION = 0x0200_0000
SIZE = 64 << 10  # 16 base pages


@pytest.fixture
def paged(mtlb_system):
    """A process with one 64 KB shadow superpage."""
    system = mtlb_system
    process = system.kernel.create_process("pager")
    system.kernel.vm.map_region(process, REGION, SIZE)
    system.kernel.vm.remap_to_shadow(process, REGION, SIZE)
    mapping = process.page_table.lookup(REGION)
    record = system.kernel.vm.superpage_record(mapping.pbase)
    return system, process, record


class TestPageOut:
    def test_clean_page_drops_without_disk_write(self, paged):
        system, _process, record = paged
        pager = system.kernel.pager
        cost = pager.page_out(record, 3)
        assert pager.stats.clean_drops == 1
        assert pager.stats.dirty_writebacks == 0
        assert cost < system.kernel.pager.costs.disk_transfer
        assert record.pfns[3] is None

    def test_dirty_page_pays_disk_transfer(self, paged):
        system, _process, record = paged
        table = system.shadow_table
        idx = record.first_shadow_index + 3
        table.set_dirty(idx)
        cost = system.kernel.pager.page_out(record, 3)
        assert system.kernel.pager.stats.dirty_writebacks == 1
        assert cost >= system.kernel.pager.costs.disk_transfer

    def test_frame_freed_and_mapping_invalid(self, paged):
        system, _process, record = paged
        free_before = system.kernel.frames.free_frames
        system.kernel.pager.page_out(record, 0)
        assert system.kernel.frames.free_frames == free_before + 1
        entry = system.shadow_table.entry(record.first_shadow_index)
        assert not entry.valid

    def test_double_page_out_rejected(self, paged):
        system, _process, record = paged
        system.kernel.pager.page_out(record, 0)
        with pytest.raises(ValueError):
            system.kernel.pager.page_out(record, 0)

    def test_cpu_tlb_superpage_entry_survives(self, paged):
        """The whole point: evicting one base page leaves the CPU TLB's
        superpage mapping untouched."""
        system, process, record = paged
        entry, _ = system._refill_tlb(REGION + 5 * BASE_PAGE_SIZE)
        assert entry.size == SIZE
        system.kernel.pager.page_out(record, 3)
        assert system.tlb.probe(REGION) is not None


class TestPageIn:
    def test_fault_then_page_in(self, paged):
        system, _process, record = paged
        idx = record.first_shadow_index + 2
        system.kernel.pager.page_out(record, 2)
        with pytest.raises(MtlbFault):
            system.mtlb.access(idx, is_write=False)
        cost = system.kernel.pager.page_in(idx)
        assert cost >= system.kernel.pager.costs.disk_transfer
        pfn, _ = system.mtlb.access(idx, is_write=False)
        assert pfn == record.pfns[2]

    def test_page_in_may_use_new_frame(self, paged):
        system, _process, record = paged
        old_pfn = record.pfns[2]
        system.kernel.pager.page_out(record, 2)
        # Steal the freed frame so page-in must pick another.
        stolen = []
        while True:
            pfn = system.kernel.frames.allocate()
            stolen.append(pfn)
            if pfn == old_pfn:
                break
        system.kernel.pager.page_in(record.first_shadow_index + 2)
        assert record.pfns[2] != old_pfn

    def test_page_in_resident_rejected(self, paged):
        system, _process, record = paged
        with pytest.raises(ValueError):
            system.kernel.pager.page_in(record.first_shadow_index)

    def test_kernel_fault_handler_routes_to_pager(self, paged):
        system, _process, record = paged
        idx = record.first_shadow_index + 4
        system.kernel.pager.page_out(record, 4)
        system.kernel.handle_mtlb_fault(idx)
        assert record.pfns[4] is not None
        assert system.kernel.stats.mtlb_faults_serviced == 1


class TestClock:
    def test_referenced_pages_survive_first_sweep(self, paged):
        system, _process, record = paged
        table = system.shadow_table
        # Touch pages 0..3 (sets referenced); leave the rest cold.
        for i in range(4):
            system.mtlb.access(record.first_shadow_index + i, False)
        victims, cycles = system.kernel.pager.clock_select(2)
        assert cycles > 0
        chosen = {page_i for _rec, page_i in victims}
        assert chosen.isdisjoint(range(4))

    def test_sweep_clears_referenced_bits(self, paged):
        system, _process, record = paged
        table = system.shadow_table
        for i in range(record.base_pages):
            system.mtlb.access(record.first_shadow_index + i, False)
        system.kernel.pager.clock_select(1)
        cleared = sum(
            1
            for i in range(record.base_pages)
            if not table.entry(record.first_shadow_index + i).referenced
        )
        assert cleared > 0

    def test_eventually_selects_when_all_referenced(self, paged):
        system, _process, record = paged
        for i in range(record.base_pages):
            system.mtlb.access(record.first_shadow_index + i, False)
        victims, _ = system.kernel.pager.clock_select(record.base_pages)
        assert victims  # second lap finds cleared pages


class TestClockHand:
    """The hand is anchored to a stable page identity (shadow index).

    Regression tests for the index-anchored hand: page-outs between
    sweeps compact the resident list, and a positional hand would
    silently skip (or re-examine) pages when the list shifts under it.
    """

    def test_sweep_resumes_after_evicted_hand_page(self, paged):
        """Evicting the very page the hand rests on must not derail the
        next sweep: it resumes at the next page in shadow-index order."""
        system, _process, record = paged
        pager = system.kernel.pager
        victims, _ = pager.clock_select(1)
        assert victims == [(record, 0)]  # all cold: first page picked
        pager.page_out(record, 0)  # the hand's page disappears
        victims, _ = pager.clock_select(1)
        assert victims == [(record, 1)]

    def test_interleaved_page_outs_keep_rotation_order(self, paged):
        """Sweep / evict / sweep ... must visit pages strictly in order,
        never skipping one because an eviction compacted the list.  (The
        old positional hand selected 0, 2, 4, ... under this pattern.)"""
        system, _process, record = paged
        pager = system.kernel.pager
        order = []
        for _ in range(record.base_pages):
            (victim,), _ = pager.clock_select(1)
            order.append(victim[1])
            pager.page_out(victim[0], victim[1])
        assert order == list(range(record.base_pages))

    def test_referenced_page_spares_only_itself_after_compaction(
        self, paged
    ):
        system, _process, record = paged
        pager = system.kernel.pager
        table = system.shadow_table
        pager.clock_select(1)  # hand now rests on page 0
        pager.page_out(record, 0)
        # Page 1 gets referenced; the next sweep must examine it (clear
        # the bit, pass over) and select page 2 — not jump past both.
        table.set_referenced(record.first_shadow_index + 1)
        victims, _ = pager.clock_select(1)
        assert victims == [(record, 2)]
        assert not table.entry(record.first_shadow_index + 1).referenced

    def test_hand_wraps_to_start(self, paged):
        system, _process, record = paged
        pager = system.kernel.pager
        for _ in range(record.base_pages):
            pager.clock_select(1)  # walk the hand to the last page
        victims, _ = pager.clock_select(2)
        assert victims == [(record, 0), (record, 1)]


class TestPageRoundTrip:
    """Full page_out → MTLB fault → page_in cycles."""

    def test_clean_round_trip(self, paged):
        system, _process, record = paged
        pager = system.kernel.pager
        idx = record.first_shadow_index + 6
        system.mtlb.access(idx, is_write=False)  # warm + referenced
        assert system.mtlb.probe(idx) is not None
        pager.page_out(record, 6)
        # The eviction purged the cached way: its stale referenced copy
        # must not survive into the page's next residency.
        assert system.mtlb.probe(idx) is None
        assert pager.stats.clean_drops == 1
        assert pager.stats.dirty_writebacks == 0
        with pytest.raises(MtlbFault):
            system.mtlb.access(idx, is_write=False)
        cost = pager.page_in(idx)
        assert cost >= pager.costs.disk_transfer
        entry = system.shadow_table.entry(idx)
        assert not entry.referenced and not entry.dirty
        pfn, _ = system.mtlb.access(idx, is_write=False)
        assert pfn == record.pfns[6]

    def test_dirty_round_trip(self, paged):
        system, _process, record = paged
        pager = system.kernel.pager
        idx = record.first_shadow_index + 7
        system.mtlb.access(idx, is_write=True)  # sets the dirty bit
        assert system.shadow_table.entry(idx).dirty
        cost = pager.page_out(record, 7)
        assert pager.stats.dirty_writebacks == 1
        assert pager.stats.clean_drops == 0
        assert cost >= pager.costs.disk_transfer
        pager.page_in(idx)
        # The page came back clean: its dirty life ended at writeback.
        entry = system.shadow_table.entry(idx)
        assert not entry.dirty and not entry.referenced
        assert record.pfns[7] is not None

    def test_cpu_tlb_superpage_survives_round_trip(self, paged):
        """The paper's central claim, end to end: a base page can leave
        and re-enter memory without touching the CPU TLB's superpage
        entry."""
        system, _process, record = paged
        pager = system.kernel.pager
        entry, _ = system._refill_tlb(REGION)
        assert entry.size == SIZE
        idx = record.first_shadow_index + 3
        pager.page_out(record, 3)
        assert system.tlb.probe(REGION) is entry
        pager.page_in(idx)
        assert system.tlb.probe(REGION) is entry

    def test_round_trip_counts_balance(self, paged):
        system, _process, record = paged
        pager = system.kernel.pager
        dirty_pages = (2, 5)
        for i in dirty_pages:
            system.mtlb.access(record.first_shadow_index + i, True)
        for i in range(record.base_pages):
            pager.page_out(record, i)
        assert pager.stats.pages_out == record.base_pages
        assert pager.stats.dirty_writebacks == len(dirty_pages)
        assert (
            pager.stats.clean_drops
            == record.base_pages - len(dirty_pages)
        )
        for i in range(record.base_pages):
            pager.page_in(record.first_shadow_index + i)
        assert pager.stats.pages_in == record.base_pages
        assert pager.store.occupancy == 0
        assert all(pfn is not None for pfn in record.pfns)


class TestBackingStore:
    def test_holds_and_take(self, paged):
        system, _process, record = paged
        idx = record.first_shadow_index
        store = system.kernel.pager.store
        system.kernel.pager.page_out(record, 0)
        assert store.holds(idx)
        system.kernel.pager.page_in(idx)
        assert not store.holds(idx)
        with pytest.raises(KeyError):
            store.take(idx)
