"""Kernel events embedded in traces.

Workload models interleave these with reference segments; the simulator
executes them through the MiniKernel at the point they appear.  A
:class:`Remap` is executed only on systems configured to use shadow
superpages — on the conventional baseline the same trace runs with the
region left on base pages, so both systems see an identical reference
stream (the paper's instrumented-binary methodology).
"""

from __future__ import annotations

from dataclasses import dataclass


class KernelEvent:
    """Base class for all trace-embedded kernel operations."""


@dataclass(frozen=True)
class MapRegion(KernelEvent):
    """Map ``[vaddr, vaddr+length)`` with base pages."""

    vaddr: int
    length: int
    label: str = ""


@dataclass(frozen=True)
class Remap(KernelEvent):
    """remap(): move a mapped region onto shadow-backed superpages.

    Ignored (a no-op, costing nothing) on systems without superpage
    support, mirroring the paper's unmodified baseline runs.
    """

    vaddr: int
    length: int
    label: str = ""


@dataclass(frozen=True)
class HeapGrow(KernelEvent):
    """The modified sbrk() ran out of pool: map a new heap region.

    ``remap`` records whether the modified sbrk would promote the new
    region to superpages (True in the paper's instrumented runs).
    """

    vaddr: int
    length: int
    remap: bool = True
    label: str = ""


@dataclass(frozen=True)
class MapConventional(KernelEvent):
    """Map a region with *conventional* superpages (ablation A1).

    Requires physically contiguous, size-aligned frame runs; raises the
    allocator's OutOfMemory when fragmentation defeats it — the failure
    mode shadow-backed superpages exist to remove.
    """

    vaddr: int
    length: int
    label: str = ""


@dataclass(frozen=True)
class Phase(KernelEvent):
    """A named phase marker, for reporting only (no cost, no effect)."""

    name: str
