"""Unit tests for the MMC stream-buffer prefetcher."""

import pytest

from repro.core.addrspace import CACHE_LINE_SIZE
from repro.mem.dram import Dram
from repro.mem.stream_buffers import StreamBufferConfig, StreamBufferUnit


@pytest.fixture
def unit():
    return StreamBufferUnit(
        StreamBufferConfig(enabled=True, buffers=2, depth=4), Dram()
    )


def line(n):
    return n * CACHE_LINE_SIZE


class TestDetection:
    def test_first_misses_do_not_hit(self, unit):
        assert unit.lookup(line(10)) is None
        assert unit.lookup(line(11)) is None  # trains + allocates
        assert unit.stats.allocations == 1

    def test_sequential_stream_hits_after_training(self, unit):
        unit.lookup(line(10))
        unit.lookup(line(11))
        # Lines 12..15 were prefetched.
        for n in range(12, 16):
            assert unit.lookup(line(n)) is not None
        assert unit.stats.hits == 4

    def test_stream_keeps_running(self, unit):
        unit.lookup(line(10))
        unit.lookup(line(11))
        for n in range(12, 40):
            assert unit.lookup(line(n)) is not None

    def test_random_misses_never_allocate(self, unit):
        for n in (5, 100, 7, 300, 9, 500):
            assert unit.lookup(line(n)) is None
        assert unit.stats.allocations == 0

    def test_non_adjacent_pairs_do_not_train(self, unit):
        unit.lookup(line(10))
        unit.lookup(line(12))  # stride 2: not detected
        assert unit.stats.allocations == 0


class TestReplacement:
    def test_lru_stream_reallocated(self, unit):
        # Stream A then stream B then stream C: only 2 buffers.
        unit.lookup(line(10)), unit.lookup(line(11))
        unit.lookup(line(100)), unit.lookup(line(101))
        unit.lookup(line(200)), unit.lookup(line(201))
        # Stream A (oldest) was evicted; its next line misses.
        assert unit.lookup(line(12)) is None
        # Stream C survives.
        assert unit.lookup(line(202)) is not None

    def test_buffered_lines_bounded(self, unit):
        unit.lookup(line(10))
        unit.lookup(line(11))
        assert unit.buffered_lines() <= 2 * 4


class TestAccounting:
    def test_prefetch_occupancy_tracked(self, unit):
        unit.lookup(line(10))
        unit.lookup(line(11))
        assert unit.stats.prefetches >= 4
        assert unit.stats.prefetch_mmc_cycles > 0

    def test_hit_cycles_cheap(self, unit):
        unit.lookup(line(10))
        unit.lookup(line(11))
        cost = unit.lookup(line(12))
        assert cost == unit.config.hit_cycles

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            StreamBufferUnit(
                StreamBufferConfig(enabled=True, buffers=0), Dram()
            )


class TestMmcIntegration:
    def test_fill_uses_buffer(self, memory_map):
        import dataclasses
        from repro.mem.mmc import MemoryController
        dram = Dram()
        unit = StreamBufferUnit(
            StreamBufferConfig(enabled=True), dram
        )
        mmc = MemoryController(memory_map, dram, stream_buffers=unit)
        base = 0x10_0000
        costs = [
            mmc.cache_fill(base + n * CACHE_LINE_SIZE, False).cpu_cycles
            for n in range(8)
        ]
        # Once the stream is detected, fills get cheaper than the
        # initial DRAM-latency fills.
        assert min(costs[3:]) < costs[0]
        assert unit.stats.hits > 0

    def test_shadow_stream_detected_after_retranslation(self, mtlb_system):
        """Streams are detected on *real* addresses: a sequential shadow
        stream whose base pages are scattered still splits per page, but
        within one page it prefetches."""
        system = mtlb_system
        # Directly exercise the MMC: map one shadow page.
        system.kernel  # built; use mmc directly via table
        # (covered more fully by the A5 bench; here just check wiring)
        assert system.mmc.stream_buffers is None  # disabled by default
