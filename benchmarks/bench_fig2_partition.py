"""E1 — Figure 2: the 512 MB shadow-space bucket partition.

Reconstructs the paper's table from the live bucket allocator and checks
every row plus the 512 MB total.
"""

from repro.bench import run_fig2


def test_fig2_partition(benchmark):
    report, errors = benchmark.pedantic(run_fig2, rounds=3, iterations=1)
    print()
    print(report)
    assert errors == [], "\n".join(errors)
