"""Unit tests for the online superpage promotion engine."""

import pytest

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.os_model.promotion import PromotionConfig, PromotionEngine
from repro.sim.config import paper_promotion
from repro.sim.system import System

REGION = 0x0200_0000
SIZE = 64 << 10  # 16 pages


@pytest.fixture
def machine():
    system = System(paper_promotion(96, misses_per_page=1.0))
    process = system.kernel.create_process("promo")
    return system, process


class TestRegistration:
    def test_regions_registered_at_map(self, machine):
        system, process = machine
        system.kernel.sys_map(process, REGION, SIZE)
        assert system.kernel.promotion.stats.candidates >= 1

    def test_small_regions_ignored(self, machine):
        system, process = machine
        before = system.kernel.promotion.stats.candidates
        system.kernel.sys_map(process, 0x0900_0000, BASE_PAGE_SIZE)
        assert system.kernel.promotion.stats.candidates == before

    def test_disabled_engine_registers_nothing(self, mtlb_system):
        process = mtlb_system.kernel.create_process("off")
        mtlb_system.kernel.sys_map(process, REGION, SIZE)
        assert mtlb_system.kernel.promotion.stats.candidates == 0

    def test_manual_remap_forgets_candidate(self, machine):
        system, process = machine
        system.kernel.sys_map(process, REGION, SIZE)
        system.kernel.sys_remap(process, REGION, SIZE)
        # Misses on the (now superpage) region never promote again.
        promo = system.kernel.promotion
        assert promo.note_miss(REGION) == 0


class TestThreshold:
    def test_promotes_after_threshold(self, machine):
        system, process = machine
        system.kernel.sys_map(process, REGION, SIZE)
        promo = system.kernel.promotion
        threshold = int(1.0 * (SIZE >> 12))
        cycles = 0
        for i in range(threshold):
            cycles = promo.note_miss(REGION + (i % 16) * 4096)
        assert cycles > 0
        assert promo.stats.promotions == 1
        assert process.page_table.lookup(REGION).is_superpage

    def test_below_threshold_no_promotion(self, machine):
        system, process = machine
        system.kernel.sys_map(process, REGION, SIZE)
        promo = system.kernel.promotion
        for _ in range(int(1.0 * (SIZE >> 12)) - 1):
            assert promo.note_miss(REGION) == 0
        assert promo.stats.promotions == 0

    def test_threshold_scales_with_region_size(self):
        system = System(paper_promotion(96, misses_per_page=2.0))
        process = system.kernel.create_process("p")
        system.kernel.sys_map(process, REGION, 16 << 10)  # 4 pages
        promo = system.kernel.promotion
        for _ in range(7):
            promo.note_miss(REGION)
        assert promo.stats.promotions == 0
        promo.note_miss(REGION)
        assert promo.stats.promotions == 1

    def test_misses_outside_candidates_ignored(self, machine):
        system, process = machine
        assert system.kernel.promotion.note_miss(0x0F00_0000) == 0


class TestEndToEnd:
    def test_promotion_approaches_static_runtime(self):
        from repro.workloads import build_workload
        from repro.sim.config import paper_mtlb, paper_no_mtlb
        trace = build_workload("compress95", scale=0.05)
        none = System(paper_no_mtlb(96)).run(trace).total_cycles
        static = System(paper_mtlb(96)).run(trace).total_cycles
        system = System(paper_promotion(96, misses_per_page=1.0))
        online = system.run(trace).total_cycles
        assert system.kernel.promotion.stats.promotions >= 1
        # Online promotion lands between (or beats) the two extremes.
        assert online <= max(none, static) * 1.02

    def test_promotion_cycles_accounted(self):
        from repro.workloads import build_workload
        trace = build_workload("compress95", scale=0.05)
        system = System(paper_promotion(96, misses_per_page=1.0))
        result = system.run(trace)
        assert system.kernel.promotion.stats.promotion_cycles > 0
        result.stats.check_consistency()
