"""Smoke tests for the benchmark harness (tiny inputs).

The full harness runs under ``pytest benchmarks/ --benchmark-only``;
these tests only check that its plumbing — scales, trace caching (with
corruption detection), checkpoint/resume, matrix running, report
rendering — works.
"""

import json

import pytest

from repro.bench import BenchContext, run_fig2, run_allocator_ablation
from repro.bench.figure3 import render_report
from repro.errors import (
    PoisonedScenario,
    ReferenceBudgetExceeded,
    TraceCacheCorrupt,
)
from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.results import ResultMatrix
from repro.trace.io import load_trace


@pytest.fixture
def tiny_ctx(tmp_path):
    return BenchContext(
        quick=True,
        scales={name: 0.02 for name in
                ("compress95", "vortex", "radix", "em3d", "gcc")},
        cache_dir=tmp_path,
    )


class TestBenchContext:
    def test_trace_caching_on_disk(self, tiny_ctx, tmp_path):
        first = tiny_ctx.trace("em3d")
        # The columnar store (default since PR 9) replaces per-file
        # .npz caching: entries live under store/<aa>/<address>/.
        from repro.trace.store import TraceStore

        rows = TraceStore(tmp_path / "store").ls()
        assert [r["workload"] for r in rows] == ["em3d"]
        assert not list(tmp_path.glob("em3d_*.npz"))
        # A fresh context reads the cached entry and gets the same stream.
        again = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        ).trace("em3d")
        assert first.total_refs == again.total_refs

    def test_legacy_trace_caching_on_disk(self, tmp_path):
        ctx = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path,
            trace_store=False,
        )
        first = ctx.trace("em3d")
        assert list(tmp_path.glob("em3d_*.npz"))
        again = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path,
            trace_store=False,
        ).trace("em3d")
        assert first.total_refs == again.total_refs

    def test_run_matrix(self, tiny_ctx):
        configs = {
            "tlb96": paper_no_mtlb(96),
            "tlb96+mtlb1282w": paper_mtlb(96),
        }
        matrix = tiny_ctx.run_matrix(["em3d"], configs, "tlb96")
        assert isinstance(matrix, ResultMatrix)
        assert matrix.normalised("em3d", "tlb96") == 1.0
        report = render_report(matrix, ["em3d"], configs.keys())
        assert "em3d" in report

    def test_quick_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        from repro.bench import quick_mode_requested
        assert quick_mode_requested()
        monkeypatch.setenv("REPRO_BENCH_QUICK", "0")
        assert not quick_mode_requested()


class TestTraceCacheIntegrity:
    """Legacy .npz path corruption handling (trace_store=False)."""

    @pytest.fixture
    def legacy_ctx(self, tmp_path):
        return BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path,
            trace_store=False,
        )

    def test_corrupt_cache_detected_and_regenerated(
        self, legacy_ctx, tmp_path
    ):
        reference = legacy_ctx.trace("em3d")
        (path,) = tmp_path.glob("em3d_*.npz")
        path.write_bytes(b"this is not an npz file at all")
        with pytest.raises(TraceCacheCorrupt):
            load_trace(path)
        # The harness treats it as a miss: warn, delete, regenerate.
        fresh_ctx = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path,
            trace_store=False,
        )
        with pytest.warns(RuntimeWarning, match="corrupt"):
            again = fresh_ctx.trace("em3d")
        assert again.total_refs == reference.total_refs
        # The regenerated file is valid once more.
        (path,) = tmp_path.glob("em3d_*.npz")
        assert load_trace(path).total_refs == reference.total_refs

    def test_truncated_cache_detected(self, legacy_ctx, tmp_path):
        legacy_ctx.trace("em3d")
        (path,) = tmp_path.glob("em3d_*.npz")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceCacheCorrupt):
            load_trace(path)


class TestCheckpointResume:
    CONFIGS = staticmethod(
        lambda: {
            "tlb96": paper_no_mtlb(96),
            "tlb96+mtlb1282w": paper_mtlb(96),
        }
    )

    def test_checkpoint_deleted_after_full_run(self, tiny_ctx, tmp_path):
        tiny_ctx.run_matrix(
            ["em3d"], self.CONFIGS(), "tlb96", checkpoint="t1"
        )
        assert not (tmp_path / "checkpoint_t1.json").exists()

    def test_resume_skips_completed_cells(self, tiny_ctx, tmp_path):
        configs = self.CONFIGS()
        full = tiny_ctx.run_matrix(["em3d"], configs, "tlb96")

        # Simulate a crash: kill the matrix after its first cell.
        class Boom(Exception):
            pass

        interrupted = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        )
        real_run = interrupted.run
        calls = []

        def tracked(workload, config):
            calls.append(config.label)
            if len(calls) > 1:
                raise Boom
            return real_run(workload, config)

        interrupted.run = tracked
        with pytest.raises(Boom):
            interrupted.run_matrix(
                ["em3d"], configs, "tlb96", checkpoint="t2"
            )
        ckpt = tmp_path / "checkpoint_t2.json"
        assert ckpt.exists()
        assert list(json.loads(ckpt.read_text())["cells"]) == [
            "em3d|tlb96"
        ]

        # Resume: only the missing cell is re-run.
        resumed_ctx = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        )
        resumed_calls = []
        real_resumed_run = resumed_ctx.run

        def tracked_resume(workload, config):
            resumed_calls.append(config.label)
            return real_resumed_run(workload, config)

        resumed_ctx.run = tracked_resume
        matrix = resumed_ctx.run_matrix(
            ["em3d"], configs, "tlb96", checkpoint="t2"
        )
        assert resumed_calls == ["tlb96+mtlb1282w"]
        assert not ckpt.exists()
        # The resumed matrix matches an uninterrupted run exactly.
        for label in configs:
            assert (
                matrix.get("em3d", label).total_cycles
                == full.get("em3d", label).total_cycles
            )

    def test_mismatched_context_discards_checkpoint(
        self, tiny_ctx, tmp_path
    ):
        ckpt = tmp_path / "checkpoint_t3.json"
        ckpt.write_text(
            json.dumps(
                {
                    "meta": {"version": 1, "quick": False, "seed": 7},
                    "cells": {"em3d|tlb96": {"total_cycles": 1}},
                }
            )
        )
        with pytest.warns(RuntimeWarning, match="different"):
            matrix = tiny_ctx.run_matrix(
                ["em3d"], {"tlb96": paper_no_mtlb(96)}, "tlb96",
                checkpoint="t3",
            )
        # The bogus cell was ignored and the run recomputed honestly.
        assert matrix.get("em3d", "tlb96").total_cycles > 1


class TestParallelMatrix:
    CONFIGS = staticmethod(
        lambda: {
            "tlb96": paper_no_mtlb(96),
            "tlb96+mtlb1282w": paper_mtlb(96),
        }
    )

    def test_parallel_matches_serial(self, tmp_path):
        configs = self.CONFIGS()
        serial = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        ).run_matrix(["em3d"], configs, "tlb96")
        parallel = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path,
            jobs=2,
        ).run_matrix(["em3d"], configs, "tlb96")
        for label in configs:
            import dataclasses as dc
            assert dc.asdict(parallel.get("em3d", label)) == dc.asdict(
                serial.get("em3d", label)
            )

    def test_parallel_resumes_from_serial_checkpoint(self, tmp_path):
        """A checkpoint written by a serial run is a valid merge point
        for a parallel one (and vice versa): the fingerprint ignores
        jobs and engine, which never change results."""
        configs = self.CONFIGS()
        ctx = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        )
        full = ctx.run_matrix(["em3d"], configs, "tlb96")

        class Boom(Exception):
            pass

        interrupted = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path
        )
        real_run = interrupted.run
        calls = []

        def tracked(workload, config):
            calls.append(config.label)
            if len(calls) > 1:
                raise Boom
            return real_run(workload, config)

        interrupted.run = tracked
        with pytest.raises(Boom):
            interrupted.run_matrix(
                ["em3d"], configs, "tlb96", checkpoint="p1"
            )
        assert (tmp_path / "checkpoint_p1.json").exists()

        resumed = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path,
            jobs=2,
        ).run_matrix(["em3d"], configs, "tlb96", checkpoint="p1")
        assert not (tmp_path / "checkpoint_p1.json").exists()
        for label in configs:
            assert (
                resumed.get("em3d", label).total_cycles
                == full.get("em3d", label).total_cycles
            )

    def test_worker_failure_keeps_completed_cells(self, tmp_path):
        """A cell that dies in a worker still leaves every completed
        cell checkpointed, so the rerun resumes instead of restarting."""
        ctx = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path,
            jobs=2, max_references=10,
        )
        # No cell can complete under a 10-reference budget: the
        # supervised pool retries the deterministic failure up to the
        # poison threshold, then quarantines the cell and surfaces a
        # PoisonedScenario naming the worker's real exception (not a
        # pickling artifact), leaving the trace cache warm.
        with pytest.raises(
            PoisonedScenario, match="ReferenceBudgetExceeded"
        ):
            ctx.run_matrix(
                ["em3d"], self.CONFIGS(), "tlb96", checkpoint="p2"
            )
        from repro.trace.store import TraceStore

        assert any(
            row.get("workload") == "em3d"
            for row in TraceStore(tmp_path / "store").ls()
        )


class TestReferenceBudget:
    def test_budget_exceeded_raises(self, tmp_path):
        ctx = BenchContext(
            quick=True, scales={"em3d": 0.02}, cache_dir=tmp_path,
            max_references=10,
        )
        with pytest.raises(ReferenceBudgetExceeded):
            ctx.run("em3d", paper_no_mtlb(96))

    def test_no_budget_by_default(self, tiny_ctx):
        result = tiny_ctx.run("em3d", paper_no_mtlb(96))
        assert result.stats.references > 10


class TestStaticBenches:
    def test_fig2(self):
        report, errors = run_fig2()
        assert errors == []
        assert "16384KB" in report

    def test_allocator_ablation(self):
        result = run_allocator_ablation(requests=800)
        assert result.shape_errors == []
