"""The simulated operating system (MiniKernel) and its VM subsystem.

* :mod:`repro.os_model.frames` — physical frame allocation with
  fragmentation injection;
* :mod:`repro.os_model.page_table` — per-process OS page tables with
  mixed base-page / superpage mappings;
* :mod:`repro.os_model.hpt` — the hashed page table probed by the
  software TLB miss handler;
* :mod:`repro.os_model.vm` — region mapping and the shadow-superpage
  remap choreography (flush, shootdown, MMC programming);
* :mod:`repro.os_model.syscalls` — ``remap()`` and the modified
  ``sbrk()``;
* :mod:`repro.os_model.paging` — per-base-page CLOCK paging of shadow
  superpages;
* :mod:`repro.os_model.kernel` — the MiniKernel facade.

(The package is named ``os_model`` rather than ``os`` to avoid shadowing
the standard library.)
"""

from .frames import FrameAllocator, FrameStats, OutOfMemory, frames_for_bytes
from .hpt import HashedPageTable, HptStats
from .kernel import KernelCosts, KernelLayout, KernelStats, MiniKernel
from .page_table import Mapping, MappingError, PageTable
from .paging import BackingStore, Pager, PagingCosts, PagingStats
from .process import Process, Segment
from .syscalls import SbrkAllocator, SbrkStats
from .vm import (
    RemapReport,
    ShadowSuperpage,
    VmCosts,
    VmSubsystem,
)

__all__ = [
    "FrameAllocator",
    "FrameStats",
    "OutOfMemory",
    "frames_for_bytes",
    "HashedPageTable",
    "HptStats",
    "KernelCosts",
    "KernelLayout",
    "KernelStats",
    "MiniKernel",
    "Mapping",
    "MappingError",
    "PageTable",
    "BackingStore",
    "Pager",
    "PagingCosts",
    "PagingStats",
    "Process",
    "Segment",
    "SbrkAllocator",
    "SbrkStats",
    "RemapReport",
    "ShadowSuperpage",
    "VmCosts",
    "VmSubsystem",
]
