"""Property tests pinning hardware models to trivial reference models.

Each structure is exercised with a random operation stream and compared
against the simplest possible Python model of the same semantics — the
dict/set formulations a reviewer can verify by eye.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addrspace import PhysicalMemoryMap
from repro.core.mtlb import Mtlb, MtlbFault
from repro.core.shadow_table import ShadowPageTable
from repro.os_model.page_table import PageTable
from repro.os_model.hpt import HashedPageTable


# --------------------------------------------------------------------- #
# MTLB vs reference: translation results always match the table
# --------------------------------------------------------------------- #

mtlb_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=300),  # shadow index
        st.booleans(),  # write?
        st.sampled_from(["access", "remap", "invalidate", "purge"]),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=40, deadline=None)
@given(mtlb_ops, st.sampled_from([(16, 2), (32, 4), (64, 0)]))
def test_mtlb_translations_match_table(ops, geometry):
    """No matter the interleaving of accesses, OS remaps, invalidations
    and purges, a successful MTLB access returns exactly the PFN the
    table held at the *last purge-visible update* — and after a purge,
    exactly the current table contents."""
    entries, assoc = geometry
    memory_map = PhysicalMemoryMap()
    table = ShadowPageTable(memory_map, table_base=0)
    mtlb = Mtlb(table, entries=entries, associativity=assoc)

    authoritative = {}  # shadow index -> (pfn, valid) in the table
    visible = {}  # what a cached MTLB copy may legitimately return

    next_pfn = 1
    for index, is_write, op in ops:
        if op == "remap":
            authoritative[index] = (next_pfn, True)
            table.set_mapping(index, next_pfn)
            mtlb.purge(index)  # the OS control write purges
            visible.pop(index, None)
            next_pfn += 1
        elif op == "invalidate":
            pfn = authoritative.get(index, (0, False))[0]
            authoritative[index] = (pfn, False)
            table.invalidate(index)
            mtlb.purge(index)
            visible.pop(index, None)
        elif op == "purge":
            mtlb.purge(index)
            visible.pop(index, None)
        else:  # access
            expected_pfn, expected_valid = authoritative.get(
                index, (0, False)
            )
            cached = visible.get(index)
            try:
                pfn, _filled = mtlb.access(index, is_write)
                ok = True
            except MtlbFault:
                ok = False
            if cached is not None:
                # A cached copy may serve stale data only if never
                # purged since; our protocol always purges on updates,
                # so cached == authoritative here.
                assert cached == (pfn if ok else None)
            if ok:
                assert pfn == expected_pfn
                assert expected_valid
                visible[index] = pfn
            else:
                assert not expected_valid
                # a faulting fill still caches the invalid way; record
                visible[index] = None


# --------------------------------------------------------------------- #
# HPT vs reference: probe always finds what a dict would
# --------------------------------------------------------------------- #

hpt_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # space
        st.integers(min_value=0, max_value=400),  # vpn
        st.sampled_from(["map", "probe", "purge"]),
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=40, deadline=None)
@given(hpt_ops)
def test_hpt_matches_dict_model(ops):
    page_tables = {s: PageTable() for s in range(3)}
    hpt = HashedPageTable(base_paddr=0x10_0000, buckets=64,
                          overflow_entries=512)
    reference = {}  # (space, vpn) -> pbase

    for space, vpn, op in ops:
        hpt.current_space = space
        if op == "map":
            if (space, vpn) in reference:
                continue
            pfn = (space + 1) * 1000 + vpn
            mapping = page_tables[space].map_base_page(vpn << 12, pfn)
            hpt.preload(vpn, mapping, space=space)
            reference[(space, vpn)] = pfn << 12
        elif op == "purge":
            hpt.purge_vpn(vpn, space=space)
            reference.pop((space, vpn), None)
        else:  # probe
            found, touched = hpt.probe(vpn)
            assert touched, "every probe loads at least the chain head"
            expected = reference.get((space, vpn))
            if expected is None:
                assert found is None
            else:
                assert found is not None
                assert found.pbase == expected
