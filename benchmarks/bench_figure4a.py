"""E3 — Figure 4(A): em3d runtime vs MTLB size and associativity.

128-entry CPU TLB throughout.  Checks the paper's findings: the default
128-entry 2-way MTLB runs within a couple of percent of (slightly behind)
the no-MTLB system, growing or widening the MTLB closes the gap, and
returns diminish quickly.
"""

from conftest import figure4_result


def test_figure4a(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: figure4_result(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report_a)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
