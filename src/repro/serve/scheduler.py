"""Sharded async sweep scheduler: batches of scenarios, deduped and cached.

The scheduler is the scenario service's execution core (DESIGN.md §12).
One sweep moves through four stages:

1. **validate** — every spec is checked up front
   (:func:`repro.api.validate_spec`), so a bad ``--jobs``/``--engine``
   combination fails fast in the submitting process, never inside a
   worker;
2. **dedupe** — each spec is fingerprinted
   (:mod:`repro.serve.fingerprint`); store hits are served immediately,
   and duplicate fingerprints *within* the batch collapse onto one
   pending execution (submitted twice, simulated once);
3. **shard** — the remaining unique scenarios are round-robin sharded
   across a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each
   shard runs its scenarios serially with **per-scenario crash
   isolation**: a scenario that raises is reported as a picklable
   exception record while the rest of the shard keeps going, so one
   pathological cell never voids a shard's completed work;
4. **commit** — completed scenarios are written to the content-addressed
   store and streamed to the caller's ``on_result`` callback as they
   arrive (partial-progress commits: a killed sweep resumes as store
   cache hits).

The front is ``asyncio`` (``await submit(...)`` / ``await gather(...)``)
so a service embedding the scheduler can overlap sweeps; the synchronous
:meth:`SweepScheduler.sweep` wrapper drives one batch to completion.
With ``jobs <= 1`` scenarios run serially in-process, in submission
order — the path ``BenchContext.run_matrix`` uses for checkpointed
serial matrices.

Everything the scheduler observes is exported through
:class:`~repro.obs.MetricsRegistry` instruments: submitted / store-hit /
deduped / simulated / failed counters, a live queue-depth gauge, and a
shard wall-time histogram.
"""

from __future__ import annotations

import asyncio
import dataclasses
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..api import RunReport, ScenarioSpec, validate_spec
from ..bench.runner import BenchContext
from ..obs import MetricsRegistry
from ..sim.multiprog import run_job_mix
from ..sim.results import RunResult
from ..sim.stats import RunStats
from .fingerprint import canonical_scenario, scenario_fingerprint
from .store import ResultStore

__all__ = [
    "SweepScheduler",
    "SweepTicket",
    "execute_spec",
    "spec_fingerprint",
    "spec_scale",
]

#: Shard wall-time histogram edges, in seconds.
SHARD_WALL_EDGES = (0.1, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0, 300.0)


# ====================================================================== #
# Spec execution (shared by the serial path, the workers, and Session)
# ====================================================================== #


def spec_scale(spec: ScenarioSpec, context: BenchContext):
    """The spec's resolved input scale: one float, or one per mix
    member (the shape :func:`~repro.serve.fingerprint.
    canonical_scenario` expects)."""
    if spec.is_mix:
        return [
            spec.scale if spec.scale is not None else context.scale_of(w)
            for w in spec.workloads
        ]
    return (
        spec.scale if spec.scale is not None
        else context.scale_of(spec.workload)
    )


def spec_fingerprint(
    spec: ScenarioSpec, context: BenchContext
) -> Optional[str]:
    """The spec's store address, or None when it must not be cached.

    Observability runs carry artifacts (event logs, attribution) that
    the store does not hold, and sanitize runs exist to *execute* the
    invariant audits — serving either from the store would silently
    skip what the user asked for, so both always simulate.
    """
    config = spec.config
    if config.obs.enabled:
        return None
    if config.sanitize or context.sanitize:
        return None
    if spec.is_mix:
        return scenario_fingerprint(
            spec.workload, config, spec_scale(spec, context), spec.seed,
            quantum_refs=spec.quantum_refs,
            switch_cost=spec.switch_cost,
        )
    return scenario_fingerprint(
        spec.workload, config, spec_scale(spec, context), spec.seed
    )


def _apply_scales(context: BenchContext, spec: ScenarioSpec) -> None:
    """Pin the context's scales to the spec's explicit override.

    The context's in-memory trace cache is keyed by workload name only,
    so a changed scale must also drop the stale cached trace.
    """
    if spec.scale is None:
        return
    for name in spec.workloads:
        if context.scales.get(name) != spec.scale:
            context.scales[name] = spec.scale
            context._traces.pop(name, None)


def execute_spec(context: BenchContext, spec: ScenarioSpec) -> RunResult:
    """Simulate one spec on *context*; the single execution funnel.

    Single workloads go through :meth:`BenchContext.run` (which applies
    the context's engine/sanitize overrides and the reference budget);
    mixes build a :class:`~repro.sim.multiprog.MultiProgram` over the
    context's cached traces with the same overrides applied.
    """
    _apply_scales(context, spec)
    saved_budget = context.max_references
    if spec.max_references is not None:
        context.max_references = spec.max_references
    try:
        config = spec.resolved_config()
        if not spec.is_mix:
            return context.run(spec.workload, config)
        if context.engine is not None and config.engine != context.engine:
            config = dataclasses.replace(config, engine=context.engine)
        if context.sanitize and not config.sanitize:
            config = dataclasses.replace(config, sanitize=True)
        traces = [context.trace(name) for name in spec.workloads]
        multi = run_job_mix(
            config,
            traces,
            quantum_refs=spec.quantum_refs,
            switch_cost=spec.switch_cost,
        )
        return multi.result
    finally:
        context.max_references = saved_budget


def _picklable(exc: BaseException) -> BaseException:
    """The exception itself if it survives pickling, else a summary.

    The repo's typed errors define ``__reduce__`` and round-trip; this
    guards third-party/ad-hoc exceptions so a shard's *other* results
    are never lost to one unpicklable failure object.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _shard_task(ctx_kwargs: dict, payload: List[tuple]):
    """Worker-process entry: run one shard's scenarios serially.

    Module-level (picklable) for every multiprocessing start method.
    *payload* is ``[(index, spec), ...]``; returns ``(outcomes,
    wall_seconds)`` where each outcome is ``(index, stats_dict,
    metrics, error)`` — per-scenario crash isolation means an error
    outcome never aborts the shard's remaining scenarios.
    """
    start = time.perf_counter()
    context = BenchContext(**ctx_kwargs)
    outcomes = []
    for index, spec in payload:
        try:
            result = execute_spec(context, spec)
            outcomes.append(
                (
                    index,
                    dataclasses.asdict(result.stats),
                    result.metrics,
                    None,
                )
            )
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            outcomes.append((index, None, None, _picklable(exc)))
    return outcomes, time.perf_counter() - start


# ====================================================================== #
# The scheduler
# ====================================================================== #


@dataclass
class _Entry:
    """One submitted spec's lifecycle inside a ticket."""

    index: int
    spec: ScenarioSpec
    fingerprint: Optional[str]
    report: Optional[RunReport] = None
    error: Optional[BaseException] = None
    #: The entry this one deduplicated onto (same fingerprint, earlier
    #: in the batch); resolved at assembly time.
    primary: Optional["_Entry"] = None


@dataclass
class SweepTicket:
    """Handle for one submitted batch, consumed by ``gather``."""

    entries: List[_Entry]
    #: Entries that need simulation, in submission order.
    to_run: List[_Entry] = field(default_factory=list)
    #: Pool-mode shard tasks (awaitables) and their entry groups.
    tasks: List[object] = field(default_factory=list)
    shards: List[List[_Entry]] = field(default_factory=list)
    executor: Optional[object] = None
    on_result: Optional[Callable[[int, RunReport], None]] = None
    gathered: bool = False


class SweepScheduler:
    """Sharded, store-deduplicating scenario scheduler (DESIGN.md §12)."""

    def __init__(
        self,
        context: Optional[BenchContext] = None,
        store: Optional[ResultStore] = None,
        jobs: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        progress_cb: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.context = context if context is not None else BenchContext()
        self.store = store
        self.jobs = jobs if jobs is not None else (self.context.jobs or 1)
        self.registry = registry or MetricsRegistry()
        self.progress_cb = progress_cb
        reg = self.registry
        self.submitted = reg.counter("serve.submitted")
        self.store_hits = reg.counter("serve.store_hits")
        self.deduped = reg.counter("serve.deduped")
        self.simulated = reg.counter("serve.simulated")
        self.failed = reg.counter("serve.failed")
        self.queue_depth = reg.gauge("serve.queue_depth")
        self.shard_wall = reg.histogram(
            "serve.shard_wall_seconds", SHARD_WALL_EDGES
        )

    # -- helpers --------------------------------------------------------- #

    def _log(self, message: str) -> None:
        if self.progress_cb is not None:
            self.progress_cb(message)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted scenarios served without simulating."""
        total = self.submitted.value
        if not total:
            return 0.0
        return (self.store_hits.value + self.deduped.value) / total

    def _ctx_kwargs(self) -> dict:
        ctx = self.context
        return {
            "quick": ctx.quick,
            "scales": ctx.scales,
            "cache_dir": ctx.cache_dir,
            "seed": ctx.seed,
            "max_references": ctx.max_references,
            "engine": ctx.engine,
            "sanitize": ctx.sanitize,
        }

    def _commit(self, entry: _Entry, ticket: SweepTicket) -> None:
        """Persist + stream one completed entry."""
        report = entry.report
        if (
            self.store is not None
            and entry.fingerprint is not None
            and report is not None
            and report.stats is not None
            and not report.cache_hit
        ):
            spec = entry.spec
            scale = spec_scale(spec, self.context)
            self.store.put(
                entry.fingerprint,
                workload="+".join(spec.workloads),
                config_label=spec.config.label,
                stats=report.stats,
                metrics=report.metrics,
                meta={
                    "seed": spec.seed,
                    "quick": self.context.quick,
                    "scale": scale,
                },
                scenario=canonical_scenario(
                    spec.workload,
                    spec.config,
                    scale,
                    spec.seed,
                    quantum_refs=(
                        spec.quantum_refs if spec.is_mix else None
                    ),
                    switch_cost=(
                        spec.switch_cost if spec.is_mix else None
                    ),
                ),
            )
        if ticket.on_result is not None and report is not None:
            ticket.on_result(entry.index, report)

    # -- async surface --------------------------------------------------- #

    async def submit(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]] = None,
    ) -> SweepTicket:
        """Validate, dedupe, and launch a batch; returns its ticket.

        Store hits are resolved (and streamed to *on_result*)
        immediately; with ``jobs > 1`` shard workers start right away,
        otherwise execution happens during ``gather``.
        """
        specs = list(specs)
        for spec in specs:  # fail fast, before any work starts
            validate_spec(spec)
        entries: List[_Entry] = []
        pending: Dict[str, _Entry] = {}
        ticket = SweepTicket(entries=entries, on_result=on_result)
        for index, spec in enumerate(specs):
            self.submitted.inc()
            fingerprint = spec_fingerprint(spec, self.context)
            entry = _Entry(index, spec, fingerprint)
            entries.append(entry)
            if fingerprint is not None and self.store is not None:
                record = self.store.get(fingerprint)
                if record is not None:
                    entry.report = RunReport(
                        spec=spec,
                        stats=record.run_stats(),
                        fingerprint=fingerprint,
                        cache_hit=True,
                        metrics=record.metrics,
                    )
                    self.store_hits.inc()
                    self._log(f"  store hit: {spec.label}")
                    self._commit(entry, ticket)
                    continue
            if fingerprint is not None and fingerprint in pending:
                entry.primary = pending[fingerprint]
                self.deduped.inc()
                continue
            if fingerprint is not None:
                pending[fingerprint] = entry
            ticket.to_run.append(entry)
        self.queue_depth.set(len(ticket.to_run))
        if not ticket.to_run:
            return ticket

        jobs = max(1, self.jobs)
        if jobs > 1 and len(ticket.to_run) > 1:
            # Pre-warm the on-disk trace cache in the parent so N
            # workers never race to generate the same trace.
            for entry in ticket.to_run:
                _apply_scales(self.context, entry.spec)
            for name in dict.fromkeys(
                name
                for entry in ticket.to_run
                for name in entry.spec.workloads
            ):
                self.context.trace(name)
            import concurrent.futures

            workers = min(jobs, len(ticket.to_run))
            ticket.shards = [[] for _ in range(workers)]
            for position, entry in enumerate(ticket.to_run):
                ticket.shards[position % workers].append(entry)
            ticket.executor = concurrent.futures.ProcessPoolExecutor(
                workers
            )
            loop = asyncio.get_running_loop()
            ctx_kwargs = self._ctx_kwargs()
            self._log(
                f"  running {len(ticket.to_run)} scenario(s) on "
                f"{workers} shard(s)..."
            )
            for shard in ticket.shards:
                payload = [(e.index, e.spec) for e in shard]
                ticket.tasks.append(
                    loop.run_in_executor(
                        ticket.executor, _shard_task, ctx_kwargs, payload
                    )
                )
        return ticket

    async def gather(
        self, ticket: SweepTicket, raise_errors: bool = True
    ) -> List[RunReport]:
        """Drive a ticket to completion; reports in submission order.

        With *raise_errors* (the default) the first failed scenario's
        original exception is re-raised — after every completed
        scenario has been committed, so a rerun resumes from the store.
        Otherwise failures surface as ``RunReport.error`` entries.
        """
        if ticket.gathered:
            raise RuntimeError("ticket was already gathered")
        ticket.gathered = True
        if ticket.tasks:
            await self._gather_pool(ticket, raise_errors)
        else:
            self._run_serial(ticket, raise_errors)
        self.queue_depth.set(0)
        # Resolve dedupe references and assemble in submission order.
        reports: List[RunReport] = []
        first_error: Optional[BaseException] = None
        for entry in ticket.entries:
            if entry.primary is not None:
                primary = entry.primary
                if primary.report is not None:
                    entry.report = dataclasses.replace(
                        primary.report, spec=entry.spec, cache_hit=True
                    )
                else:
                    entry.error = primary.error
                self._commit(entry, ticket)
            if entry.report is None:
                error = entry.error or RuntimeError(
                    "scenario was never executed"
                )
                if first_error is None:
                    first_error = error
                entry.report = RunReport(
                    spec=entry.spec,
                    stats=None,
                    fingerprint=entry.fingerprint,
                    error=error,
                )
            reports.append(entry.report)
        if raise_errors and first_error is not None:
            raise first_error
        return reports

    def _run_serial(
        self, ticket: SweepTicket, raise_errors: bool
    ) -> None:
        """In-process execution, submission order, commit-per-scenario."""
        remaining = len(ticket.to_run)
        for entry in ticket.to_run:
            spec = entry.spec
            self._log(f"  running {spec.label}...")
            start = time.perf_counter()
            try:
                result = execute_spec(self.context, spec)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                self.failed.inc()
                entry.error = exc
                if raise_errors:
                    self.queue_depth.set(0)
                    raise
                remaining -= 1
                self.queue_depth.set(remaining)
                continue
            entry.report = RunReport(
                spec=spec,
                stats=result.stats,
                fingerprint=entry.fingerprint,
                cache_hit=False,
                metrics=result.metrics,
                wall_seconds=time.perf_counter() - start,
            )
            self.simulated.inc()
            remaining -= 1
            self.queue_depth.set(remaining)
            self._commit(entry, ticket)

    async def _gather_pool(
        self, ticket: SweepTicket, raise_errors: bool
    ) -> None:
        """Await every shard; commit outcomes as shards complete."""
        by_index = {e.index: e for e in ticket.to_run}
        remaining = len(ticket.to_run)
        pool_error: Optional[BaseException] = None
        try:
            for task in asyncio.as_completed(ticket.tasks):
                try:
                    outcomes, wall = await task
                except Exception as exc:  # noqa: BLE001 - pool death
                    # The pool itself broke (a worker was OOM-killed,
                    # say); keep draining the remaining tasks so their
                    # exceptions are retrieved, then fail what's left.
                    pool_error = exc
                    continue
                self.shard_wall.observe(wall)
                for index, stats, metrics, error in outcomes:
                    entry = by_index[index]
                    if error is not None:
                        entry.error = error
                        self.failed.inc()
                    else:
                        entry.report = RunReport(
                            spec=entry.spec,
                            stats=RunStats(**stats),
                            fingerprint=entry.fingerprint,
                            cache_hit=False,
                            metrics=metrics,
                        )
                        self.simulated.inc()
                        self._commit(entry, ticket)
                        self._log(f"  finished {entry.spec.label}")
                    remaining -= 1
                    self.queue_depth.set(remaining)
        finally:
            if ticket.executor is not None:
                ticket.executor.shutdown(wait=True)
        if pool_error is not None:
            for entry in ticket.to_run:
                if entry.report is None and entry.error is None:
                    entry.error = pool_error
                    self.failed.inc()

    # -- sync wrapper ----------------------------------------------------- #

    def sweep(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]] = None,
        raise_errors: bool = True,
    ) -> List[RunReport]:
        """Submit + gather one batch synchronously."""

        async def _run() -> List[RunReport]:
            ticket = await self.submit(specs, on_result=on_result)
            return await self.gather(ticket, raise_errors=raise_errors)

        return asyncio.run(_run())
