"""Unit tests for the per-process OS page tables."""

import pytest

from repro.os_model.page_table import Mapping, MappingError, PageTable


@pytest.fixture
def table():
    return PageTable()


class TestMappingRecord:
    def test_translate(self):
        mapping = Mapping(vbase=0x4000, pbase=0x8024_0000, size=16 << 10)
        assert mapping.translate(0x4080) == 0x8024_0080
        assert mapping.vend == 0x8000
        assert mapping.is_superpage

    def test_alignment_enforced(self):
        with pytest.raises(MappingError):
            Mapping(vbase=0x1000, pbase=0, size=16 << 10)

    def test_size_must_be_legal(self):
        with pytest.raises(MappingError):
            Mapping(vbase=0, pbase=0, size=8192)


class TestBasePages:
    def test_map_translate(self, table):
        table.map_base_page(0x5000, pfn=9)
        assert table.translate(0x5123) == 9 * 4096 + 0x123

    def test_double_map_rejected(self, table):
        table.map_base_page(0x5000, pfn=9)
        with pytest.raises(MappingError):
            table.map_base_page(0x5000, pfn=10)

    def test_unmapped_translate_raises(self, table):
        with pytest.raises(MappingError):
            table.translate(0x5000)
        assert table.lookup(0x5000) is None

    def test_misaligned_rejected(self, table):
        with pytest.raises(MappingError):
            table.map_base_page(0x5001, pfn=1)


class TestSuperpages:
    def test_map_covers_all_base_vpns(self, table):
        table.map_superpage(0x10_0000, 0x8000_0000, 64 << 10)
        for offset in range(0, 64 << 10, 4096):
            assert table.translate(0x10_0000 + offset) == 0x8000_0000 + offset

    def test_overlap_with_base_page_rejected(self, table):
        table.map_base_page(0x10_2000, pfn=1)
        with pytest.raises(MappingError):
            table.map_superpage(0x10_0000, 0x8000_0000, 64 << 10)
        # And the failed attempt left nothing behind.
        assert table.lookup(0x10_0000) is None

    def test_base_page_api_rejected_for_superpage(self, table):
        with pytest.raises(MappingError):
            table.map_superpage(0x10_0000, 0x8000_0000, 4096)

    def test_superpages_listing(self, table):
        table.map_superpage(0x10_0000, 0x8000_0000, 16 << 10)
        table.map_base_page(0x5000, pfn=2)
        supers = table.superpages()
        assert len(supers) == 1 and supers[0].vbase == 0x10_0000


class TestUnmap:
    def test_unmap_base_range(self, table):
        for i in range(4):
            table.map_base_page(0x5000 + i * 4096, pfn=i)
        removed = table.unmap_range(0x5000, 2 * 4096)
        assert len(removed) == 2
        assert table.lookup(0x5000) is None
        assert table.lookup(0x7000) is not None

    def test_unmap_whole_superpage(self, table):
        table.map_superpage(0x10_0000, 0x8000_0000, 16 << 10)
        removed = table.unmap_range(0x10_0000, 16 << 10)
        assert len(removed) == 1
        assert table.lookup(0x10_0000) is None

    def test_straddling_superpage_rejected(self, table):
        table.map_superpage(0x10_0000, 0x8000_0000, 16 << 10)
        with pytest.raises(MappingError):
            table.unmap_range(0x10_0000, 8 << 10)

    def test_unmap_alignment_checked(self, table):
        with pytest.raises(MappingError):
            table.unmap_range(0x5001, 4096)


class TestIteration:
    def test_mappings_distinct_and_sorted(self, table):
        table.map_superpage(0x20_0000, 0x8000_0000, 16 << 10)
        table.map_base_page(0x5000, pfn=1)
        mappings = list(table.mappings())
        assert [m.vbase for m in mappings] == [0x5000, 0x20_0000]

    def test_mapped_bytes(self, table):
        table.map_base_page(0x5000, pfn=1)
        table.map_superpage(0x20_0000, 0x8000_0000, 16 << 10)
        assert table.mapped_bytes == 4096 + (16 << 10)
