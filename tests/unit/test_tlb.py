"""Unit and property tests for the CPU TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.cpu.tlb import Tlb, TlbEntry


def base_entry(vpn: int, pfn: int = None) -> TlbEntry:
    pfn = vpn if pfn is None else pfn
    return TlbEntry(
        vbase=vpn * BASE_PAGE_SIZE,
        pbase=pfn * BASE_PAGE_SIZE,
        size=BASE_PAGE_SIZE,
    )


class TestLookup:
    def test_hit_translates(self):
        tlb = Tlb(4)
        tlb.insert(base_entry(5, 9))
        entry = tlb.lookup(5 * 4096 + 0x123)
        assert entry is not None
        assert entry.translate(5 * 4096 + 0x123) == 9 * 4096 + 0x123

    def test_miss_returns_none(self):
        tlb = Tlb(4)
        assert tlb.lookup(0x1234) is None
        assert tlb.stats.misses == 1

    def test_superpage_hit_any_offset(self):
        tlb = Tlb(4)
        tlb.insert(
            TlbEntry(vbase=0x100_0000, pbase=0x8000_0000, size=1 << 20)
        )
        for offset in (0, 4096, (1 << 20) - 8):
            entry = tlb.lookup(0x100_0000 + offset)
            assert entry is not None
            assert entry.translate(0x100_0000 + offset) == 0x8000_0000 + offset
        assert tlb.lookup(0x100_0000 + (1 << 20)) is None

    def test_mixed_sizes_coexist(self):
        tlb = Tlb(4)
        tlb.insert(base_entry(1))
        tlb.insert(TlbEntry(vbase=1 << 24, pbase=0, size=16 << 10))
        assert tlb.lookup(1 * 4096) is not None
        assert tlb.lookup((1 << 24) + 8192) is not None
        assert set(tlb.resident_sizes()) == {4096, 16 << 10}

    def test_probe_has_no_side_effects(self):
        tlb = Tlb(4)
        tlb.insert(base_entry(1))
        before = tlb.stats.lookups
        assert tlb.probe(1 * 4096) is not None
        assert tlb.stats.lookups == before


class TestInsertAndReplace:
    def test_capacity_enforced(self):
        tlb = Tlb(4)
        for vpn in range(10):
            tlb.insert(base_entry(vpn))
        assert tlb.occupancy == 4

    def test_insert_validates_alignment(self):
        tlb = Tlb(4)
        with pytest.raises(ValueError):
            tlb.insert(TlbEntry(vbase=4096, pbase=0, size=16 << 10))
        with pytest.raises(ValueError):
            tlb.insert(TlbEntry(vbase=0, pbase=0, size=8192))

    def test_same_vbase_replaced_in_place(self):
        tlb = Tlb(4)
        tlb.insert(base_entry(1, 10))
        tlb.insert(base_entry(1, 20))
        assert tlb.occupancy == 1
        assert tlb.lookup(4096).pbase == 20 * 4096

    def test_nru_eviction_prefers_cold(self):
        tlb = Tlb(3)
        for vpn in range(3):
            tlb.insert(base_entry(vpn))
        tlb.insert(base_entry(3))  # epoch reset + evict one
        survivors = {e.vbase // 4096 for e in tlb.entries()} - {3}
        cold = min(survivors)
        for vpn in survivors - {cold}:
            tlb.lookup(vpn * 4096)
        tlb.insert(base_entry(4))
        resident = {e.vbase // 4096 for e in tlb.entries()}
        assert cold not in resident

    def test_eviction_returns_victim(self):
        tlb = Tlb(1)
        tlb.insert(base_entry(1))
        victim = tlb.insert(base_entry(2))
        assert victim is not None and victim.vbase == 4096


class TestShootdown:
    def test_single_page(self):
        tlb = Tlb(4)
        tlb.insert(base_entry(1))
        assert tlb.shootdown(4096 + 4)
        assert tlb.lookup(4096) is None
        assert not tlb.shootdown(4096)

    def test_range_removes_overlapping_superpage(self):
        tlb = Tlb(4)
        tlb.insert(TlbEntry(vbase=0x100_0000, pbase=0, size=64 << 10))
        # Range overlaps the middle of the superpage.
        removed = tlb.shootdown_range(0x100_8000, 4096)
        assert removed == 1
        assert tlb.occupancy == 0

    def test_range_spares_outside(self):
        tlb = Tlb(4)
        tlb.insert(base_entry(1))
        tlb.insert(base_entry(100))
        removed = tlb.shootdown_range(0, 10 * 4096)
        assert removed == 1
        assert tlb.lookup(100 * 4096) is not None

    def test_flush_all(self):
        tlb = Tlb(4)
        for vpn in range(4):
            tlb.insert(base_entry(vpn))
        assert tlb.flush_all() == 4
        assert tlb.occupancy == 0


class TestReach:
    def test_reach_counts_superpages(self):
        tlb = Tlb(4)
        tlb.insert(base_entry(1))
        tlb.insert(TlbEntry(vbase=0, pbase=0, size=16 << 20))
        assert tlb.reach == 4096 + (16 << 20)
        assert tlb.max_reach_base_pages == 4 * 4096


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=400),
    st.integers(min_value=1, max_value=64),
)
def test_tlb_model_equivalence(vpns, capacity):
    """The TLB agrees with a trivial reference model on hit/miss content:
    after any access sequence, every resident entry was inserted and
    occupancy never exceeds capacity."""
    tlb = Tlb(capacity)
    inserted = set()
    for vpn in vpns:
        if tlb.lookup(vpn * BASE_PAGE_SIZE) is None:
            tlb.insert(base_entry(vpn))
            inserted.add(vpn)
    assert tlb.occupancy <= capacity
    resident = {e.vbase // BASE_PAGE_SIZE for e in tlb.entries()}
    assert resident <= inserted
    # Everything resident must still translate correctly.
    for vpn in resident:
        assert tlb.probe(vpn * BASE_PAGE_SIZE).translate(
            vpn * BASE_PAGE_SIZE
        ) == vpn * BASE_PAGE_SIZE


class TestMostSpecificLookup:
    """When mappings of several page sizes cover one address, the
    smallest (most specific) entry must win — independent of insertion
    order and of the MRU probe hint."""

    SUPER = 4 << 20  # 4 MB superpage overlapping base page 5

    def overlapping(self, small_first: bool) -> Tlb:
        tlb = Tlb(8)
        small = base_entry(5, pfn=9)
        big = TlbEntry(vbase=0, pbase=0x40000000, size=self.SUPER)
        for entry in ([small, big] if small_first else [big, small]):
            tlb.insert(entry)
        return tlb

    @pytest.mark.parametrize("small_first", [True, False])
    def test_smallest_wins_both_insertion_orders(self, small_first):
        tlb = self.overlapping(small_first)
        hit = tlb.lookup(5 * BASE_PAGE_SIZE + 0x10)
        assert hit.size == BASE_PAGE_SIZE
        assert hit.translate(5 * BASE_PAGE_SIZE) == 9 * BASE_PAGE_SIZE

    @pytest.mark.parametrize("small_first", [True, False])
    def test_superpage_covers_the_rest(self, small_first):
        tlb = self.overlapping(small_first)
        hit = tlb.lookup(6 * BASE_PAGE_SIZE)
        assert hit.size == self.SUPER
        assert hit.translate(6 * BASE_PAGE_SIZE) == (
            0x40000000 + 6 * BASE_PAGE_SIZE
        )

    def test_mru_hint_does_not_shadow_smaller_entry(self):
        tlb = self.overlapping(small_first=True)
        # Make the superpage the MRU size, then look up the overlap:
        # the hint is probed first but the base page must still win.
        assert tlb.lookup(6 * BASE_PAGE_SIZE).size == self.SUPER
        assert tlb._mru_size == self.SUPER
        assert tlb.lookup(5 * BASE_PAGE_SIZE).size == BASE_PAGE_SIZE
        assert tlb._mru_size == BASE_PAGE_SIZE

    def test_hint_survives_eviction_of_its_size(self):
        tlb = Tlb(2)
        tlb.insert(TlbEntry(vbase=0, pbase=0, size=self.SUPER))
        assert tlb.lookup(0x100).size == self.SUPER
        # Fill with base pages until the superpage is evicted; lookups
        # must keep working with the stale hint pointing at a size that
        # no longer has a table.
        tlb.insert(base_entry(1024))
        tlb.insert(base_entry(1025))
        assert tlb.probe(0x100) is None or tlb.probe(0x100).size != 0
        assert tlb.lookup(1025 * BASE_PAGE_SIZE) is not None


class TestCoverageMirror:
    def test_arrays_reflect_content(self):
        tlb = Tlb(8)
        tlb.insert(base_entry(7, pfn=3))
        tlb.insert(base_entry(2, pfn=2))
        tlb.insert(TlbEntry(vbase=0x400000, pbase=0x800000, size=4 << 20))
        views = tlb.coverage_arrays()
        assert [size for size, _, _ in views] == [
            BASE_PAGE_SIZE, 4 << 20
        ]
        size, vbases, deltas = views[0]
        assert vbases.tolist() == [2 * 4096, 7 * 4096]  # sorted
        assert deltas.tolist() == [0, (3 - 7) * 4096]  # paddr = v + d
        _, sv, sd = views[1]
        assert sv.tolist() == [0x400000] and sd.tolist() == [0x400000]

    def test_cache_reused_until_generation_moves(self):
        tlb = Tlb(8)
        tlb.insert(base_entry(1))
        first = tlb.coverage_arrays()
        assert tlb.coverage_arrays() is first  # no mutation: cached
        tlb.lookup(1 * BASE_PAGE_SIZE)  # hits do not invalidate
        assert tlb.coverage_arrays() is first
        gen = tlb.generation
        tlb.insert(base_entry(2))
        assert tlb.generation > gen
        assert tlb.coverage_arrays() is not first

    def test_shootdown_and_flush_invalidate(self):
        tlb = Tlb(8)
        tlb.insert(base_entry(1))
        tlb.insert(base_entry(2))
        mirror = tlb.coverage_arrays()
        tlb.shootdown(1 * BASE_PAGE_SIZE)
        assert tlb.coverage_arrays() is not mirror
        mirror = tlb.coverage_arrays()
        tlb.flush_all()
        assert tlb.coverage_arrays() == []


class TestTouchPages:
    def test_marks_referenced_like_scalar_hits(self):
        tlb = Tlb(8)
        for vpn in (1, 2, 3):
            tlb.insert(base_entry(vpn))
        for entry in tlb.entries():
            entry.nru_referenced = False
        tlb.touch_pages(
            BASE_PAGE_SIZE, [1 * BASE_PAGE_SIZE, 3 * BASE_PAGE_SIZE]
        )
        flags = {
            e.vbase // BASE_PAGE_SIZE: e.nru_referenced
            for e in tlb.entries()
        }
        assert flags == {1: True, 2: False, 3: True}

    def test_unknown_size_and_vbase_ignored(self):
        tlb = Tlb(8)
        tlb.insert(base_entry(1))
        tlb.touch_pages(16 << 10, [0])  # no 16 KB table resident
        tlb.touch_pages(BASE_PAGE_SIZE, [99 * BASE_PAGE_SIZE])
        assert tlb.occupancy == 1
