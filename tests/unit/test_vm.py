"""Unit tests for the VM subsystem (map / remap choreography)."""

import pytest

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.os_model.frames import OutOfMemory
from repro.os_model.page_table import MappingError

REGION = 0x0200_0000


@pytest.fixture
def machine(mtlb_system):
    process = mtlb_system.kernel.create_process("vmtest")
    return mtlb_system, process


class TestMapRegion:
    def test_base_pages_installed(self, machine):
        system, process = machine
        cycles = system.kernel.vm.map_region(process, REGION, 64 << 10)
        assert cycles > 0
        for offset in range(0, 64 << 10, BASE_PAGE_SIZE):
            mapping = process.page_table.lookup(REGION + offset)
            assert mapping is not None and not mapping.is_superpage

    def test_frames_are_discontiguous_when_shuffled(self, machine):
        system, process = machine
        system.kernel.vm.map_region(process, REGION, 64 << 10)
        pfns = [
            process.page_table.lookup(REGION + off).pbase >> 12
            for off in range(0, 64 << 10, BASE_PAGE_SIZE)
        ]
        assert pfns != sorted(pfns)

    def test_hpt_preloaded(self, machine):
        system, process = machine
        system.kernel.vm.map_region(process, REGION, 16 << 10)
        found, _ = system.kernel.hpt.probe(REGION >> 12)
        assert found is not None

    def test_unmap_returns_frames(self, machine):
        system, process = machine
        free_before = system.kernel.frames.free_frames
        system.kernel.vm.map_region(process, REGION, 16 << 10)
        system.kernel.vm.unmap_region(process, REGION, 16 << 10)
        assert system.kernel.frames.free_frames == free_before
        assert process.page_table.lookup(REGION) is None


class TestRemapToShadow:
    def test_superpage_replaces_base_pages(self, machine):
        system, process = machine
        system.kernel.vm.map_region(process, REGION, 64 << 10)
        report = system.kernel.vm.remap_to_shadow(process, REGION, 64 << 10)
        assert report.superpages_created == 1
        assert report.pages_remapped == 16
        mapping = process.page_table.lookup(REGION)
        assert mapping.is_superpage and mapping.size == 64 << 10
        assert system.config.memory_map.is_shadow(mapping.pbase)

    def test_mmc_mappings_point_at_original_frames(self, machine):
        system, process = machine
        system.kernel.vm.map_region(process, REGION, 64 << 10)
        pfns_before = [
            process.page_table.lookup(REGION + off).pbase >> 12
            for off in range(0, 64 << 10, BASE_PAGE_SIZE)
        ]
        system.kernel.vm.remap_to_shadow(process, REGION, 64 << 10)
        mapping = process.page_table.lookup(REGION)
        first = system.config.memory_map.shadow_page_index(mapping.pbase)
        table = system.shadow_table
        pfns_after = [
            table.entry(first + i).pfn for i in range(16)
        ]
        assert pfns_after == pfns_before

    def test_remap_costs_are_flush_dominated(self, machine):
        system, process = machine
        system.kernel.vm.map_region(process, REGION, 256 << 10)
        # Warm the cache over the region so the flush has work to do.
        for off in range(0, 256 << 10, 32):
            paddr = process.page_table.translate(REGION + off)
            system.cache.access(REGION + off, paddr, off % 64 == 0)
        report = system.kernel.vm.remap_to_shadow(process, REGION, 256 << 10)
        assert report.flush_cycles > report.other_cycles
        assert report.dirty_lines_written > 0

    def test_remap_unmapped_region_rejected(self, machine):
        system, process = machine
        with pytest.raises(MappingError):
            system.kernel.vm.remap_to_shadow(process, REGION, 64 << 10)

    def test_sub_minimum_fragments_stay_base_mapped(self, machine):
        system, process = machine
        # One base page of head misalignment: a 12 KB head and a 4 KB
        # tail bracket a single aligned 16 KB superpage.
        start = REGION + BASE_PAGE_SIZE
        system.kernel.vm.map_region(process, start, 32 << 10)
        report = system.kernel.vm.remap_to_shadow(process, start, 32 << 10)
        assert report.superpages_created == 1
        head = process.page_table.lookup(start)
        assert head is not None and not head.is_superpage

    def test_tlb_shootdown_happens(self, machine):
        system, process = machine
        system.kernel.vm.map_region(process, REGION, 16 << 10)
        # Fault a translation into the CPU TLB.
        entry, _ = system._refill_tlb(REGION)
        assert system.tlb.probe(REGION) is not None
        system.kernel.vm.remap_to_shadow(process, REGION, 16 << 10)
        assert system.tlb.probe(REGION) is None


class TestRemapBack:
    def test_roundtrip_restores_base_pages(self, machine):
        system, process = machine
        system.kernel.vm.map_region(process, REGION, 64 << 10)
        pfns_before = [
            process.page_table.lookup(REGION + off).pbase >> 12
            for off in range(0, 64 << 10, BASE_PAGE_SIZE)
        ]
        system.kernel.vm.remap_to_shadow(process, REGION, 64 << 10)
        system.kernel.vm.remap_back(process, REGION)
        pfns_after = [
            process.page_table.lookup(REGION + off).pbase >> 12
            for off in range(0, 64 << 10, BASE_PAGE_SIZE)
        ]
        assert pfns_before == pfns_after
        assert not process.page_table.lookup(REGION).is_superpage

    def test_shadow_region_returned_to_pool(self, machine):
        system, process = machine
        allocator = system.kernel.shadow_allocator
        avail = allocator.available(64 << 10)
        system.kernel.vm.map_region(process, REGION, 64 << 10)
        system.kernel.vm.remap_to_shadow(process, REGION, 64 << 10)
        assert allocator.available(64 << 10) == avail - 1
        system.kernel.vm.remap_back(process, REGION)
        assert allocator.available(64 << 10) == avail

    def test_remap_back_non_superpage_rejected(self, machine):
        system, process = machine
        system.kernel.vm.map_region(process, REGION, 4096)
        with pytest.raises(MappingError):
            system.kernel.vm.remap_back(process, REGION)


class TestConventionalSuperpages:
    def test_success_on_unfragmented_machine(self, mtlb_system):
        from repro.sim.config import paper_no_mtlb
        from repro.sim.system import System
        import dataclasses
        config = dataclasses.replace(
            paper_no_mtlb(96), fragmentation="none"
        )
        system = System(config)
        process = system.kernel.create_process("conv")
        system.kernel.vm.map_region_conventional_superpages(
            process, REGION, 64 << 10
        )
        mapping = process.page_table.lookup(REGION)
        assert mapping.is_superpage
        # The physical base is real memory, aligned to the size.
        assert system.config.memory_map.is_dram(mapping.pbase)
        assert mapping.pbase % mapping.size == 0

    def test_fails_under_fragmentation(self):
        from repro.sim.config import paper_no_mtlb
        from repro.sim.system import System
        import dataclasses
        config = dataclasses.replace(
            paper_no_mtlb(96), fragmentation="checkerboard"
        )
        system = System(config)
        process = system.kernel.create_process("conv")
        with pytest.raises(OutOfMemory):
            system.kernel.vm.map_region_conventional_superpages(
                process, REGION, 64 << 10
            )
