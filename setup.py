"""Shim so ``pip install -e . --no-use-pep517`` works offline.

The sandboxed environment has no ``wheel`` package, which the PEP 517
editable-install path requires; the legacy ``setup.py develop`` path does
not.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
