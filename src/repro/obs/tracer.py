"""Structured event tracing: a ring-buffered, numpy-backed event log.

Components emit *events* at named sites (``tlb_miss``, ``mtlb_fill``,
``remap``, ...) carrying a cycle timestamp and two integer payload words
whose meaning is per-site (documented in :data:`SITES`).  The tracer is
deliberately dumb and fast: four parallel numpy arrays used as a ring
buffer, an integer write head, and no per-event allocation.  When the
buffer wraps, the oldest events are overwritten and counted in
``dropped`` — phase analysis prefers losing ancient history to paying
for an unbounded log.

The *null-sink fast path*: components store their tracer in an attribute
that defaults to ``None`` and guard every emit with ``if tracer is not
None``.  A disabled run therefore pays one predictable branch per
*miss-path* event and nothing at all on hit paths, keeping the overhead
of a disabled tracer under the 3 % budget (DESIGN.md §9).
:data:`NULL_TRACER` is provided for call sites that prefer an
unconditional ``emit`` over a guard.

Timestamps come from :attr:`EventTracer.clock`, a plain integer the
simulator advances at segment boundaries and on every miss/kernel path;
emitting components never need their own notion of time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: Event sites, in stable id order.  Payload word meanings:
#:
#: ==============  =======================  =========================
#: site            payload a                payload b
#: ==============  =======================  =========================
#: tlb_miss        virtual address          handler cycles
#: mtlb_fill       shadow page index        real PFN
#: mtlb_fault      shadow page index        1 if write else 0
#: remap           pages remapped           total remap cycles
#: promotion       pages promoted           promotion cycles
#: cache_miss      physical address         fill stall cycles
#: fault_injected  fault-site ordinal       0
#: kernel_entry    operation ordinal        service cycles
#: ==============  =======================  =========================
SITES: Tuple[str, ...] = (
    "tlb_miss",
    "mtlb_fill",
    "mtlb_fault",
    "remap",
    "promotion",
    "cache_miss",
    "fault_injected",
    "kernel_entry",
)

#: site name -> integer id stored in the ring buffer.
SITE_IDS: Dict[str, int] = {name: i for i, name in enumerate(SITES)}

# Exported integer ids, so hot emit calls don't do a dict lookup.
TLB_MISS = SITE_IDS["tlb_miss"]
MTLB_FILL = SITE_IDS["mtlb_fill"]
MTLB_FAULT = SITE_IDS["mtlb_fault"]
REMAP = SITE_IDS["remap"]
PROMOTION = SITE_IDS["promotion"]
CACHE_MISS = SITE_IDS["cache_miss"]
FAULT_INJECTED = SITE_IDS["fault_injected"]
KERNEL_ENTRY = SITE_IDS["kernel_entry"]

#: ``kernel_entry`` payload-a ordinals (which kernel operation ran).
KERNEL_OPS: Tuple[str, ...] = (
    "sys_map",
    "sys_remap",
    "sys_sbrk",
    "mtlb_fault_service",
    "parity_fault_service",
)
KERNEL_OP_IDS: Dict[str, int] = {name: i for i, name in enumerate(KERNEL_OPS)}


@dataclass(frozen=True)
class TraceEvent:
    """One decoded event from the ring buffer."""

    cycle: int
    site: str
    a: int
    b: int


class EventTracer:
    """Ring-buffered event log with fixed per-event cost.

    *capacity* must be a power of two (the wrap is a mask, not a
    modulo).  ``clock`` is the cycle timestamp stamped onto the next
    emitted event; the simulator owns advancing it.
    """

    __slots__ = (
        "capacity", "_mask", "_cycle", "_site", "_a", "_b",
        "_head", "total", "clock",
    )

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError("capacity must be a positive power of two")
        self.capacity = capacity
        self._mask = capacity - 1
        self._cycle = np.zeros(capacity, dtype=np.int64)
        self._site = np.full(capacity, -1, dtype=np.int16)
        self._a = np.zeros(capacity, dtype=np.int64)
        self._b = np.zeros(capacity, dtype=np.int64)
        self._head = 0
        #: Events ever emitted (``total - len(self)`` were overwritten).
        self.total = 0
        self.clock = 0

    def emit(self, site_id: int, a: int = 0, b: int = 0) -> None:
        """Record one event at the current clock (overwrites when full)."""
        i = self._head & self._mask
        self._cycle[i] = self.clock
        self._site[i] = site_id
        self._a[i] = a
        self._b[i] = b
        self._head += 1
        self.total += 1

    # ------------------------------------------------------------------ #
    # Reading the log
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of events currently retained."""
        return min(self.total, self.capacity)

    @property
    def dropped(self) -> int:
        """Events overwritten by ring wraparound."""
        return max(0, self.total - self.capacity)

    def _order(self) -> np.ndarray:
        """Retained slot indices, oldest first."""
        n = len(self)
        if self.total <= self.capacity:
            return np.arange(n)
        head = self._head & self._mask
        return np.concatenate(
            [np.arange(head, self.capacity), np.arange(head)]
        )

    def events(
        self, site: Optional[str] = None
    ) -> List[TraceEvent]:
        """Decode retained events in chronological order.

        *site* filters to one named site.  Intended for post-run
        analysis, not the hot path.
        """
        order = self._order()
        want = SITE_IDS[site] if site is not None else None
        out: List[TraceEvent] = []
        for i in order:
            sid = int(self._site[i])
            if sid < 0:
                continue
            if want is not None and sid != want:
                continue
            out.append(
                TraceEvent(
                    cycle=int(self._cycle[i]),
                    site=SITES[sid],
                    a=int(self._a[i]),
                    b=int(self._b[i]),
                )
            )
        return out

    def site_counts(self) -> Dict[str, int]:
        """Retained event counts per site (dropped events excluded)."""
        order = self._order()
        sites = self._site[order]
        counts: Dict[str, int] = {}
        for sid, n in zip(*np.unique(sites[sites >= 0], return_counts=True)):
            counts[SITES[int(sid)]] = int(n)
        return counts

    def cycles_of(self, site: str) -> np.ndarray:
        """Timestamps (int64 array) of retained events at one site."""
        order = self._order()
        mask = self._site[order] == SITE_IDS[site]
        return self._cycle[order][mask]

    def payloads_of(self, site: str) -> Tuple[np.ndarray, np.ndarray]:
        """(a, b) payload arrays of retained events at one site."""
        order = self._order()
        mask = self._site[order] == SITE_IDS[site]
        sel = order[mask]
        return self._a[sel], self._b[sel]


class NullTracer:
    """A tracer that discards everything (the explicit null sink).

    For call sites that want an unconditional ``emit``; the simulator
    itself uses ``None`` + a guard, which is one comparison cheaper.
    """

    __slots__ = ("clock",)

    capacity = 0
    total = 0
    dropped = 0

    def __init__(self) -> None:
        self.clock = 0

    def emit(self, site_id: int, a: int = 0, b: int = 0) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def events(self, site: Optional[str] = None) -> List[TraceEvent]:
        return []

    def site_counts(self) -> Dict[str, int]:
        return {}


#: Shared do-nothing tracer instance.
NULL_TRACER = NullTracer()


def inter_arrival(cycles: Iterable[int]) -> np.ndarray:
    """Gaps between consecutive event timestamps (for histograms)."""
    arr = np.asarray(list(cycles), dtype=np.int64)
    if arr.size < 2:
        return np.zeros(0, dtype=np.int64)
    return np.diff(arr)
